"""Sharded scatter-gather vs unsharded serial: byte-identical, always.

The subsystem's acceptance contract: for every (structure, query) pair —
fixed corpus, ternary signatures, nested quantifiers, and Hypothesis
random multi-component structures — a :class:`ShardedDatabase` must
produce *byte-identical* enumeration order, exact-equal counts, and
identical test verdicts versus an unsharded serial :class:`Database`,
for every shard count and both gather strategies.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.fo.syntax import CountCmp, TotalCount, Var
from repro.session import Database
from repro.shard import ShardedDatabase, shard_blockers

from strategies import (
    disconnected_structures,
    formulas,
    rejecting_unsupported,
)
from test_partition import islands

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CORPUS = [
    "B(x)",
    "B(x) & R(y) & ~E(x,y)",                     # Example 2.3
    "B(x) & R(y) & (E(x,y) | E(y,x))",
    "dist(x,y) > 2 & B(x) & R(y)",
    "exists z. E(x,z) & E(z,y) & x != y",
    "forall z. E(x,z) -> B(z)",
    "exists z. (E(x,z) & B(z)) & R(x)",          # nested quantifier
    "exists z. exists w. E(z,w) & B(z) & R(w) & ~E(x,z)",
]

TERNARY_CORPUS = [
    "T(x,y,y) & B(x)",
    "B(x) & exists z. T(x,z,y)",
]


def assert_sharded_matches_serial(structure, query, shards, gather):
    """The full three-way contract on one configuration."""
    with Database(structure.copy()) as plain:
        oracle = plain.query(query, backend="serial")
        expected = oracle.answers().all()
        expected_count = oracle.count()
        arity = oracle.arity
    domain = list(structure.domain)
    probes = expected[:3] + [(domain[0],) * arity]
    with Database(structure.copy()) as plain:
        verdicts = [
            plain.query(query, backend="serial").test(probe)
            for probe in probes
        ]
    with ShardedDatabase(structure.copy(), shards=shards, gather=gather) as sdb:
        sharded = sdb.query(query)
        assert sharded.answers().all() == expected
        assert sharded.count() == expected_count
        assert [sharded.test(probe) for probe in probes] == verdicts


@pytest.mark.parametrize("gather", ["stream", "engine"])
@pytest.mark.parametrize("shards", [1, 3, 5])
def test_corpus_on_disconnected_islands(shards, gather):
    db = islands([6, 5, 4, 3, 2, 1], seed=3)
    for query in CORPUS:
        assert_sharded_matches_serial(db, query, shards, gather)


@pytest.mark.parametrize("shards", [1, 4])
def test_corpus_on_random_colored_graph(small_colored, shards):
    for query in CORPUS:
        assert_sharded_matches_serial(small_colored, query, shards, "stream")


@pytest.mark.parametrize("gather", ["stream", "engine"])
def test_ternary_corpus(ternary_structure, gather):
    for query in TERNARY_CORPUS:
        assert_sharded_matches_serial(ternary_structure, query, 3, gather)


@given(db=disconnected_structures(), formula=formulas(max_quantifiers=1))
@settings(max_examples=40, **SETTINGS)
def test_random_structures_and_formulas_agree(db, formula):
    with rejecting_unsupported():
        with Database(db.copy()) as plain:
            oracle = plain.query(formula, backend="serial")
            expected = oracle.answers().all()
            expected_count = oracle.count()
        with ShardedDatabase(db.copy(), shards=3) as sdb:
            sharded = sdb.query(formula)
            assert sharded.answers().all() == expected
            assert sharded.count() == expected_count


def test_limit_is_a_prefix_of_the_global_order():
    db = islands([6, 5, 4, 3], seed=9)
    query = "B(x) & R(y) & ~E(x,y)"
    with Database(db.copy()) as plain:
        expected = plain.query(query, backend="serial").answers().all()
    with ShardedDatabase(db.copy(), shards=3) as sdb:
        assert len(expected) > 5
        assert sdb.query(query).answers(limit=5).all() == expected[:5]


def test_project_columns_projects_the_same_stream():
    db = islands([5, 4, 3], seed=2)
    query = "B(x) & R(y) & ~E(x,y)"
    with Database(db.copy()) as plain:
        expected = plain.query(query, backend="serial").answers().all()
    with ShardedDatabase(db.copy(), shards=3) as sdb:
        got = sdb.query(query).answers(project_columns=[1]).all()
        assert got == [(answer[1],) for answer in expected]


def test_sentence_queries_collapse_to_trivial_plans():
    db = islands([4, 3], seed=5)
    for query in ("exists z. (B(z) & R(z))", "exists z. B(z)"):
        with Database(db.copy()) as plain:
            expected = plain.query(query, backend="serial").answers().all()
        with ShardedDatabase(db.copy(), shards=2) as sdb:
            sharded = sdb.query(query)
            assert sharded.answers().all() == expected
            report = sharded.explain()
            assert report["sharded"] is False
            assert report["branches"] == 0


def test_global_total_counting_atom_blocks_sharding_but_stays_exact():
    db = islands([5, 4, 3], seed=1)
    x = Var("x")
    formula = CountCmp("B", 1, (x,), "<", TotalCount("B"))
    with Database(db.copy()) as plain:
        oracle = plain.query(formula, backend="serial")
        expected = oracle.answers().all()
        expected_count = oracle.count()
    with ShardedDatabase(db.copy(), shards=3) as sdb:
        sharded = sdb.query(formula)
        report = sharded.explain()
        assert report["sharded"] is False
        assert report["shard_blockers"], "global total must block sharding"
        assert sharded.answers().all() == expected
        assert sharded.count() == expected_count
        state = sdb._plan_state(sharded._key)
        assert shard_blockers(state.merged)


def test_explain_reports_layout_and_runtime():
    db = islands([6, 5, 4], seed=4)
    with ShardedDatabase(db.copy(), shards=3) as sdb:
        sharded = sdb.query("B(x) & R(y) & ~E(x,y)")
        report = sharded.explain()
        assert report["sharded"] is True
        assert report["canonical"] is True
        assert report["gather"] == "stream"
        assert sorted(report["shard_sizes"], reverse=True) == [6, 5, 4]
        assert "runtime" not in report  # nothing ran yet
        answers = sharded.answers().all()
        assert answers
        report = sharded.explain()
        assert report["backend_used"] == "shard-stream"
        runtime = report["runtime"]
        assert runtime["rows"] == len(answers)
        # Two-block branches stream from the merged pipeline; a
        # single-block query attributes rows to the owning shards.
        assert "merged" in runtime["sources"]
        single = sdb.query("B(x)")
        rows = single.answers().all()
        assert rows
        sources = single.explain()["runtime"]["sources"]
        assert all(label.startswith("shard") for label in sources)
        assert sum(entry["rows"] for entry in sources.values()) == len(rows)


def test_stats_and_repr_surface_the_layout():
    db = islands([4, 3, 2], seed=6)
    with ShardedDatabase(db.copy(), shards=2) as sdb:
        sdb.query("B(x)").answers().all()
        stats = sdb.stats()
        assert stats["shards"] == 2
        assert stats["components"] == 3
        assert stats["cached_plans"] == 1
        assert stats["canonical_plans"] == 1
        assert "ShardedDatabase" in repr(sdb)
