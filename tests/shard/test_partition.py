"""Region partitioner: determinism, totality, balance, bridge merging.

The layout invariants everything downstream leans on: every element is
owned by exactly one shard, no Gaifman component is ever split across
shards, shards are in domain order, and the whole assignment is a pure
function of the structure's content.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import EngineError
from repro.shard import RegionPartitioner, ShardLayout, merge_shards
from repro.structures import Signature, Structure
from repro.structures.gaifman_graph import connected_components
from repro.structures.random_gen import random_colored_graph
from repro.structures.serialize import fingerprint, region_fingerprint

from strategies import disconnected_structures

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def islands(sizes, seed: int = 7) -> Structure:
    """A colored graph of disjoint path components with the given sizes."""
    total = sum(sizes)
    db = Structure(Signature.of(E=2, B=1, R=1), range(total))
    offset = 0
    for size in sizes:
        for position in range(size - 1):
            db.add_fact("E", offset + position, offset + position + 1)
        for position in range(size):
            element = offset + position
            db.add_fact("B" if (element + seed) % 2 == 0 else "R", element)
        offset += size
    return db


def test_partition_is_deterministic(medium_colored):
    partitioner = RegionPartitioner(shards=4)
    first = partitioner.partition(medium_colored)
    second = partitioner.partition(medium_colored)
    assert first.shards == second.shards
    assert first.owner == second.owner
    assert first.components == second.components


@given(db=disconnected_structures())
@settings(max_examples=40, **SETTINGS)
def test_owner_totality_and_component_atomicity(db):
    layout = RegionPartitioner(shards=3).partition(db)
    # Every element owned exactly once; shards partition the domain.
    seen = set()
    for index, shard in enumerate(layout.shards):
        for element in shard:
            assert layout.shard_of(element) == index
            assert element not in seen
            seen.add(element)
    assert seen == set(db.domain)
    assert sum(layout.sizes()) == db.cardinality
    # Shards stay in domain order.
    rank = db.order.rank
    for shard in layout.shards:
        assert list(shard) == sorted(shard, key=rank)
    # A component is the atomic placement unit: never split.
    for component in connected_components(db):
        owners = {layout.shard_of(element) for element in component}
        assert len(owners) == 1
    assert len(layout) == min(3, layout.components)


def test_lpt_balances_skewed_components():
    db = islands([5, 3, 3, 2, 1])
    layout = RegionPartitioner(shards=2).partition(db)
    # LPT over sizes [5, 3, 3, 2, 1] into two bins lands at (7, 7).
    assert sorted(layout.sizes()) == [7, 7]


def test_more_shards_than_components_caps_at_components():
    db = islands([4, 4])
    layout = RegionPartitioner(shards=8).partition(db)
    assert len(layout) == 2
    assert layout.components == 2


def test_single_element_structure_is_one_shard():
    db = Structure(Signature.of(E=2, B=1), (0,))
    layout = RegionPartitioner(shards=4).partition(db)
    assert layout.shards == ((0,),)
    assert layout.components == 1


def test_empty_layout_is_well_formed():
    layout = ShardLayout((), {}, 0)
    assert len(layout) == 0
    assert layout.sizes() == ()
    assert layout.shards_of(()) == frozenset()


def test_shard_of_unknown_element_raises():
    layout = RegionPartitioner(shards=2).partition(islands([3, 2]))
    with pytest.raises(EngineError):
        layout.shard_of("nope")


def test_partitioner_validates_arguments():
    with pytest.raises(EngineError):
        RegionPartitioner(shards=0)
    with pytest.raises(EngineError):
        RegionPartitioner(shards=2, radius=-1)


def test_induced_substructures_match_region_fingerprints():
    db = islands([6, 5, 4, 3, 2])
    layout = RegionPartitioner(shards=3).partition(db)
    assert len(layout) == 3
    for shard in layout.shards:
        induced = db.induced_substructure(shard)
        assert fingerprint(induced) == region_fingerprint(db, shard)


def test_merge_shards_collapses_groups_onto_lowest_index():
    db = islands([3, 3, 3, 3])
    layout = RegionPartitioner(shards=4).partition(db)
    assert len(layout) == 4
    merged = merge_shards(layout, [{1, 3}], db.order.rank)
    assert len(merged) == 3
    # The merged shard holds both originals' elements, in domain order.
    expected = sorted(layout.shards[1] + layout.shards[3], key=db.order.rank)
    combined = [
        shard
        for shard in merged.shards
        if set(shard) == set(expected)
    ]
    assert combined and list(combined[0]) == expected
    # Owner map is consistent with the new shards.
    for index, shard in enumerate(merged.shards):
        for element in shard:
            assert merged.shard_of(element) == index
    assert sum(merged.sizes()) == db.cardinality


def test_merge_shards_is_transitive_across_groups():
    db = islands([2, 2, 2, 2])
    layout = RegionPartitioner(shards=4).partition(db)
    merged = merge_shards(layout, [{0, 1}, {1, 2}], db.order.rank)
    # {0,1} and {1,2} chain into one shard: 4 -> 2.
    assert len(merged) == 2
    owners = {merged.shard_of(element) for element in layout.shards[0]}
    owners |= {merged.shard_of(element) for element in layout.shards[2]}
    assert len(owners) == 1


def test_layout_repr_mentions_sizes():
    layout = RegionPartitioner(shards=2).partition(islands([3, 2]))
    assert isinstance(layout, ShardLayout)
    assert "sizes=" in repr(layout)
