"""Sharded updates: split commits, bridge merges, and the stale contract.

Oracle conventions (load-bearing — see the order contracts in
``repro.shard.database``):

* *warm-warm*: a maintained sharded plan is byte-identical to a plain
  session plan only when **both** sides had warm cached plans at apply
  time — the merged pipeline equals the plain pipeline pre-apply, so
  identical in-place surgery yields identical (maintained) order;
* *cold-cold*: after anything that rebuilds plans from scratch (bridge
  merge, repartition, fresh key) the oracle is a **fresh** unsharded
  :class:`Database` over the post-commit structure — maintained order
  and cold order agree as sets, not byte-for-byte.
"""

from __future__ import annotations

import pytest

from repro.errors import EngineError, SignatureError, StaleResultError
from repro.fo.syntax import CountCmp, Var
from repro.session import Database
from repro.shard import ShardedDatabase
from repro.structures.serialize import fingerprint, region_fingerprint

from test_partition import islands

QUERY = "B(x) & R(y) & ~E(x,y)"
WITNESS = "exists z. (E(x,z) & B(z)) & R(x)"


def effective_ops(structure):
    """A small op batch guaranteed to change the structure, all ops
    shard-local (every element set is a singleton or an existing edge)."""
    ops = []
    domain = list(structure.domain)
    missing_b = next(
        element for element in domain if not structure.has_fact("B", element)
    )
    ops.append((True, "B", (missing_b,)))
    present_r = next(
        element for element in domain if structure.has_fact("R", element)
    )
    ops.append((False, "R", (present_r,)))
    left, right = next(iter(structure.facts("E")))
    ops.append((False, "E", (left, right)))
    return ops


def test_maintained_apply_matches_warm_plain_session():
    db = islands([6, 5, 4, 3], seed=9)
    ops = effective_ops(db)
    with Database(db.copy()) as plain, ShardedDatabase(
        db.copy(), shards=3
    ) as sdb:
        for query in (QUERY, WITNESS):
            # Warm BOTH sides: maintained order is only comparable when
            # the two pipelines were identical before the surgery.
            assert (
                sdb.query(query).answers().all()
                == plain.query(query, backend="serial").answers().all()
            )
        result = sdb.apply(ops)
        plain.apply(ops)
        assert result.changed
        assert result.ops_effective == len(ops)
        assert result.maintained_plans == 2
        assert result.fingerprint_after == fingerprint(plain.structure)
        for query in (QUERY, WITNESS):
            sharded = sdb.query(query)
            oracle = plain.query(query, backend="serial")
            assert sharded.answers().all() == oracle.answers().all()
            assert sharded.count() == oracle.count()
        # Maintenance retired the shard graphs but kept the plan cached.
        stats = sdb.stats()
        assert stats["cached_plans"] == 2
        assert stats["canonical_plans"] == 0
        # A second consecutive maintained apply stays byte-identical.
        more = [(True, "E", ops[2][2])]
        result = sdb.apply(more)
        plain.apply(more)
        assert result.maintained_plans == 2
        for query in (QUERY, WITNESS):
            assert (
                sdb.query(query).answers().all()
                == plain.query(query, backend="serial").answers().all()
            )


def test_split_ops_keep_substructures_in_sync():
    db = islands([5, 4, 3, 2], seed=1)
    with ShardedDatabase(db.copy(), shards=3) as sdb:
        sdb.query(QUERY).answers().all()
        sdb.apply(effective_ops(sdb.structure))
        for shard, substructure in zip(
            sdb.layout.shards, sdb.substructures
        ):
            assert fingerprint(substructure) == region_fingerprint(
                sdb.structure, shard
            )


def test_outstanding_handle_goes_stale_on_apply():
    db = islands([5, 4], seed=2)
    with ShardedDatabase(db.copy(), shards=2) as sdb:
        handle = sdb.query(QUERY).answers()
        sdb.apply(effective_ops(sdb.structure))
        with pytest.raises(StaleResultError):
            handle.all()


def test_bridge_insert_merges_owning_shards():
    db = islands([5, 4, 3, 2], seed=3)
    with ShardedDatabase(db.copy(), shards=4) as sdb:
        sdb.query(QUERY).answers().all()
        assert len(sdb.layout) == 4
        # An edge between two shards' elements is a bridge.
        left = sdb.layout.shards[0][0]
        right = sdb.layout.shards[1][0]
        result = sdb.insert_fact("E", left, right)
        assert result.changed
        assert result.maintained_plans == 0  # bridge: plans went cold
        assert len(sdb.layout) == 3
        assert sdb.layout.shard_of(left) == sdb.layout.shard_of(right)
        assert sdb.stats()["cached_plans"] == 0
        for shard, substructure in zip(
            sdb.layout.shards, sdb.substructures
        ):
            assert fingerprint(substructure) == region_fingerprint(
                sdb.structure, shard
            )
        # Cold-cold oracle: fresh plans vs a fresh unsharded Database.
        with Database(sdb.structure.copy()) as oracle:
            for query in (QUERY, WITNESS):
                assert (
                    sdb.query(query).answers().all()
                    == oracle.query(query, backend="serial").answers().all()
                )
        assert sdb.stats()["canonical_plans"] == 2


def test_repartition_matches_cold_oracle():
    db = islands([6, 5, 4, 3], seed=4)
    with ShardedDatabase(db.copy(), shards=2) as sdb:
        sdb.query(QUERY).answers().all()
        sdb.apply(effective_ops(sdb.structure))
        layout = sdb.repartition(shards=3)
        assert len(layout) == min(3, layout.components)
        assert sdb.stats()["cached_plans"] == 0
        with Database(sdb.structure.copy()) as oracle:
            assert (
                sdb.query(QUERY).answers().all()
                == oracle.query(QUERY, backend="serial").answers().all()
            )
        assert sdb.stats()["canonical_plans"] == 1


def test_noop_changeset_commits_nothing():
    db = islands([4, 3], seed=5)
    with ShardedDatabase(db.copy(), shards=2) as sdb:
        present = next(iter(db.facts("E")))
        before = fingerprint(sdb.structure)
        result = sdb.apply([(True, "E", present)])
        assert not result.changed
        assert result.ops_effective == 0
        assert result.fingerprint_after == before
        assert result.version_before == result.version_after


def test_remove_then_reinsert_nets_out():
    db = islands([4, 3], seed=6)
    with ShardedDatabase(db.copy(), shards=2) as sdb:
        left, right = next(iter(db.facts("E")))
        result = sdb.apply(
            [(False, "E", (left, right)), (True, "E", (left, right))]
        )
        assert result.ops_submitted == 2
        assert result.ops_effective == 0


def test_validation_rejects_bad_ops_atomically():
    db = islands([4, 3], seed=7)
    with ShardedDatabase(db.copy(), shards=2) as sdb:
        before = fingerprint(sdb.structure)
        with pytest.raises(SignatureError):
            sdb.apply([(True, "B", (0,)), (True, "NOPE", (1,))])
        with pytest.raises(SignatureError):
            sdb.insert_fact("E", 0)  # arity mismatch
        with pytest.raises(ValueError):
            sdb.insert_fact("B", "ghost")  # not in the domain
        assert fingerprint(sdb.structure) == before


def test_non_maintainable_plans_are_evicted_then_rebuilt():
    db = islands([5, 4, 3], seed=8)
    # A counting atom blocks maintenance (but not sharding, with an int
    # right-hand side) — the plan must be evicted, not refreshed.
    counting = CountCmp("B", 1, (Var("x"),), ">=", 1)
    with ShardedDatabase(db.copy(), shards=3) as sdb:
        sdb.query(counting).answers().all()
        sdb.query(QUERY).answers().all()
        assert sdb.stats()["cached_plans"] == 2
        result = sdb.apply(effective_ops(sdb.structure))
        assert result.maintained_plans == 1
        assert sdb.stats()["cached_plans"] == 1
        with Database(sdb.structure.copy()) as oracle:
            assert (
                sdb.query(counting).answers().all()
                == oracle.query(counting, backend="serial").answers().all()
            )


def test_closed_database_rejects_everything():
    db = islands([3, 2], seed=10)
    sdb = ShardedDatabase(db.copy(), shards=2)
    sdb.close()
    with pytest.raises(EngineError):
        sdb.query("B(x)")
    with pytest.raises(EngineError):
        sdb.insert_fact("B", 0)
    with pytest.raises(EngineError):
        sdb.repartition()
    sdb.close()  # idempotent
