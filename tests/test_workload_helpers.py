"""Tests for the benchmark harness helpers (benchmarks/workloads.py)."""

import math

import pytest

from workloads import (
    EXAMPLE_23,
    colored_graph,
    consume,
    fitted_exponent,
    query,
    three_colored_graph,
)


class TestCaching:
    def test_colored_graph_cached(self):
        assert colored_graph(64, 3) is colored_graph(64, 3)

    def test_different_parameters_not_shared(self):
        assert colored_graph(64, 3) is not colored_graph(64, 4)

    def test_query_cached(self):
        assert query(EXAMPLE_23) is query(EXAMPLE_23)

    def test_three_colored_has_green(self):
        db = three_colored_graph(32, 3)
        assert "G" in db.signature


class TestConsume:
    def test_consumes_up_to_limit(self):
        assert consume(iter(range(100)), 7) == 7

    def test_short_iterator(self):
        assert consume(iter(range(3)), 10) == 3

    def test_zero_limit(self):
        assert consume(iter(range(3)), 0) == 0


class TestFittedExponent:
    def test_linear_data(self):
        xs = [1, 2, 4, 8]
        ys = [10, 20, 40, 80]
        assert fitted_exponent(xs, ys) == pytest.approx(1.0)

    def test_quadratic_data(self):
        xs = [1, 2, 4, 8]
        ys = [x * x for x in xs]
        assert fitted_exponent(xs, ys) == pytest.approx(2.0)

    def test_constant_data_is_zero(self):
        assert fitted_exponent([1, 2, 4], [5, 5, 5]) == pytest.approx(0.0)

    def test_noisy_near_linear(self):
        xs = [512, 1024, 2048, 4096]
        ys = [0.9 * x ** 1.1 for x in xs]
        assert fitted_exponent(xs, ys) == pytest.approx(1.1, abs=1e-6)

    def test_insufficient_points(self):
        assert math.isnan(fitted_exponent([1], [1]))

    def test_zero_values_skipped(self):
        assert fitted_exponent([1, 2, 4], [0, 2, 4]) == pytest.approx(1.0)
