"""Hypothesis strategies: random structures and random FO formulas.

Random formulas are the strongest oracle we have: any divergence between
the pipeline and the naive semantics on any generated (structure, formula)
pair is a bug.  Formulas are generated over the colored-graph signature
``{E/2, B/1, R/1}`` — optionally extended with a ternary relation ``T/3``
— with bounded depth and quantifier nesting, so naive evaluation stays
affordable.
"""

from __future__ import annotations

from contextlib import contextmanager

from hypothesis import assume
from hypothesis import strategies as st

from repro.core.pipeline import supports_query
from repro.errors import UnsupportedQueryError

from repro.fo.syntax import (
    DistAtom,
    Eq,
    Exists,
    Forall,
    RelAtom,
    Var,
    and_,
    not_,
    or_,
)
from repro.structures.random_gen import random_colored_graph, random_structure
from repro.structures.signature import Signature
from repro.structures.structure import Structure

VARIABLE_POOL = [Var("x"), Var("y"), Var("z"), Var("w"), Var("v")]

# A generated formula the pipeline *documents* as out of scope: 17 units
# on partition ({x}, {y}) — over the max_units=16 clause-expansion
# budget.  Kept here as the canonical regression input for the
# rejection convention below (see tests/test_integration.py).
MAX_UNITS_FLAKY_FORMULA = (
    "exists z. ((E(y, y) | (x = z & E(z, x)) | (B(y) & R(z))))"
)


@contextmanager
def rejecting_unsupported():
    """Reject (via ``assume``) formulas outside the supported fragment.

    The pipeline guards its clause expansion (``max_units``) and its
    localization budgets with :class:`UnsupportedQueryError`; random
    formulas can trip them, and every Hypothesis suite must treat that
    as "draw again", not as a failure.  Wrap the whole
    pipeline-building call::

        with rejecting_unsupported():
            pipeline = Pipeline(db, formula, ...)
    """
    try:
        yield
    except UnsupportedQueryError:
        assume(False)

TERNARY_SIGNATURE = Signature.of(T=3, E=2, B=1, R=1)


@st.composite
def structures(draw, max_n: int = 16, max_degree: int = 3):
    """A small random colored graph."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    degree = draw(st.integers(min_value=1, max_value=max_degree))
    density = draw(st.sampled_from([0.3, 0.6, 0.9]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return random_colored_graph(
        n, max_degree=degree, edge_density=density, seed=seed
    )


@st.composite
def disconnected_structures(
    draw, max_components: int = 5, max_component_n: int = 6
):
    """A colored graph assembled from several disjoint islands.

    Each island is an independent random colored graph renumbered into
    its own integer range, so the Gaifman graph has *at least*
    ``len(islands)`` connected components (density may split an island
    further) — the workload family the region partitioner is built for.
    """
    count = draw(st.integers(min_value=2, max_value=max_components))
    pieces = []
    for _ in range(count):
        n = draw(st.integers(min_value=1, max_value=max_component_n))
        seed = draw(st.integers(min_value=0, max_value=2**16))
        pieces.append(
            random_colored_graph(
                n, max_degree=2, edge_density=0.9, seed=seed
            )
        )
    total = sum(piece.cardinality for piece in pieces)
    db = Structure(Signature.of(E=2, B=1, R=1), range(total))
    offset = 0
    for piece in pieces:
        for color in ("B", "R"):
            for (element,) in piece.facts(color):
                db.add_fact(color, element + offset)
        for left, right in piece.facts("E"):
            db.add_fact("E", left + offset, right + offset)
        offset += piece.cardinality
    return db


@st.composite
def ternary_structures(draw, max_n: int = 12, max_degree: int = 3):
    """A small random structure over ``{T/3, E/2, B/1, R/1}``.

    Ternary facts put hyperedges in the Gaifman graph (every pair of a
    fact's components becomes adjacent), exercising the cluster
    enumeration and the linking radius beyond plain graphs.
    """
    n = draw(st.integers(min_value=3, max_value=max_n))
    degree = draw(st.integers(min_value=2, max_value=max_degree + 1))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return random_structure(TERNARY_SIGNATURE, n, max_degree=degree, seed=seed)


def _atoms(variables, ternary: bool = False):
    options = []
    for var in variables:
        options.append(st.just(RelAtom("B", (var,))))
        options.append(st.just(RelAtom("R", (var,))))
    for left in variables:
        for right in variables:
            options.append(st.just(RelAtom("E", (left, right))))
            if left.name < right.name:
                options.append(st.just(Eq(left, right)))
                options.append(
                    st.integers(min_value=1, max_value=3).map(
                        lambda bound, l=left, r=right: DistAtom(l, r, bound)
                    )
                )
    if ternary:
        pool = list(variables)
        for first in pool:
            for second in pool:
                for third in pool:
                    options.append(st.just(RelAtom("T", (first, second, third))))
    return st.one_of(options)


@st.composite
def formulas(
    draw,
    free_count: int = 2,
    max_depth: int = 3,
    max_quantifiers: int = 1,
    ternary: bool = False,
):
    """A random FO formula with the given free variables.

    Quantified variables are drawn from the tail of the pool; at most
    ``max_quantifiers`` quantifiers are introduced (nesting up to
    ``len(VARIABLE_POOL) - free_count`` deep) to keep the naive oracle
    fast.  ``ternary=True`` adds ``T/3`` atoms for structures over
    ``TERNARY_SIGNATURE``.
    """
    free_vars = VARIABLE_POOL[:free_count]

    def build(depth: int, scope, quantifier_budget: int):
        if depth <= 0:
            return draw(_atoms(scope, ternary))
        can_quantify = quantifier_budget > 0 and len(scope) < len(VARIABLE_POOL)
        choice = draw(
            st.sampled_from(
                ["atom", "not", "and", "or"]
                + (["exists", "forall"] if can_quantify else [])
            )
        )
        if choice == "atom":
            return draw(_atoms(scope, ternary))
        if choice == "not":
            return not_(build(depth - 1, scope, quantifier_budget))
        if choice in ("and", "or"):
            width = draw(st.integers(min_value=2, max_value=3))
            parts = [
                build(depth - 1, scope, quantifier_budget) for _ in range(width)
            ]
            return and_(*parts) if choice == "and" else or_(*parts)
        fresh = VARIABLE_POOL[len(scope)]
        inner = build(depth - 1, scope + [fresh], quantifier_budget - 1)
        if choice == "exists":
            return Exists(fresh, inner)
        return Forall(fresh, inner)

    formula = build(max_depth, list(free_vars), max_quantifiers)
    # Make sure every intended free variable actually occurs, so answer
    # tuples have a fixed arity.  The added conjunct mentions the variable
    # but both the oracle and the pipeline evaluate the same formula, so
    # agreement testing stays valid.
    for var in free_vars:
        if var not in formula.free:
            formula = and_(formula, or_(RelAtom("B", (var,)), RelAtom("R", (var,))))
    return formula


@st.composite
def supported_inputs(
    draw,
    free_count: int = 2,
    max_depth: int = 3,
    max_quantifiers: int = 1,
    ternary: bool = False,
    max_n: int = 10,
):
    """A ``(structure, formula)`` pair inside the supported fragment.

    Unit counts are structure-dependent (localization evaluates global
    content against the structure), so the bound can only be enforced on
    the *pair*: draws whose clause expansion would trip the pipeline's
    ``max_units`` budget are rejected here, before any suite sees them.
    Suites that draw structure and formula separately keep the
    :func:`rejecting_unsupported` convention instead.
    """
    db = draw(
        ternary_structures(max_n=max_n) if ternary else structures(max_n=max_n)
    )
    formula = draw(
        formulas(
            free_count=free_count,
            max_depth=max_depth,
            max_quantifiers=max_quantifiers,
            ternary=ternary,
        )
    )
    assume(supports_query(db, formula, order=sorted(formula.free)))
    return db, formula
