"""Tests for constant-time fact testing (Corollary 2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.fact_index import AdjacencyIndex, FactIndex
from repro.structures.random_gen import random_colored_graph, random_structure
from repro.structures.signature import Signature
from repro.structures.structure import Structure


@pytest.fixture
def db():
    structure = Structure(Signature.of(E=2, B=1), range(5))
    structure.add_fact("E", 0, 1)
    structure.add_fact("E", 2, 3)
    structure.add_fact("B", 4)
    return structure


class TestFactIndex:
    def test_positive_lookup(self, db):
        index = FactIndex(db)
        assert index.holds("E", (0, 1))
        assert index.holds("B", (4,))

    def test_negative_lookup(self, db):
        index = FactIndex(db)
        assert not index.holds("E", (1, 0))
        assert not index.holds("B", (0,))

    def test_unknown_relation_is_false(self, db):
        index = FactIndex(db)
        assert not index.holds("F", (0,))

    def test_edge_helper(self, db):
        index = FactIndex(db)
        assert index.edge("E", 0, 1)
        assert not index.edge("E", 1, 0)

    def test_symmetric_edge(self, db):
        index = FactIndex(db)
        assert index.symmetric_edge("E", 1, 0)
        assert index.symmetric_edge("E", 0, 1)
        assert not index.symmetric_edge("E", 0, 4)

    def test_dict_backend_agrees(self, db):
        trie_index = FactIndex(db, backend="trie")
        dict_index = FactIndex(db, backend="dict")
        for u in db.domain:
            for v in db.domain:
                assert trie_index.holds("E", (u, v)) == dict_index.holds(
                    "E", (u, v)
                )

    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_agrees_with_structure_on_random_graphs(self, seed):
        structure = random_colored_graph(20, max_degree=3, seed=seed)
        index = FactIndex(structure)
        domain = list(structure.domain)
        for u in domain[:6]:
            for v in domain[:6]:
                assert index.holds("E", (u, v)) == structure.has_fact("E", u, v)

    def test_ternary_relation(self):
        structure = random_structure(Signature.of(T=3), 12, seed=1)
        index = FactIndex(structure)
        for fact in structure.facts("T"):
            assert index.holds("T", fact)
        assert not index.holds("T", (0, 0, 0)) or structure.has_fact("T", 0, 0, 0)


class TestAdjacencyIndex:
    def test_neighbors(self, db):
        index = AdjacencyIndex(db)
        assert index.neighbors(0) == frozenset({1})
        assert index.neighbors(4) == frozenset()

    def test_adjacent(self, db):
        index = AdjacencyIndex(db)
        assert index.adjacent(0, 1)
        assert index.adjacent(1, 0)  # Gaifman adjacency is symmetric
        assert not index.adjacent(0, 2)

    def test_blocked(self, db):
        index = AdjacencyIndex(db)
        assert index.blocked(1, [0, 4])
        assert not index.blocked(1, [2, 4])
        assert not index.blocked(1, [])
