"""Tests for RAM step accounting and the execution-mode heuristics."""

from repro.storage.cost_model import (
    COLUMNAR_BYTES_PER_VALUE,
    MAX_CHUNK_ROWS,
    MIN_CHUNK_ROWS,
    PICKLE_BYTES_PER_VALUE,
    CostMeter,
    choose_execution_mode,
    default_chunk_rows,
    estimate_transfer_work,
    tick,
)


class TestCostMeter:
    def test_tick_accumulates(self):
        meter = CostMeter()
        meter.tick("a")
        meter.tick("a", count=2)
        meter.tick("b")
        assert meter.steps == 4
        assert meter.by_label == {"a": 3, "b": 1}

    def test_marks_and_deltas(self):
        meter = CostMeter()
        meter.tick(count=5)
        meter.mark()
        meter.tick(count=3)
        meter.mark()
        meter.tick(count=7)
        meter.mark()
        assert meter.deltas() == [3, 7]
        assert meter.max_delta == 7

    def test_no_marks_means_no_deltas(self):
        meter = CostMeter()
        meter.tick()
        assert meter.deltas() == []
        assert meter.max_delta == 0

    def test_reset(self):
        meter = CostMeter()
        meter.tick()
        meter.mark()
        meter.reset()
        assert meter.steps == 0
        assert meter.by_label == {}
        assert meter.deltas() == []

    def test_snapshot_is_a_copy(self):
        meter = CostMeter()
        meter.tick("x")
        snap = meter.snapshot()
        meter.tick("x")
        assert snap == {"x": 1}

    def test_module_tick_with_none_is_noop(self):
        tick(None, "x")  # must not raise

    def test_module_tick_forwards(self):
        meter = CostMeter()
        tick(meter, "y", count=4)
        assert meter.steps == 4


class TestTransferTerm:
    def test_transfer_work_scales_with_rows_and_width(self):
        thin = estimate_transfer_work([100, 100], 2, COLUMNAR_BYTES_PER_VALUE)
        fat = estimate_transfer_work([100, 100], 2, PICKLE_BYTES_PER_VALUE)
        assert 0 < thin < fat

    def test_transfer_work_zero_for_empty_branch(self):
        assert estimate_transfer_work([100, 0], 2, 4) == 0

    def test_no_transfer_term_keeps_legacy_choice(self):
        assert choose_execution_mode([10**6, 10**6], workers=4) == "process"

    def test_cheap_transfer_keeps_process(self):
        works = [10**6, 10**6]
        assert (
            choose_execution_mode(works, workers=4, transfer_work=10**5)
            == "process"
        )

    def test_dominant_transfer_declines_process(self):
        """When shipping the answers costs more than half the compute,
        the multi-core speedup is gone — stay on zero-copy threads."""
        works = [10**6, 10**6]
        assert (
            choose_execution_mode(works, workers=4, transfer_work=2 * 10**6)
            == "thread"
        )

    def test_transfer_term_ignored_below_process_threshold(self):
        assert (
            choose_execution_mode([50_000], workers=4, transfer_work=10**9)
            == "thread"
        )

    def test_shard_sizes_overlap_lowers_the_estimate(self):
        serialized = estimate_transfer_work([1000, 100], 2, 4)
        overlapped = estimate_transfer_work(
            [1000, 100], 2, 4, shard_sizes=[1, 1, 1, 1]
        )
        assert 0 < overlapped < serialized

    def test_shard_sizes_follow_the_critical_path(self):
        # rows=1000, shares [500, 250, 250]: the overlapped bound is the
        # heaviest shard plus the remainder amortized across the lanes —
        # 500 + (250 + 250) // 3 = 666 rows of the serialized 1000.
        serialized = estimate_transfer_work([1000], 1, 8)
        overlapped = estimate_transfer_work(
            [1000], 1, 8, shard_sizes=[2, 1, 1]
        )
        assert serialized == 1000
        assert overlapped == 666

    def test_skewed_shards_overlap_less_than_balanced_ones(self):
        balanced = estimate_transfer_work(
            [1000], 1, 8, shard_sizes=[1, 1, 1, 1]
        )
        skewed = estimate_transfer_work(
            [1000], 1, 8, shard_sizes=[97, 1, 1, 1]
        )
        assert balanced < skewed < estimate_transfer_work([1000], 1, 8)

    def test_degenerate_shard_sizes_fall_back_to_serialized(self):
        serialized = estimate_transfer_work([1000], 2, 4)
        assert (
            estimate_transfer_work([1000], 2, 4, shard_sizes=[])
            == serialized
        )
        assert (
            estimate_transfer_work([1000], 2, 4, shard_sizes=[0, 0])
            == serialized
        )
        assert (
            estimate_transfer_work([1000], 2, 4, shard_sizes=[5])
            == serialized
        )


class TestDefaultChunkRows:
    def test_clamped_to_bounds(self):
        assert default_chunk_rows(1, 1) == MAX_CHUNK_ROWS
        assert default_chunk_rows(512, 8) == MIN_CHUNK_ROWS

    def test_shrinks_as_rows_widen(self):
        assert default_chunk_rows(2, 1) >= default_chunk_rows(8, 4)
        assert default_chunk_rows(3, 2) >= 1
