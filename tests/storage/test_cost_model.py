"""Tests for RAM step accounting."""

from repro.storage.cost_model import CostMeter, tick


class TestCostMeter:
    def test_tick_accumulates(self):
        meter = CostMeter()
        meter.tick("a")
        meter.tick("a", count=2)
        meter.tick("b")
        assert meter.steps == 4
        assert meter.by_label == {"a": 3, "b": 1}

    def test_marks_and_deltas(self):
        meter = CostMeter()
        meter.tick(count=5)
        meter.mark()
        meter.tick(count=3)
        meter.mark()
        meter.tick(count=7)
        meter.mark()
        assert meter.deltas() == [3, 7]
        assert meter.max_delta == 7

    def test_no_marks_means_no_deltas(self):
        meter = CostMeter()
        meter.tick()
        assert meter.deltas() == []
        assert meter.max_delta == 0

    def test_reset(self):
        meter = CostMeter()
        meter.tick()
        meter.mark()
        meter.reset()
        assert meter.steps == 0
        assert meter.by_label == {}
        assert meter.deltas() == []

    def test_snapshot_is_a_copy(self):
        meter = CostMeter()
        meter.tick("x")
        snap = meter.snapshot()
        meter.tick("x")
        assert snap == {"x": 1}

    def test_module_tick_with_none_is_noop(self):
        tick(None, "x")  # must not raise

    def test_module_tick_forwards(self):
        meter = CostMeter()
        tick(meter, "y", count=4)
        assert meter.steps == 4
