"""Tests for the snapshot + write-ahead-log durability layer.

The load-bearing property is the crash-safety contract: kill the process
at *any byte* of the WAL — which is now a sequence of rotated segments,
not one file — and reopening restores exactly the acknowledged prefix of
commits — fingerprint- and answer-identical to an in-memory oracle that
applied the same prefix.  The Hypothesis differential at the bottom
proves it by truncating the concatenated log at arbitrary offsets
(including mid-record, i.e. torn writes, and mid-segment-boundary) and
comparing the recovered database against a replayed copy of the seed.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import DurabilityError, DurabilityWarning
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.session import Database
from repro.storage.wal import (
    MANIFEST_NAME,
    WAL_NAME,
    DurableStore,
    WalRecord,
    segment_name,
)
from repro.structures.random_gen import random_colored_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure
from repro.util.faults import InjectedCrash, inject

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


def small_structure():
    structure = Structure(Signature.of(E=2, B=1, R=1), range(6))
    structure.add_fact("B", 0)
    structure.add_fact("R", 2)
    structure.add_fact("E", 0, 2)
    structure.add_fact("E", 2, 0)
    return structure


def wal_bytes_of(store: DurableStore) -> bytes:
    """The store's WAL as one byte string (segments in replay order)."""
    data = b""
    for path in store.wal_paths():
        with open(path, "rb") as handle:
            data += handle.read()
    return data


class TestWalRecord:
    def test_round_trip(self):
        record = WalRecord(
            version_before=3,
            version_after=5,
            generation=1,
            ops=((True, "E", (0, 1)), (False, "B", (2,))),
        )
        line = record.to_line()
        assert line.endswith("\n")
        assert WalRecord.from_line(line) == record

    def test_tuple_elements_round_trip(self):
        record = WalRecord(0, 1, 0, ((True, "E", ((0, 1), (2, 3))),))
        restored = WalRecord.from_line(record.to_line())
        assert restored.ops == record.ops
        assert isinstance(restored.ops[0][2][0], tuple)

    def test_crc_rejects_tampering(self):
        line = WalRecord(0, 1, 0, ((True, "B", (4,)),)).to_line()
        payload = json.loads(line)
        payload["ops"] = [[1, "B", [5]]]  # flip the element, keep the CRC
        assert WalRecord.from_line(json.dumps(payload)) is None

    def test_garbage_lines_are_torn(self):
        assert WalRecord.from_line("not json\n") is None
        assert WalRecord.from_line("[1, 2, 3]\n") is None
        assert WalRecord.from_line('{"b": 0}\n') is None
        # A valid prefix of a record (torn mid-write) must not parse.
        line = WalRecord(0, 1, 0, ((True, "B", (4,)),)).to_line()
        assert WalRecord.from_line(line[: len(line) // 2]) is None


class TestDurableStore:
    def test_initialize_and_restore(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        assert not store.exists()
        structure = small_structure()
        result = store.initialize(structure)
        assert store.exists()
        assert result.fingerprint == structure.content_fingerprint()
        restored = store.restore()
        assert restored.structure.content_fingerprint() == result.fingerprint
        assert restored.records == ()
        assert restored.truncated_bytes == 0

    def test_initialize_twice_refuses(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        with pytest.raises(DurabilityError, match="already holds"):
            store.initialize(small_structure())

    def test_append_then_restore_replays(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        record = WalRecord(0, 1, 0, ((True, "B", (1,)),))
        store.append(record)
        store.close()
        restored = DurableStore(tmp_path / "db").restore()
        assert restored.records == (record,)

    def test_torn_tail_is_truncated(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        store.append(WalRecord(0, 1, 0, ((True, "B", (1,)),)))
        store.close()
        wal = tmp_path / "db" / segment_name(1)
        intact = wal.stat().st_size
        with open(wal, "ab") as handle:
            handle.write(b'{"b": 99, "v": 100, "torn')
        restored = DurableStore(tmp_path / "db").restore()
        assert len(restored.records) == 1
        assert restored.truncated_bytes > 0
        # The torn suffix is physically gone: appends restart on a
        # record boundary.
        assert wal.stat().st_size == intact

    def test_checkpoint_retires_segments_and_rotates_snapshot(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        structure = small_structure()
        store.initialize(structure)
        structure.add_fact("B", 1)
        store.append(
            WalRecord(structure.version - 1, structure.version, 0,
                      ((True, "B", (1,)),))
        )
        result = store.checkpoint(structure, ())
        assert result.wal_records_retired == 1
        assert result.wal_segments_retired == 1
        assert store.wal_paths() == []
        names = sorted(os.listdir(tmp_path / "db"))
        # Exactly one snapshot file remains: the superseded one (and
        # every WAL segment) was removed.
        assert names == [MANIFEST_NAME, f"snapshot-{structure.version}.struct"]

    def test_corrupt_snapshot_is_refused(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        result = store.initialize(small_structure())
        snapshot = tmp_path / "db" / f"snapshot-{result.version}.struct"
        text = snapshot.read_text()
        snapshot.write_text(text + "B 3\n")  # an extra fact: fingerprint drifts
        with pytest.raises(DurabilityError, match="fingerprint"):
            DurableStore(tmp_path / "db").restore()

    def test_unsupported_format_is_refused(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        manifest_path = tmp_path / "db" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DurabilityError, match="format"):
            DurableStore(tmp_path / "db").restore()

    def test_unpicklable_warm_entry_warns_and_degrades(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        structure = small_structure()
        with pytest.warns(DurabilityWarning, match="warm spill"):
            result = store.checkpoint(
                structure,
                warm_entries=[("key", None, 0.5, lambda: None)],
            )
        # Durability is intact; only the accelerator was dropped.
        assert result.warm_entries == 0
        assert not (tmp_path / "db" / f"warm-{result.version}.pickle").exists()
        restored = DurableStore(tmp_path / "db").restore()
        assert restored.warm_structure is None
        assert restored.warm_entries == ()
        assert (
            restored.structure.content_fingerprint() == result.fingerprint
        )

    def test_corrupt_warm_spill_never_blocks_recovery(self, tmp_path):
        path = tmp_path / "db"
        with Database.open(path, structure=small_structure()) as db:
            db.query(EXAMPLE)
            result = db.checkpoint()
            assert result.warm_entries >= 1
        warm = path / f"warm-{result.version}.pickle"
        warm.write_bytes(b"\x80\x04 definitely not a bundle")
        with pytest.warns(DurabilityWarning, match="warm spill"):
            restored = DurableStore(path).restore()
        assert restored.warm_structure is None
        assert restored.warm_entries == ()
        assert restored.structure.content_fingerprint() == result.fingerprint


class TestWalSegments:
    """Satellite: segment rotation bounds every WAL file."""

    def records(self, count):
        return [
            WalRecord(v, v + 1, 0, ((True, "B", (v % 6,)),))
            for v in range(count)
        ]

    def test_appends_roll_segments(self, tmp_path):
        store = DurableStore(tmp_path / "db", segment_bytes=128)
        store.initialize(small_structure())
        for record in self.records(10):
            store.append(record)
        indices = store.segment_indices()
        assert len(indices) > 1
        assert indices == sorted(indices)
        # No file outgrew the bound by more than one record.
        for index in indices[:-1]:
            assert os.path.getsize(
                tmp_path / "db" / segment_name(index)
            ) <= 128 + 128

    def test_segmented_restore_replays_in_order(self, tmp_path):
        store = DurableStore(tmp_path / "db", segment_bytes=128)
        store.initialize(small_structure())
        records = self.records(10)
        for record in records:
            store.append(record)
        store.close()
        restored = DurableStore(tmp_path / "db").restore()
        assert list(restored.records) == records

    def test_stats_count_segments(self, tmp_path):
        store = DurableStore(tmp_path / "db", segment_bytes=128)
        store.initialize(small_structure())
        assert store.stats()["wal_segments"] == 0
        for record in self.records(10):
            store.append(record)
        stats = store.stats()
        assert stats["wal_records"] == 10
        assert stats["wal_segments"] == len(store.segment_indices()) > 1
        assert stats["wal_bytes"] == len(wal_bytes_of(store))
        store.checkpoint(small_structure(), ())
        assert store.stats()["wal_segments"] == 0

    def test_torn_mid_segment_drops_later_segments(self, tmp_path):
        store = DurableStore(tmp_path / "db", segment_bytes=128)
        store.initialize(small_structure())
        records = self.records(10)
        for record in records:
            store.append(record)
        store.close()
        indices = store.segment_indices()
        assert len(indices) >= 3
        # Tear the *middle* segment: everything after the tear was, by
        # the fsync-before-acknowledge contract, never acknowledged.
        victim = tmp_path / "db" / segment_name(indices[1])
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) - 7])
        survivors = []
        offset = 0
        cut = wal_bytes_of(DurableStore(tmp_path / "db"))
        while offset < len(cut):
            newline = cut.find(b"\n", offset)
            if newline < 0:
                break
            record = WalRecord.from_line(cut[offset:newline + 1].decode())
            if record is None:
                break
            survivors.append(record)
            offset = newline + 1
        restored = DurableStore(tmp_path / "db").restore()
        assert list(restored.records) == survivors
        assert len(restored.records) < len(records)
        # Later segments are physically gone; appends resume cleanly.
        after = DurableStore(tmp_path / "db")
        assert after.segment_indices() == indices[:2]

    def test_legacy_single_file_wal_still_reads(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        legacy = [WalRecord(0, 1, 0, ((True, "B", (1,)),)),
                  WalRecord(1, 2, 0, ((True, "R", (3,)),))]
        with open(tmp_path / "db" / WAL_NAME, "w") as handle:
            for record in legacy:
                handle.write(record.to_line())
        fresh = DurableStore(tmp_path / "db")
        # New appends go to a numbered segment; the legacy file reads first.
        extra = WalRecord(2, 3, 0, ((True, "B", (4,)),))
        fresh.append(extra)
        fresh.close()
        restored = DurableStore(tmp_path / "db").restore()
        assert list(restored.records) == legacy + [extra]

    def test_duplicated_record_is_skipped_on_reopen(self, tmp_path):
        # A replication-style anomaly: the same record shipped (or
        # fsync'd) twice.  Replay skips it by version interval.
        path = tmp_path / "db"
        with Database.open(path, structure=small_structure(), sync=False) as db:
            db.insert_fact("B", 1)
            db.insert_fact("R", 3)
            fingerprint = db.structure_fingerprint
            version = db.version
        store = DurableStore(path)
        lines = wal_bytes_of(store).decode().splitlines(keepends=True)
        assert len(lines) == 2
        with open(store.wal_paths()[-1], "w") as handle:
            handle.write(lines[0])
            handle.write(lines[0])  # the same acknowledged record, twice
            handle.write(lines[1])
            handle.write(lines[1])
        with Database.open(path) as db:
            assert db.version == version
            assert db.structure_fingerprint == fingerprint
        # A genuine *gap*, though, is a hard error — skipping it would
        # silently diverge from the leader.
        store = DurableStore(path)
        lines = wal_bytes_of(store).decode().splitlines(keepends=True)
        with open(store.wal_paths()[-1], "w") as handle:
            handle.write(lines[-1])  # v1->v2 with no v0->v1 before it
        with pytest.raises(DurabilityError):
            Database.open(path).close()


class TestIncrementalCheckpoint:
    """Satellite: clean plans reuse their spill blob across checkpoints."""

    def test_clean_plans_reuse_blobs(self, tmp_path):
        with Database.open(tmp_path / "db", structure=small_structure()) as db:
            db.query(EXAMPLE).count()
            db.query("B(x)").count()
            first = db.checkpoint()
            assert first.warm_entries == 2
            assert first.warm_reused == 0
            assert db.stats()["dirty_plans"] == 0
            # Nothing changed: the next checkpoint re-pickles nothing.
            second = db.checkpoint()
            assert second.warm_entries == 2
            assert second.warm_reused == 2

    def test_reused_blobs_restore_correct_answers(self, tmp_path):
        path = tmp_path / "db"
        with Database.open(path, structure=small_structure()) as db:
            expected = db.query(EXAMPLE).answers().all()
            db.checkpoint()
            db.checkpoint()  # second spill is 100% reused blobs
        with Database.open(path) as db:
            hits_before = db.stats()["hits"]
            assert db.query(EXAMPLE).answers().all() == expected
            assert db.stats()["hits"] > hits_before  # warm, not rebuilt

    def test_commit_dirties_refreshed_plans(self, tmp_path):
        with Database.open(tmp_path / "db", structure=small_structure()) as db:
            db.query(EXAMPLE).count()
            db.checkpoint()
            db.insert_fact("B", 1)  # graph surgery around element 1
            assert db.stats()["dirty_plans"] >= 1
            result = db.checkpoint()
            assert result.warm_reused < result.warm_entries or (
                result.warm_entries == 0
            )
            # And the re-spilled plan still answers correctly cold.
        with Database.open(tmp_path / "db") as db:
            formula = parse(EXAMPLE)
            want = sorted(
                naive_answers(formula, db.structure,
                              order=sorted(formula.free))
            )
            assert sorted(db.query(EXAMPLE).answers().all()) == want


class TestCrashPoints:
    """The named fault-injection points in append and checkpoint."""

    def test_torn_append_recovers_previous_state(self, tmp_path):
        path = tmp_path / "db"
        db = Database.open(path, structure=small_structure(), sync=False)
        db.insert_fact("B", 1)
        fingerprint = db.structure_fingerprint
        version = db.version
        with inject({"wal.append.torn": 1}):
            with pytest.raises(DurabilityError):
                db.insert_fact("R", 3)
        db.close()
        # The torn half-record is on disk; recovery truncates it and the
        # store reopens at the last *acknowledged* commit.
        with Database.open(path) as recovered:
            assert recovered.version == version
            assert recovered.structure_fingerprint == fingerprint

    def test_crash_before_append_loses_nothing_durable(self, tmp_path):
        path = tmp_path / "db"
        db = Database.open(path, structure=small_structure(), sync=False)
        version = db.version
        with inject({"wal.append.before": 1}):
            with pytest.raises(DurabilityError):
                db.insert_fact("B", 1)
        db.close()
        with Database.open(path) as recovered:
            assert recovered.version == version

    def test_crash_between_manifest_and_reset_is_harmless(self, tmp_path):
        path = tmp_path / "db"
        db = Database.open(path, structure=small_structure(), sync=False)
        db.insert_fact("B", 1)
        db.insert_fact("R", 3)
        fingerprint = db.structure_fingerprint
        version = db.version
        with inject({"checkpoint.after-manifest": 1}):
            with pytest.raises(InjectedCrash):
                db.checkpoint()
        db.close()
        # The manifest moved but the WAL was not reset: recovery must
        # skip the pre-snapshot records by version interval.
        with Database.open(path) as recovered:
            assert recovered.version == version
            assert recovered.structure_fingerprint == fingerprint

    def test_crash_after_snapshot_write_keeps_old_manifest(self, tmp_path):
        path = tmp_path / "db"
        db = Database.open(path, structure=small_structure(), sync=False)
        db.insert_fact("B", 1)
        fingerprint = db.structure_fingerprint
        with inject({"checkpoint.after-snapshot": 1}):
            with pytest.raises(InjectedCrash):
                db.checkpoint()
        db.close()
        with Database.open(path) as recovered:
            assert recovered.structure_fingerprint == fingerprint


class TestReadOnlyTail:
    """records_since / load_snapshot never mutate a (live) store."""

    def test_records_since_filters_and_limits(self, tmp_path):
        store = DurableStore(tmp_path / "db", segment_bytes=128)
        store.initialize(small_structure())
        records = [
            WalRecord(v, v + 1, 0, ((True, "B", (v % 6,)),))
            for v in range(8)
        ]
        for record in records:
            store.append(record)
        tail, more = store.records_since(3)
        assert [r.version_after for r in tail] == [4, 5, 6, 7, 8]
        assert more is False
        tail, more = store.records_since(0, limit=2)
        assert [r.version_after for r in tail] == [1, 2]
        assert more is True

    def test_records_since_does_not_truncate_torn_tails(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        store.append(WalRecord(0, 1, 0, ((True, "B", (1,)),)))
        store.close()
        wal = tmp_path / "db" / segment_name(1)
        with open(wal, "ab") as handle:
            handle.write(b'{"torn')  # an in-flight append
        size = wal.stat().st_size
        reader = DurableStore(tmp_path / "db")
        tail, _ = reader.records_since(0)
        assert len(tail) == 1
        assert wal.stat().st_size == size  # untouched

    def test_load_snapshot_is_read_only(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        structure = small_structure()
        store.initialize(structure)
        store.append(WalRecord(0, 1, 0, ((True, "B", (1,)),)))
        store.close()
        before = sorted(os.listdir(tmp_path / "db"))
        reader = DurableStore(tmp_path / "db")
        loaded, manifest = reader.load_snapshot()
        assert loaded.content_fingerprint() == structure.content_fingerprint()
        assert manifest["version"] == structure.version
        assert reader.manifest_version() == structure.version
        assert sorted(os.listdir(tmp_path / "db")) == before


class TestWalStats:
    def test_fresh_store_reports_zero(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        stats = store.stats()
        assert stats["wal_records"] == 0
        assert stats["wal_bytes"] == 0
        assert stats["wal_segments"] == 0
        assert stats["path"] == store.path

    def test_appends_accumulate(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        store.append(WalRecord(0, 1, 0, ((True, "B", (1,)),)))
        store.append(WalRecord(1, 2, 0, ((True, "R", (2,)),)))
        stats = store.stats()
        assert stats["wal_records"] == 2
        assert stats["wal_bytes"] == os.path.getsize(
            tmp_path / "db" / segment_name(1)
        )
        assert stats["wal_bytes"] > 0
        assert stats["wal_segments"] == 1

    def test_reopened_store_counts_existing_records(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        store.append(WalRecord(0, 1, 0, ((True, "B", (1,)),)))
        store.close()
        # A cold store must count what is on disk, not start from zero.
        assert DurableStore(tmp_path / "db").stats()["wal_records"] == 1

    def test_checkpoint_retires_and_resets(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        structure = small_structure()
        store.initialize(structure)
        structure.add_fact("B", 1)
        store.append(
            WalRecord(structure.version - 1, structure.version, 0,
                      ((True, "B", (1,)),))
        )
        before = store.stats()
        result = store.checkpoint(structure, ())
        assert result.wal_records_retired == before["wal_records"] == 1
        assert result.wal_bytes_retired == before["wal_bytes"]
        after = store.stats()
        assert after["wal_records"] == 0
        assert after["wal_bytes"] == 0

    def test_database_surfaces_wal_stats(self, tmp_path):
        with Database.open(
            tmp_path / "db", structure=small_structure()
        ) as db:
            assert db.stats()["wal_records"] == 0
            db.insert_fact("B", 1)
            db.insert_fact("R", 3)
            stats = db.stats()
            assert stats["wal_records"] == 2
            assert stats["wal_bytes"] > 0
            assert stats["wal_segments"] == 1
            db.checkpoint()
            assert db.stats()["wal_records"] == 0
            assert db.stats()["wal_segments"] == 0

    def test_memory_database_has_no_wal_stats(self):
        with Database(small_structure()) as db:
            assert "wal_records" not in db.stats()


# -- crash-recovery differential ----------------------------------------


def apply_ops(structure, ops):
    """The oracle's replay: WAL ops are effective by construction."""
    for insert, relation, elements in ops:
        if insert:
            structure.add_fact(relation, *elements)
        else:
            structure.remove_fact(relation, *elements)


def intact_prefix(wal_bytes):
    """The records an arbitrary byte-truncation leaves intact."""
    records = []
    offset = 0
    while offset < len(wal_bytes):
        newline = wal_bytes.find(b"\n", offset)
        if newline < 0:
            break
        record = WalRecord.from_line(wal_bytes[offset : newline + 1].decode())
        if record is None:
            break
        records.append(record)
        offset = newline + 1
    return records


def copy_store_with_cut(live, recovered, cut):
    """Clone a store directory, truncating the concatenated WAL at
    byte ``cut`` — the file holding the cut is truncated, every later
    segment is dropped (a crash can only tear the file being written,
    and later segments postdate it)."""
    os.makedirs(recovered)
    shutil.copy(live / MANIFEST_NAME, recovered / MANIFEST_NAME)
    manifest = json.loads((live / MANIFEST_NAME).read_text())
    shutil.copy(live / manifest["snapshot"], recovered / manifest["snapshot"])
    remaining = cut
    for path in DurableStore(live).wal_paths():
        data = open(path, "rb").read()
        if remaining <= 0:
            break
        keep = data[:remaining]
        (recovered / os.path.basename(path)).write_bytes(keep)
        remaining -= len(data)


@st.composite
def commit_streams(draw):
    """A seed structure plus a few random changesets to commit."""
    seed = draw(st.integers(min_value=0, max_value=50))
    structure = random_colored_graph(12, max_degree=3, seed=seed).copy()
    domain = list(structure.domain)
    commits = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        ops = []
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            relation = draw(st.sampled_from(["E", "B", "R"]))
            insert = draw(st.booleans())
            if relation == "E":
                elements = (draw(st.sampled_from(domain)),
                            draw(st.sampled_from(domain)))
            else:
                elements = (draw(st.sampled_from(domain)),)
            ops.append(("insert" if insert else "delete", relation, elements))
        commits.append(ops)
    return structure, commits


class TestCrashRecoveryDifferential:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_reopen_at_any_kill_point_matches_oracle(self, data, tmp_path_factory):
        structure, commits = data.draw(commit_streams())
        # Tiny segments force the kill point to land mid-segment-chain
        # in most examples, covering rotation in the recovery path.
        segment_bytes = data.draw(st.sampled_from([96, 256, 4 * 1024 * 1024]))
        base = tmp_path_factory.mktemp("crash")
        live, recovered = base / "live", base / "recovered"

        # Run the commit stream against a durable database ...
        with Database.open(
            live, structure=structure.copy(), sync=False,
            segment_bytes=segment_bytes,
        ) as db:
            for ops in commits:
                db.apply(ops)
        wal_bytes = wal_bytes_of(DurableStore(live))

        # ... and kill it at an arbitrary WAL byte (torn writes and
        # segment boundaries included).
        cut = data.draw(st.integers(min_value=0, max_value=len(wal_bytes)))
        copy_store_with_cut(live, recovered, cut)

        surviving = intact_prefix(wal_bytes[:cut])

        # The oracle applies exactly the surviving acknowledged prefix.
        oracle_structure = DurableStore(recovered).restore().structure.copy()
        for record in surviving:
            apply_ops(oracle_structure, record.ops)

        with Database.open(recovered) as db:
            assert (
                db.structure_fingerprint
                == oracle_structure.content_fingerprint()
            )
            if surviving:
                assert db.version == surviving[-1].version_after
            formula = parse(EXAMPLE)
            want = sorted(
                naive_answers(formula, oracle_structure,
                              order=sorted(formula.free))
            )
            assert sorted(db.query(EXAMPLE).answers().all()) == want
