"""Tests for the snapshot + write-ahead-log durability layer.

The load-bearing property is the crash-safety contract: kill the process
at *any byte* of the WAL and reopening restores exactly the acknowledged
prefix of commits — fingerprint- and answer-identical to an in-memory
oracle that applied the same prefix.  The Hypothesis differential at the
bottom proves it by truncating the log at arbitrary offsets (including
mid-record, i.e. torn writes) and comparing the recovered database
against a replayed copy of the seed.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import DurabilityError, DurabilityWarning
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.session import Database
from repro.storage.wal import (
    MANIFEST_NAME,
    WAL_NAME,
    DurableStore,
    WalRecord,
)
from repro.structures.random_gen import random_colored_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


def small_structure():
    structure = Structure(Signature.of(E=2, B=1, R=1), range(6))
    structure.add_fact("B", 0)
    structure.add_fact("R", 2)
    structure.add_fact("E", 0, 2)
    structure.add_fact("E", 2, 0)
    return structure


class TestWalRecord:
    def test_round_trip(self):
        record = WalRecord(
            version_before=3,
            version_after=5,
            generation=1,
            ops=((True, "E", (0, 1)), (False, "B", (2,))),
        )
        line = record.to_line()
        assert line.endswith("\n")
        assert WalRecord.from_line(line) == record

    def test_tuple_elements_round_trip(self):
        record = WalRecord(0, 1, 0, ((True, "E", ((0, 1), (2, 3))),))
        restored = WalRecord.from_line(record.to_line())
        assert restored.ops == record.ops
        assert isinstance(restored.ops[0][2][0], tuple)

    def test_crc_rejects_tampering(self):
        line = WalRecord(0, 1, 0, ((True, "B", (4,)),)).to_line()
        payload = json.loads(line)
        payload["ops"] = [[1, "B", [5]]]  # flip the element, keep the CRC
        assert WalRecord.from_line(json.dumps(payload)) is None

    def test_garbage_lines_are_torn(self):
        assert WalRecord.from_line("not json\n") is None
        assert WalRecord.from_line("[1, 2, 3]\n") is None
        assert WalRecord.from_line('{"b": 0}\n') is None
        # A valid prefix of a record (torn mid-write) must not parse.
        line = WalRecord(0, 1, 0, ((True, "B", (4,)),)).to_line()
        assert WalRecord.from_line(line[: len(line) // 2]) is None


class TestDurableStore:
    def test_initialize_and_restore(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        assert not store.exists()
        structure = small_structure()
        result = store.initialize(structure)
        assert store.exists()
        assert result.fingerprint == structure.content_fingerprint()
        restored = store.restore()
        assert restored.structure.content_fingerprint() == result.fingerprint
        assert restored.records == ()
        assert restored.truncated_bytes == 0

    def test_initialize_twice_refuses(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        with pytest.raises(DurabilityError, match="already holds"):
            store.initialize(small_structure())

    def test_append_then_restore_replays(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        record = WalRecord(0, 1, 0, ((True, "B", (1,)),))
        store.append(record)
        store.close()
        restored = DurableStore(tmp_path / "db").restore()
        assert restored.records == (record,)

    def test_torn_tail_is_truncated(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        store.append(WalRecord(0, 1, 0, ((True, "B", (1,)),)))
        store.close()
        wal = tmp_path / "db" / WAL_NAME
        intact = wal.stat().st_size
        with open(wal, "ab") as handle:
            handle.write(b'{"b": 99, "v": 100, "torn')
        restored = DurableStore(tmp_path / "db").restore()
        assert len(restored.records) == 1
        assert restored.truncated_bytes > 0
        # The torn suffix is physically gone: appends restart on a
        # record boundary.
        assert wal.stat().st_size == intact

    def test_checkpoint_truncates_wal_and_rotates_snapshot(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        structure = small_structure()
        store.initialize(structure)
        structure.add_fact("B", 1)
        store.append(
            WalRecord(structure.version - 1, structure.version, 0,
                      ((True, "B", (1,)),))
        )
        result = store.checkpoint(structure, ())
        assert result.wal_records_retired == 1
        assert os.path.getsize(tmp_path / "db" / WAL_NAME) == 0
        names = sorted(os.listdir(tmp_path / "db"))
        # Exactly one snapshot file remains: the superseded one was removed.
        assert names == [MANIFEST_NAME, f"snapshot-{structure.version}.struct",
                         WAL_NAME]

    def test_corrupt_snapshot_is_refused(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        result = store.initialize(small_structure())
        snapshot = tmp_path / "db" / f"snapshot-{result.version}.struct"
        text = snapshot.read_text()
        snapshot.write_text(text + "B 3\n")  # an extra fact: fingerprint drifts
        with pytest.raises(DurabilityError, match="fingerprint"):
            DurableStore(tmp_path / "db").restore()

    def test_unsupported_format_is_refused(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        manifest_path = tmp_path / "db" / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DurabilityError, match="format"):
            DurableStore(tmp_path / "db").restore()

    def test_unpicklable_warm_entry_warns_and_degrades(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        structure = small_structure()
        with pytest.warns(DurabilityWarning, match="warm spill"):
            result = store.checkpoint(
                structure, warm_entries=[("key", lambda: None)]
            )
        # Durability is intact; only the accelerator was dropped.
        assert result.warm_entries == 0
        assert not (tmp_path / "db" / f"warm-{result.version}.pickle").exists()
        restored = DurableStore(tmp_path / "db").restore()
        assert restored.warm_structure is None
        assert restored.warm_entries == ()
        assert (
            restored.structure.content_fingerprint() == result.fingerprint
        )

    def test_corrupt_warm_spill_never_blocks_recovery(self, tmp_path):
        path = tmp_path / "db"
        with Database.open(path, structure=small_structure()) as db:
            db.query(EXAMPLE)
            result = db.checkpoint()
            assert result.warm_entries >= 1
        warm = path / f"warm-{result.version}.pickle"
        warm.write_bytes(b"\x80\x04 definitely not a bundle")
        with pytest.warns(DurabilityWarning, match="warm spill"):
            restored = DurableStore(path).restore()
        assert restored.warm_structure is None
        assert restored.warm_entries == ()
        assert restored.structure.content_fingerprint() == result.fingerprint


class TestWalStats:
    def test_fresh_store_reports_zero(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        stats = store.stats()
        assert stats["wal_records"] == 0
        assert stats["wal_bytes"] == 0
        assert stats["path"] == store.path

    def test_appends_accumulate(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        store.append(WalRecord(0, 1, 0, ((True, "B", (1,)),)))
        store.append(WalRecord(1, 2, 0, ((True, "R", (2,)),)))
        stats = store.stats()
        assert stats["wal_records"] == 2
        assert stats["wal_bytes"] == os.path.getsize(
            tmp_path / "db" / WAL_NAME
        )
        assert stats["wal_bytes"] > 0

    def test_reopened_store_counts_existing_records(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        store.initialize(small_structure())
        store.append(WalRecord(0, 1, 0, ((True, "B", (1,)),)))
        store.close()
        # A cold store must count what is on disk, not start from zero.
        assert DurableStore(tmp_path / "db").stats()["wal_records"] == 1

    def test_checkpoint_retires_and_resets(self, tmp_path):
        store = DurableStore(tmp_path / "db")
        structure = small_structure()
        store.initialize(structure)
        structure.add_fact("B", 1)
        store.append(
            WalRecord(structure.version - 1, structure.version, 0,
                      ((True, "B", (1,)),))
        )
        before = store.stats()
        result = store.checkpoint(structure, ())
        assert result.wal_records_retired == before["wal_records"] == 1
        assert result.wal_bytes_retired == before["wal_bytes"]
        after = store.stats()
        assert after["wal_records"] == 0
        assert after["wal_bytes"] == 0

    def test_database_surfaces_wal_stats(self, tmp_path):
        with Database.open(
            tmp_path / "db", structure=small_structure()
        ) as db:
            assert db.stats()["wal_records"] == 0
            db.insert_fact("B", 1)
            db.insert_fact("R", 3)
            stats = db.stats()
            assert stats["wal_records"] == 2
            assert stats["wal_bytes"] > 0
            db.checkpoint()
            assert db.stats()["wal_records"] == 0

    def test_memory_database_has_no_wal_stats(self):
        with Database(small_structure()) as db:
            assert "wal_records" not in db.stats()


# -- crash-recovery differential ----------------------------------------


def apply_ops(structure, ops):
    """The oracle's replay: WAL ops are effective by construction."""
    for insert, relation, elements in ops:
        if insert:
            structure.add_fact(relation, *elements)
        else:
            structure.remove_fact(relation, *elements)


def intact_prefix(wal_bytes):
    """The records an arbitrary byte-truncation leaves intact."""
    records = []
    offset = 0
    while offset < len(wal_bytes):
        newline = wal_bytes.find(b"\n", offset)
        if newline < 0:
            break
        record = WalRecord.from_line(wal_bytes[offset : newline + 1].decode())
        if record is None:
            break
        records.append(record)
        offset = newline + 1
    return records


@st.composite
def commit_streams(draw):
    """A seed structure plus a few random changesets to commit."""
    seed = draw(st.integers(min_value=0, max_value=50))
    structure = random_colored_graph(12, max_degree=3, seed=seed).copy()
    domain = list(structure.domain)
    commits = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        ops = []
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            relation = draw(st.sampled_from(["E", "B", "R"]))
            insert = draw(st.booleans())
            if relation == "E":
                elements = (draw(st.sampled_from(domain)),
                            draw(st.sampled_from(domain)))
            else:
                elements = (draw(st.sampled_from(domain)),)
            ops.append(("insert" if insert else "delete", relation, elements))
        commits.append(ops)
    return structure, commits


class TestCrashRecoveryDifferential:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_reopen_at_any_kill_point_matches_oracle(self, data, tmp_path_factory):
        structure, commits = data.draw(commit_streams())
        base = tmp_path_factory.mktemp("crash")
        live, recovered = base / "live", base / "recovered"

        # Run the commit stream against a durable database ...
        with Database.open(live, structure=structure.copy(), sync=False) as db:
            for ops in commits:
                db.apply(ops)
        wal_bytes = (live / WAL_NAME).read_bytes()

        # ... and kill it at an arbitrary WAL byte (torn writes included).
        cut = data.draw(st.integers(min_value=0, max_value=len(wal_bytes)))
        os.makedirs(recovered)
        for name in (MANIFEST_NAME,):
            shutil.copy(live / name, recovered / name)
        manifest = json.loads((live / MANIFEST_NAME).read_text())
        shutil.copy(live / manifest["snapshot"], recovered / manifest["snapshot"])
        (recovered / WAL_NAME).write_bytes(wal_bytes[:cut])

        surviving = intact_prefix(wal_bytes[:cut])

        # The oracle applies exactly the surviving acknowledged prefix.
        oracle_structure = DurableStore(recovered).restore().structure.copy()
        for record in surviving:
            apply_ops(oracle_structure, record.ops)

        with Database.open(recovered) as db:
            assert (
                db.structure_fingerprint
                == oracle_structure.content_fingerprint()
            )
            if surviving:
                assert db.version == surviving[-1].version_after
            formula = parse(EXAMPLE)
            want = sorted(
                naive_answers(formula, oracle_structure,
                              order=sorted(formula.free))
            )
            assert sorted(db.query(EXAMPLE).answers().all()) == want
