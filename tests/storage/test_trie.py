"""Tests for the Storing Theorem trie (Theorem 2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.trie import DictBackend, ElementTrie, StoringTrie, store_function


class TestStoringTrieBasics:
    def test_store_and_lookup(self):
        trie = StoringTrie(n=10, k=2)
        trie.store((3, 4), "value")
        assert trie.lookup((3, 4)) == "value"

    def test_missing_key_is_void(self):
        trie = StoringTrie(n=10, k=2)
        trie.store((3, 4), "value")
        assert trie.lookup((4, 3)) is None

    def test_contains(self):
        trie = StoringTrie(n=10, k=1)
        trie.store((7,), 1)
        assert (7,) in trie
        assert (8,) not in trie

    def test_overwrite(self):
        trie = StoringTrie(n=10, k=1)
        trie.store((2,), "a")
        trie.store((2,), "b")
        assert trie.lookup((2,)) == "b"
        assert len(trie) == 1

    def test_len_counts_distinct_keys(self):
        trie = StoringTrie(n=10, k=2)
        trie.store((1, 2), 1)
        trie.store((2, 1), 2)
        assert len(trie) == 2

    def test_none_like_values_distinguishable_from_void(self):
        trie = StoringTrie(n=10, k=1)
        trie.store((5,), False)
        assert trie.lookup((5,)) is False
        assert (5,) in trie

    def test_wrong_key_length_rejected(self):
        trie = StoringTrie(n=10, k=2)
        with pytest.raises(ValueError):
            trie.store((1,), "v")

    def test_component_out_of_range_rejected(self):
        trie = StoringTrie(n=10, k=1)
        with pytest.raises(ValueError):
            trie.store((10,), "v")
        with pytest.raises(ValueError):
            trie.lookup((-1,))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StoringTrie(n=0, k=1)
        with pytest.raises(ValueError):
            StoringTrie(n=10, k=0)
        with pytest.raises(ValueError):
            StoringTrie(n=10, k=1, eps=0)


class TestTrieShape:
    def test_depth_shrinks_as_eps_grows(self):
        deep = StoringTrie(n=1024, k=2, eps=0.1)
        shallow = StoringTrie(n=1024, k=2, eps=1.0)
        assert deep.depth > shallow.depth

    def test_fanout_is_n_to_eps(self):
        trie = StoringTrie(n=1024, k=1, eps=0.5)
        # eps * log2(n) = 5 bits per level.
        assert trie.fanout_bits == 5
        assert trie.depth == 2

    def test_storage_accounting_grows_with_inserts(self):
        trie = StoringTrie(n=4096, k=2, eps=0.25)
        before = trie.slots_allocated
        for i in range(50):
            trie.store((i, i), i)
        assert trie.slots_allocated > before

    def test_single_level_trie(self):
        trie = StoringTrie(n=4, k=1, eps=2.0)
        assert trie.depth == 1
        trie.store((3,), "x")
        assert trie.lookup((3,)) == "x"


@given(
    keys=st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 63)),
        min_size=1,
        max_size=60,
        unique=True,
    ),
    eps=st.sampled_from([0.2, 0.5, 1.0]),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_matches_dict(keys, eps):
    """Property: the trie agrees with a plain dict on lookups and misses."""
    trie = StoringTrie(n=64, k=2, eps=eps)
    reference = {}
    for index, key in enumerate(keys):
        trie.store(key, index)
        reference[key] = index
    for key, value in reference.items():
        assert trie.lookup(key) == value
    for probe in [(0, 0), (63, 63), (1, 2)]:
        assert trie.lookup(probe) == reference.get(probe)
    assert len(trie) == len(reference)


class TestDictBackend:
    def test_roundtrip(self):
        backend = DictBackend(k=2)
        backend.store((1, 2), "v")
        assert backend.lookup((1, 2)) == "v"
        assert backend.lookup((2, 1)) is None
        assert (1, 2) in backend
        assert len(backend) == 1

    def test_arity_check(self):
        with pytest.raises(ValueError):
            DictBackend(k=2).store((1,), "v")


class TestElementTrie:
    def test_element_keys(self):
        elements = ["a", "b", "c"]
        rank = {e: i for i, e in enumerate(elements)}.__getitem__
        trie = ElementTrie(n=3, k=2, rank=rank)
        trie.store(("a", "c"), 1)
        assert trie.lookup(("a", "c")) == 1
        assert trie.lookup(("c", "a")) is None
        assert ("a", "c") in trie
        assert len(trie) == 1

    def test_dict_backend(self):
        rank = {"x": 0}.__getitem__
        trie = ElementTrie(n=1, k=1, rank=rank, backend="dict")
        trie.store(("x",), 9)
        assert trie.lookup(("x",)) == 9

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            ElementTrie(n=1, k=1, rank=lambda e: 0, backend="nope")


def test_store_function_bulk():
    trie = store_function([((1, 2), "a"), ((3, 4), "b")], n=8, k=2)
    assert trie.lookup((1, 2)) == "a"
    assert trie.lookup((3, 4)) == "b"
    assert len(trie) == 2
