"""Direct unit tests for LocalEvaluator (the pipeline's evaluation engine)."""

import pytest

from repro.errors import EvaluationError, QueryError
from repro.fo.localize import LocalEvaluator
from repro.fo.parser import parse
from repro.fo.semantics import evaluate
from repro.fo.syntax import CountCmp, TotalCount, Var
from repro.structures.signature import Signature
from repro.structures.structure import Structure

x, y = Var("x"), Var("y")


@pytest.fixture
def db():
    """0-1-2-3 path; 0 blue, 3 red."""
    structure = Structure(Signature.of(E=2, B=1, R=1), range(4))
    for u in range(3):
        structure.add_fact("E", u, u + 1)
    structure.add_fact("B", 0)
    structure.add_fact("R", 3)
    return structure


@pytest.fixture
def evaluator(db):
    return LocalEvaluator(db, {})


class TestBalls:
    def test_ball_radius_zero(self, evaluator):
        assert evaluator.ball(1, 0) == frozenset({1})

    def test_ball_radius_two(self, evaluator):
        assert evaluator.ball(0, 2) == frozenset({0, 1, 2})

    def test_ball_cached_identity(self, evaluator):
        assert evaluator.ball(0, 2) is evaluator.ball(0, 2)

    def test_ball_of_union(self, evaluator):
        assert evaluator.ball_of([0, 3], 1) == {0, 1, 2, 3}

    def test_within(self, evaluator):
        assert evaluator.within(0, 2, 2)
        assert not evaluator.within(0, 3, 2)


class TestUnarySets:
    def test_base_relation(self, evaluator):
        assert evaluator.unary_set("B") == frozenset({0})

    def test_extra_unary_preferred(self, db):
        evaluator = LocalEvaluator(db, {"_D0": {1, 2}})
        assert evaluator.unary_set("_D0") == frozenset({1, 2})

    def test_unknown_relation(self, evaluator):
        with pytest.raises(QueryError):
            evaluator.unary_set("Ghost")

    def test_non_unary_rejected(self, evaluator):
        with pytest.raises(QueryError):
            evaluator.unary_set("E")

    def test_invalidate_refreshes(self, db):
        extra = {"_D0": {1}}
        evaluator = LocalEvaluator(db, extra)
        assert evaluator.unary_set("_D0") == frozenset({1})
        extra["_D0"] = {1, 2}
        evaluator.invalidate_unary("_D0")
        assert evaluator.unary_set("_D0") == frozenset({1, 2})


class TestEvaluation:
    @pytest.mark.parametrize(
        "text, assignment, expected",
        [
            ("B(x)", {"x": 0}, True),
            ("B(x)", {"x": 1}, False),
            ("E(x,y)", {"x": 0, "y": 1}, True),
            ("x = y", {"x": 2, "y": 2}, True),
            ("dist(x,y) <= 2", {"x": 0, "y": 2}, True),
            ("dist(x,y) > 2", {"x": 0, "y": 3}, True),
            ("exists z in N1(x). E(x,z) & R(z)", {"x": 2}, True),
            ("exists z in N1(x). R(z)", {"x": 0}, False),
            ("forall z in N1(x). ~R(z)", {"x": 0}, True),
        ],
    )
    def test_agrees_with_reference(self, db, evaluator, text, assignment, expected):
        formula = parse(text)
        bound = {Var(name): value for name, value in assignment.items()}
        assert evaluator.holds(formula, bound) == expected
        assert evaluate(formula, db, dict(bound)) == expected

    def test_count_atom_with_total(self, evaluator):
        # |B ∩ N_1(3)| = 0 < |B| = 1.
        atom = CountCmp("B", 1, (x,), "<", TotalCount("B"))
        assert evaluator.holds(atom, {x: 3})
        assert not evaluator.holds(atom, {x: 0})

    def test_count_atom_with_offset(self, evaluator):
        atom = CountCmp("B", 0, (x,), "<", TotalCount("B"), offset=-1)
        # |B ∩ {0}| = 1 < 1 - 1 = 0 is false everywhere.
        assert not evaluator.holds(atom, {x: 0})

    def test_memoization(self, db, evaluator):
        formula = parse("exists z in N2(x). R(z)")
        first = evaluator.holds(formula, {x: 1})
        # Mutating the structure without telling the evaluator: the memo
        # answers from cache (dynamic updates must clear caches — and do).
        db.add_fact("R", 1)
        assert evaluator.holds(formula, {x: 1}) == first

    def test_unrelativized_quantifier_rejected(self, evaluator):
        with pytest.raises(EvaluationError):
            evaluator.holds(parse("exists z. B(z)"), {})
