"""Tests for the naive reference semantics."""

import pytest

from repro.errors import QueryError
from repro.fo.parser import parse
from repro.fo.semantics import (
    evaluate,
    free_tuple,
    naive_answers,
    naive_count,
    naive_enumerate,
    naive_test,
)
from repro.fo.syntax import CountCmp, TotalCount, Var
from repro.structures.signature import Signature
from repro.structures.structure import Structure

x, y, z = Var("x"), Var("y"), Var("z")


@pytest.fixture
def db():
    """0-1-2 path; 0 blue, 2 red."""
    structure = Structure(Signature.of(E=2, B=1, R=1), range(3))
    structure.add_fact("E", 0, 1)
    structure.add_fact("E", 1, 2)
    structure.add_fact("B", 0)
    structure.add_fact("R", 2)
    return structure


class TestEvaluate:
    def test_atom(self, db):
        assert evaluate(parse("E(x,y)"), db, {x: 0, y: 1})
        assert not evaluate(parse("E(x,y)"), db, {x: 1, y: 0})

    def test_equality(self, db):
        assert evaluate(parse("x = y"), db, {x: 1, y: 1})
        assert not evaluate(parse("x = y"), db, {x: 1, y: 2})

    def test_connectives(self, db):
        assert evaluate(parse("B(x) & ~R(x)"), db, {x: 0})
        assert evaluate(parse("B(x) | R(x)"), db, {x: 2})
        assert not evaluate(parse("B(x) & R(x)"), db, {x: 0})

    def test_exists(self, db):
        assert evaluate(parse("exists z. E(x,z)"), db, {x: 0})
        assert evaluate(parse("exists z. E(z,x)"), db, {x: 2})
        assert not evaluate(parse("exists z. E(z,x)"), db, {x: 0})

    def test_forall(self, db):
        assert evaluate(parse("forall z. E(x,z) -> R(z)"), db, {x: 1})

    def test_dist_atom(self, db):
        assert evaluate(parse("dist(x,y) <= 2"), db, {x: 0, y: 2})
        assert evaluate(parse("dist(x,y) > 1"), db, {x: 0, y: 2})
        assert not evaluate(parse("dist(x,y) > 2"), db, {x: 0, y: 2})

    def test_relativized_exists(self, db):
        formula = parse("exists z in N1(x). R(z)")
        assert evaluate(formula, db, {x: 1})
        assert not evaluate(formula, db, {x: 0})

    def test_relativized_forall(self, db):
        formula = parse("forall z in N1(x). B(z) | R(z) | E(x,z) | E(z,x)")
        assert evaluate(formula, db, {x: 0})

    def test_count_cmp_against_int(self, db):
        # |B ∩ N_1(x)| == 1 at x = 1 (element 0 is blue, within distance 1).
        formula = CountCmp("B", 1, (x,), "==", 1)
        assert evaluate(formula, db, {x: 1})
        assert not evaluate(formula, db, {x: 2})

    def test_count_cmp_against_total(self, db):
        # All blues are within distance 1 of x = 0.
        formula = CountCmp("B", 1, (x,), "==", TotalCount("B"))
        assert evaluate(formula, db, {x: 0})

    def test_count_cmp_offset(self, db):
        formula = CountCmp("B", 0, (x,), "<", TotalCount("B"), offset=0)
        # |B ∩ {2}| = 0 < |B| = 1.
        assert evaluate(formula, db, {x: 2})

    def test_unbound_variable_raises(self, db):
        with pytest.raises(QueryError):
            evaluate(parse("B(x)"), db, {})

    def test_count_cmp_non_unary_relation_raises(self, db):
        with pytest.raises(QueryError):
            evaluate(CountCmp("E", 1, (x,), "<", 3), db, {x: 0})


class TestAnswers:
    def test_example_2_3(self, db):
        # Pairs (blue, red) not connected by an edge: (0, 2) qualifies.
        answers = naive_answers(parse("B(x) & R(y) & ~E(x,y)"), db)
        assert answers == [(0, 2)]

    def test_order_parameter(self, db):
        query = parse("B(x) & R(y)")
        assert naive_answers(query, db, order=[y, x]) == [(2, 0)]

    def test_order_must_cover_free_vars(self, db):
        with pytest.raises(QueryError):
            free_tuple(parse("B(x) & R(y)"), order=[x])

    def test_order_may_add_unconstrained_vars(self, db):
        assert free_tuple(parse("B(x)"), order=[x, y]) == (x, y)

    def test_order_rejects_duplicates(self, db):
        with pytest.raises(QueryError):
            free_tuple(parse("B(x)"), order=[x, x])

    def test_sentence_true(self, db):
        assert naive_answers(parse("exists x. B(x)"), db) == [()]

    def test_sentence_false(self, db):
        assert naive_answers(parse("forall x. B(x)"), db) == []

    def test_count(self, db):
        assert naive_count(parse("B(x) | R(x)"), db) == 2

    def test_test(self, db):
        query = parse("B(x) & R(y) & ~E(x,y)")
        assert naive_test(query, db, (0, 2))
        assert not naive_test(query, db, (0, 1))

    def test_test_arity_mismatch(self, db):
        with pytest.raises(QueryError):
            naive_test(parse("B(x)"), db, (0, 1))

    def test_enumerate_matches_answers(self, db):
        query = parse("E(x,y) | E(y,x)")
        assert list(naive_enumerate(query, db)) == naive_answers(query, db)

    def test_answers_are_lexicographic(self, db):
        query = parse("B(x) | R(x) | E(x,y) | E(y,x)")
        answers = naive_answers(query, db)
        assert answers == sorted(answers)
