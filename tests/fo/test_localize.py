"""Tests for structure-assisted Gaifman localization (Section 4, Step 1).

The oracle property: for every query and structure, evaluating the
localized formula on the *extended* structure (original plus derived unary
predicates) agrees with evaluating the original query on the original
structure — on every tuple.
"""

import pytest
from hypothesis import given, settings

from repro.errors import UnsupportedQueryError
from repro.fo.localize import (
    LocalizationBudget,
    LocalizedQuery,
    localize,
    separate,
)
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.fo.syntax import (
    CountCmp,
    FalseF,
    TrueF,
    Var,
    is_local,
    subformulas,
)
from repro.structures.random_gen import random_colored_graph

from strategies import formulas, structures

x, y, z = Var("x"), Var("y"), Var("z")


def _assert_localized_agrees(query_text_or_formula, db):
    formula = (
        parse(query_text_or_formula)
        if isinstance(query_text_or_formula, str)
        else query_text_or_formula
    )
    localized = localize(formula, db)
    assert is_local(localized.formula)
    order = sorted(formula.free)
    extended = localized.materialize()
    got = naive_answers(localized.formula, extended, order=order)
    want = naive_answers(formula, db, order=order)
    assert got == want
    return localized


class TestQuantifierFree:
    def test_unchanged_shape(self, small_colored):
        localized = _assert_localized_agrees("B(x) & R(y) & ~E(x,y)", small_colored)
        assert localized.radius == 0
        assert not localized.derived_formulas

    def test_dist_atoms_set_radius(self, small_colored):
        localized = _assert_localized_agrees(
            "dist(x,y) > 2 & B(x) & R(y)", small_colored
        )
        assert localized.radius == 2


class TestExistential:
    def test_near_far_split(self, small_colored):
        localized = _assert_localized_agrees(
            "B(x) & exists z. (R(z) & ~E(x,z))", small_colored
        )
        # The far part introduces a derived predicate and a counting atom.
        assert localized.derived_formulas
        count_atoms = [
            node
            for node in subformulas(localized.formula)
            if isinstance(node, CountCmp)
        ]
        assert count_atoms

    def test_connected_witness(self, small_colored):
        _assert_localized_agrees("exists z. E(x,z) & R(z)", small_colored)

    def test_two_witnesses(self, small_colored):
        _assert_localized_agrees(
            "exists z. exists w. E(z,w) & B(z) & R(w) & ~E(x,z)", small_colored
        )

    def test_far_witness_with_distance(self, small_colored):
        _assert_localized_agrees(
            "B(x) & exists z. (R(z) & dist(x,z) > 2)", small_colored
        )


class TestUniversal:
    def test_guarded_forall(self, small_colored):
        _assert_localized_agrees("forall z. E(x,z) -> B(z)", small_colored)

    def test_forall_with_negative_guard(self, small_colored):
        _assert_localized_agrees(
            "B(x) & forall z. (E(x,z) -> ~R(z))", small_colored
        )


class TestSentences:
    @pytest.mark.parametrize(
        "text",
        [
            "exists x. exists y. B(x) & R(y) & ~E(x,y)",
            "forall x. B(x) | R(x)",
            "exists x. forall y. E(x,y) -> R(y)",
            "exists x. exists y. dist(x,y) > 3 & B(x) & B(y)",
        ],
    )
    def test_sentence_collapses_to_constant(self, text, small_colored):
        localized = localize(parse(text), small_colored)
        assert isinstance(localized.formula, (TrueF, FalseF))
        want = bool(naive_answers(parse(text), small_colored))
        assert isinstance(localized.formula, TrueF) == want

    def test_sentences_evaluated_counter(self, small_colored):
        localized = localize(parse("exists x. B(x)"), small_colored)
        assert localized.sentences_evaluated == 1


class TestDerivedPredicates:
    def test_deduplication(self, small_colored):
        query = parse(
            "(B(x) & exists z. (R(z) & ~E(x,z))) | "
            "(R(x) & exists z. (R(z) & ~E(x,z)))"
        )
        localized = localize(query, small_colored)
        # The identical witness condition is materialized once.
        witness_formulas = list(localized.derived_formulas.values())
        assert len(witness_formulas) == len(set(witness_formulas))

    def test_budget_enforced(self, small_colored):
        budget = LocalizationBudget(max_derived=0)
        with pytest.raises(UnsupportedQueryError):
            localize(parse("B(x) & exists z. (R(z) & ~E(x,z))"), small_colored, budget)

    def test_materialize_adds_unary_relations(self, small_colored):
        localized = localize(
            parse("B(x) & exists z. (R(z) & ~E(x,z))"), small_colored
        )
        extended = localized.materialize()
        for name in localized.extra_unary:
            assert name in extended.signature
            assert extended.signature.arity(name) == 1


class TestSeparate:
    def test_cross_block_edge_forced_false(self, small_colored):
        localized = localize(parse("E(x,y)"), small_colored)
        separated = separate(
            localized.formula, {x: 0, y: 1}, 1, localized.localizer
        )
        assert isinstance(separated, FalseF)

    def test_same_block_atom_kept(self, small_colored):
        localized = localize(parse("E(x,y) & B(x)"), small_colored)
        separated = separate(
            localized.formula, {x: 0, y: 0}, 1, localized.localizer
        )
        assert separated == localized.formula

    def test_cross_block_dist_decided(self, small_colored):
        beyond = parse("dist(x,y) > 2")
        separated = separate(beyond, {x: 0, y: 1}, 5, None)
        assert isinstance(separated, TrueF)
        within = parse("dist(x,y) <= 2")
        assert isinstance(separate(within, {x: 0, y: 1}, 5, None), FalseF)

    def test_equality_forced_false(self, small_colored):
        separated = separate(parse("x = y"), {x: 0, y: 1}, 1, None)
        assert isinstance(separated, FalseF)


class TestRadiusBudget:
    def test_deep_nesting_exceeds_budget(self, small_colored):
        budget = LocalizationBudget(max_radius=1)
        query = parse("exists z. exists w. dist(z,w) > 3 & E(x,z) & E(x,w)")
        with pytest.raises(UnsupportedQueryError):
            localize(query, small_colored, budget)


@given(formula=formulas(free_count=2, max_depth=3, max_quantifiers=1),
       db=structures(max_n=10))
@settings(max_examples=40, deadline=None)
def test_localization_oracle_property(formula, db):
    """Random formulas with one quantifier: localized == original."""
    localized = localize(formula, db)
    assert is_local(localized.formula)
    extended = localized.materialize()
    order = [x, y]
    assert naive_answers(localized.formula, extended, order=order) == naive_answers(
        formula, db, order=order
    )


@given(formula=formulas(free_count=1, max_depth=2, max_quantifiers=2),
       db=structures(max_n=8))
@settings(max_examples=25, deadline=None)
def test_localization_oracle_two_quantifiers(formula, db):
    localized = localize(formula, db)
    extended = localized.materialize()
    assert naive_answers(localized.formula, extended, order=[x]) == naive_answers(
        formula, db, order=[x]
    )
