"""Tests for normal forms: NNF, DNF, CNF, and exclusive DNF."""

import pytest
from hypothesis import given, settings

from repro.errors import QueryError
from repro.fo.normalize import (
    boolean_atoms,
    clause_to_formula,
    exclusive_dnf,
    simplify,
    to_cnf,
    to_dnf,
    to_nnf,
)
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.fo.syntax import (
    And,
    DistAtom,
    Exists,
    ExistsNear,
    Forall,
    ForallNear,
    Not,
    Or,
    RelAtom,
    Var,
    and_,
    not_,
    or_,
)

from strategies import formulas, structures

x, y = Var("x"), Var("y")


def _nnf_ok(formula) -> bool:
    """In NNF, Not only wraps atoms."""
    if isinstance(formula, Not):
        return not isinstance(formula.child, (And, Or, Not, Exists, Forall,
                                              ExistsNear, ForallNear))
    if isinstance(formula, (And, Or)):
        return all(_nnf_ok(child) for child in formula.children)
    if isinstance(formula, (Exists, Forall)):
        return _nnf_ok(formula.child)
    if isinstance(formula, (ExistsNear, ForallNear)):
        return _nnf_ok(formula.child)
    return True


class TestNNF:
    def test_pushes_negation_over_and(self):
        formula = to_nnf(not_(and_(RelAtom("B", (x,)), RelAtom("R", (x,)))))
        assert isinstance(formula, Or)

    def test_dualizes_quantifiers(self):
        formula = to_nnf(parse("~(exists z. B(z))"))
        assert isinstance(formula, Forall)
        formula = to_nnf(parse("~(forall z. B(z))"))
        assert isinstance(formula, Exists)

    def test_dualizes_relativized_quantifiers(self):
        inner = ExistsNear(Var("z"), (x,), 1, RelAtom("B", (Var("z"),)))
        formula = to_nnf(not_(inner))
        assert isinstance(formula, ForallNear)

    def test_dist_atom_absorbs_negation(self):
        formula = to_nnf(not_(DistAtom(x, y, 2, within=True)))
        assert formula == DistAtom(x, y, 2, within=False)

    def test_structure_is_nnf(self):
        formula = to_nnf(parse("~((B(x) | ~R(y)) & exists z. ~E(x,z))"))
        assert _nnf_ok(formula)

    @given(formula=formulas(free_count=2, max_depth=3), db=structures(max_n=8))
    @settings(max_examples=30, deadline=None)
    def test_nnf_preserves_semantics(self, formula, db):
        assert naive_answers(to_nnf(formula), db, order=[x, y]) == naive_answers(
            formula, db, order=[x, y]
        )


class TestSimplify:
    def test_folds_constants(self):
        assert simplify(parse("B(x) & true")) == parse("B(x)")
        assert simplify(parse("B(x) & false")) == parse("false")
        assert simplify(parse("B(x) | true")) == parse("true")

    def test_folds_quantifier_over_constant(self):
        assert simplify(Exists(x, parse("true"))) == parse("true")
        assert simplify(Forall(x, parse("false"))) == parse("false")

    def test_relativized_exists_true_is_true(self):
        formula = ExistsNear(Var("z"), (x,), 1, parse("true"))
        assert simplify(formula) == parse("true")

    def test_relativized_forall_false_is_false(self):
        formula = ForallNear(Var("z"), (x,), 1, parse("false"))
        assert simplify(formula) == parse("false")


class TestBooleanAtoms:
    def test_atoms_are_opaque(self):
        formula = parse("B(x) & (R(y) | ~B(y))")
        atoms = boolean_atoms(formula)
        assert parse("B(x)") in atoms
        assert parse("R(y)") in atoms
        assert parse("B(y)") in atoms
        assert len(atoms) == 3

    def test_quantified_subformulas_are_atoms(self):
        formula = parse("B(x) & exists z. E(x,z)")
        atoms = boolean_atoms(formula)
        assert len(atoms) == 2

    def test_deduplicates(self):
        formula = parse("B(x) | (B(x) & R(x))")
        assert len(boolean_atoms(formula)) == 2


class TestExclusiveDNF:
    def test_clauses_are_exclusive_and_cover(self):
        formula = parse("B(x) | R(x)")
        clauses = exclusive_dnf(formula)
        # Three satisfying assignments over atoms {B, R}.
        assert len(clauses) == 3
        signs = {tuple(sign for _, sign in clause) for clause in clauses}
        assert (False, False) not in signs

    def test_clause_to_formula(self):
        formula = parse("B(x) & ~R(x)")
        clauses = exclusive_dnf(formula)
        assert len(clauses) == 1
        rebuilt = clause_to_formula(clauses[0])
        assert isinstance(rebuilt, And)

    def test_unsatisfiable_has_no_clauses(self):
        assert exclusive_dnf(parse("B(x) & ~B(x)")) == []

    def test_tautology_folds_to_single_empty_clause(self):
        # The smart constructors fold f | ~f to true, whose exclusive DNF
        # is the single empty clause.
        assert exclusive_dnf(parse("B(x) | ~B(x)")) == [()]

    def test_two_atom_tautology_covers_all_assignments(self):
        # Semantically a tautology but not structurally folded: exclusive
        # DNF enumerates all four sign assignments over {B(x), R(x)}.
        text = "(B(x) & R(x)) | (B(x) & ~R(x)) | ~B(x)"
        assert len(exclusive_dnf(parse(text))) == 4

    def test_too_many_atoms_guarded(self):
        parts = [parse(f"B(x{i})") for i in range(21)]
        with pytest.raises(QueryError):
            exclusive_dnf(or_(*parts))

    @given(formula=formulas(free_count=2, max_depth=3, max_quantifiers=0),
           db=structures(max_n=7))
    @settings(max_examples=25, deadline=None)
    def test_exclusive_dnf_preserves_semantics(self, formula, db):
        clauses = exclusive_dnf(formula)
        rebuilt = or_(*(clause_to_formula(clause) for clause in clauses))
        assert naive_answers(rebuilt, db, order=[x, y]) == naive_answers(
            formula, db, order=[x, y]
        )


class TestDNFCNF:
    def test_dnf_distributes(self):
        clauses = to_dnf(to_nnf(parse("(B(x) | R(x)) & B(y)")))
        assert len(clauses) == 2

    def test_dnf_false(self):
        assert to_dnf(parse("false")) == []

    def test_dnf_true(self):
        assert to_dnf(parse("true")) == [[]]

    def test_cnf_true(self):
        assert to_cnf(parse("true")) == []

    def test_cnf_false(self):
        assert to_cnf(parse("false")) == [[]]

    def test_cnf_distributes(self):
        clauses = to_cnf(to_nnf(parse("(B(x) & R(x)) | B(y)")))
        assert len(clauses) == 2

    @given(formula=formulas(free_count=2, max_depth=3, max_quantifiers=0),
           db=structures(max_n=7))
    @settings(max_examples=25, deadline=None)
    def test_dnf_preserves_semantics(self, formula, db):
        nnf = to_nnf(formula)
        clauses = to_dnf(nnf)
        rebuilt = or_(*(and_(*clause) for clause in clauses))
        assert naive_answers(rebuilt, db, order=[x, y]) == naive_answers(
            formula, db, order=[x, y]
        )
