"""Tests for the fluent query builder."""

import pytest

from repro.fo.builder import Q
from repro.fo.parser import parse
from repro.fo.syntax import DistAtom, Exists, ExistsNear, RelAtom, Var

x, y, z = Q.vars("x", "y", "z")


class TestAtoms:
    def test_dynamic_atom_factory(self):
        assert Q.B(x) == RelAtom("B", (x,))
        assert Q.E(x, y) == RelAtom("E", (x, y))
        assert Q.Likes("x", "y") == RelAtom("Likes", (Var("x"), Var("y")))

    def test_explicit_atom(self):
        assert Q.atom("E", x, y) == RelAtom("E", (x, y))

    def test_atom_needs_args(self):
        with pytest.raises(TypeError):
            Q.B()

    def test_equality_helpers(self):
        assert Q.eq(x, y) == parse("x = y")
        assert Q.neq(x, y) == parse("x != y")

    def test_distance_helpers(self):
        assert Q.near(x, y, 2) == DistAtom(x, y, 2, within=True)
        assert Q.far(x, y, 2) == DistAtom(x, y, 2, within=False)

    def test_constants(self):
        assert Q.true == parse("true")
        assert Q.false == parse("false")


class TestCompose:
    def test_example_23(self):
        built = Q.B(x) & Q.R(y) & ~Q.E(x, y)
        assert built == parse("B(x) & R(y) & ~E(x,y)")

    def test_disjunction(self):
        assert (Q.B(x) | Q.R(x)) == parse("B(x) | R(x)")

    def test_implies(self):
        assert Q.implies(Q.B(x), Q.R(x)) == parse("B(x) -> R(x)")

    def test_all_of_any_of(self):
        assert Q.all_of(Q.B(x), Q.R(y)) == parse("B(x) & R(y)")
        assert Q.any_of(Q.B(x), Q.R(x), Q.B(y)) == parse("B(x) | R(x) | B(y)")

    def test_quantifiers(self):
        built = Q.exists(z, Q.E(x, z) & Q.R(z))
        assert built == parse("exists z. E(x,z) & R(z)")
        assert isinstance(built, Exists)
        assert Q.forall(z, Q.implies(Q.E(x, z), Q.B(z))) == parse(
            "forall z. E(x,z) -> B(z)"
        )

    def test_relativized_quantifiers(self):
        built = Q.exists_near(z, (x,), 2, Q.R(z))
        assert built == parse("exists z in N2(x). R(z)")
        assert isinstance(built, ExistsNear)
        assert Q.forall_near(z, (x, y), 1, Q.B(z)) == parse(
            "forall z in N1(x,y). B(z)"
        )

    def test_q_not_instantiable(self):
        with pytest.raises(TypeError):
            Q()

    def test_builder_queries_run_through_pipeline(self, small_colored):
        from repro import prepare
        from repro.fo.semantics import naive_answers

        query = Q.B(x) & Q.R(y) & ~Q.E(x, y)
        prepared = prepare(small_colored, query, order=(x, y))
        assert sorted(prepared.enumerate()) == sorted(
            naive_answers(query, small_colored, order=(x, y))
        )
