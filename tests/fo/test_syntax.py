"""Tests for the FO AST: construction, free variables, structural helpers."""

import pytest

from repro.errors import QueryError
from repro.fo.syntax import (
    And,
    CountCmp,
    DistAtom,
    Eq,
    Exists,
    ExistsNear,
    FALSE,
    Forall,
    ForallNear,
    Not,
    Or,
    RelAtom,
    TRUE,
    TotalCount,
    Var,
    and_,
    atom,
    atoms_of,
    eq,
    exists,
    forall,
    fresh_var,
    is_local,
    is_quantifier_free,
    locality_radius,
    not_,
    or_,
    quantifier_rank,
    relation_names,
    rename_apart,
    subformulas,
    substitute,
)

x, y, z = Var("x"), Var("y"), Var("z")


class TestFreeVariables:
    def test_atom(self):
        assert atom("E", "x", "y").free == {x, y}

    def test_eq(self):
        assert eq("x", "y").free == {x, y}

    def test_exists_binds(self):
        assert exists("y", atom("E", "x", "y")).free == {x}

    def test_forall_binds(self):
        assert forall("x", atom("B", "x")).free == frozenset()

    def test_exists_near_centers_are_free(self):
        formula = ExistsNear(z, (x, y), 2, atom("B", "z"))
        assert formula.free == {x, y}

    def test_count_cmp_free(self):
        formula = CountCmp("B", 1, (x, y), "<", TotalCount("B"))
        assert formula.free == {x, y}

    def test_connectives_union(self):
        formula = and_(atom("B", "x"), or_(atom("R", "y"), not_(atom("B", "z"))))
        assert formula.free == {x, y, z}


class TestConstructionValidation:
    def test_dist_atom_negative_bound(self):
        with pytest.raises(QueryError):
            DistAtom(x, y, -1)

    def test_count_cmp_bad_op(self):
        with pytest.raises(QueryError):
            CountCmp("B", 1, (x,), "!=", 3)

    def test_count_cmp_needs_centers(self):
        with pytest.raises(QueryError):
            CountCmp("B", 1, (), "<", 3)

    def test_count_cmp_folds_int_offset(self):
        formula = CountCmp("B", 1, (x,), "<", 3, offset=2)
        assert formula.rhs == 5
        assert formula.offset == 0

    def test_count_cmp_keeps_total_offset(self):
        formula = CountCmp("B", 1, (x,), "<", TotalCount("B"), offset=-1)
        assert formula.offset == -1

    def test_relativized_var_cannot_be_center(self):
        with pytest.raises(QueryError):
            ExistsNear(x, (x,), 1, atom("B", "x"))

    def test_relativized_needs_centers(self):
        with pytest.raises(QueryError):
            ForallNear(z, (), 1, atom("B", "z"))


class TestSmartConstructors:
    def test_and_flattens(self):
        formula = and_(atom("B", "x"), and_(atom("R", "y"), atom("B", "z")))
        assert isinstance(formula, And)
        assert len(formula.children) == 3

    def test_and_identity(self):
        assert and_() is TRUE
        assert and_(atom("B", "x")) == atom("B", "x")

    def test_and_false_annihilates(self):
        assert and_(atom("B", "x"), FALSE) is FALSE

    def test_and_true_dropped(self):
        assert and_(TRUE, atom("B", "x")) == atom("B", "x")

    def test_and_deduplicates(self):
        formula = and_(atom("B", "x"), atom("B", "x"))
        assert formula == atom("B", "x")

    def test_or_flattens_and_folds(self):
        assert or_() is FALSE
        assert or_(TRUE, atom("B", "x")) is TRUE
        assert or_(FALSE, atom("B", "x")) == atom("B", "x")

    def test_not_folds_constants(self):
        assert not_(TRUE) is FALSE
        assert not_(FALSE) is TRUE

    def test_not_double_negation(self):
        formula = atom("B", "x")
        assert not_(not_(formula)) == formula

    def test_not_flips_dist_atoms(self):
        within = DistAtom(x, y, 2, within=True)
        assert not_(within) == DistAtom(x, y, 2, within=False)

    def test_operators(self):
        formula = atom("B", "x") & atom("R", "y")
        assert isinstance(formula, And)
        formula = atom("B", "x") | atom("R", "y")
        assert isinstance(formula, Or)
        assert isinstance(~atom("B", "x"), Not)


class TestStructuralQueries:
    def test_subformulas_preorder(self):
        formula = and_(atom("B", "x"), not_(atom("R", "y")))
        nodes = list(subformulas(formula))
        assert formula in nodes
        assert atom("B", "x") in nodes
        assert atom("R", "y") in nodes

    def test_atoms_of(self):
        formula = exists("z", and_(atom("E", "x", "z"), eq("x", "z")))
        collected = list(atoms_of(formula))
        assert atom("E", "x", "z") in collected
        assert eq("x", "z") in collected

    def test_is_quantifier_free(self):
        assert is_quantifier_free(and_(atom("B", "x"), atom("R", "y")))
        assert not is_quantifier_free(exists("z", atom("B", "z")))
        assert not is_quantifier_free(ExistsNear(z, (x,), 1, atom("B", "z")))

    def test_is_local(self):
        assert is_local(ExistsNear(z, (x,), 1, atom("B", "z")))
        assert not is_local(exists("z", atom("B", "z")))

    def test_quantifier_rank(self):
        assert quantifier_rank(atom("B", "x")) == 0
        assert quantifier_rank(exists("z", atom("B", "z"))) == 1
        nested = exists("y", forall("z", atom("E", "y", "z")))
        assert quantifier_rank(nested) == 2

    def test_relation_names(self):
        formula = and_(
            atom("E", "x", "y"), CountCmp("B", 1, (x,), "<", TotalCount("B"))
        )
        assert relation_names(formula) == {"E", "B"}


class TestLocalityRadius:
    def test_atoms_are_zero_local(self):
        assert locality_radius(atom("E", "x", "y")) == 0
        assert locality_radius(eq("x", "y")) == 0

    def test_dist_atom(self):
        assert locality_radius(DistAtom(x, y, 3)) == 3

    def test_count_atom(self):
        assert locality_radius(CountCmp("B", 2, (x,), "<", 5)) == 2

    def test_relativized_quantifier_accumulates(self):
        inner = ExistsNear(z, (x,), 2, atom("B", "z"))
        assert locality_radius(inner) == 2
        outer = ExistsNear(y, (x,), 1, ExistsNear(z, (y,), 2, DistAtom(z, x, 1)))
        assert locality_radius(outer) == 4

    def test_unrelativized_raises(self):
        with pytest.raises(QueryError):
            locality_radius(exists("z", atom("B", "z")))


class TestSubstitution:
    def test_rename_free(self):
        formula = atom("E", "x", "y")
        renamed = substitute(formula, {x: z})
        assert renamed == atom("E", "z", "y")

    def test_substitute_under_quantifier(self):
        formula = exists("z", atom("E", "x", "z"))
        renamed = substitute(formula, {x: y})
        assert renamed == exists("z", atom("E", "y", "z"))

    def test_substituting_bound_variable_raises(self):
        formula = exists("z", atom("B", "z"))
        with pytest.raises(QueryError):
            substitute(formula, {z: x})

    def test_substitute_count_atom_keeps_offset(self):
        formula = CountCmp("B", 1, (x,), "<", TotalCount("B"), offset=-2)
        renamed = substitute(formula, {x: y})
        assert renamed.offset == -2
        assert renamed.vars == (y,)

    def test_rename_apart_makes_bound_vars_unique(self):
        formula = and_(exists("z", atom("B", "z")), exists("z", atom("R", "z")))
        renamed = rename_apart(formula)
        bound = [
            node.var
            for node in subformulas(renamed)
            if isinstance(node, Exists)
        ]
        assert len(set(bound)) == 2

    def test_rename_apart_preserves_free(self):
        formula = exists("z", atom("E", "x", "z"))
        assert rename_apart(formula).free == {x}

    def test_fresh_var_unique(self):
        assert fresh_var() != fresh_var()
