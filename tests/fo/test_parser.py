"""Tests for the textual query parser."""

import pytest

from repro.errors import ParseError
from repro.fo.parser import parse
from repro.fo.syntax import (
    And,
    DistAtom,
    Eq,
    Exists,
    ExistsNear,
    FALSE,
    Forall,
    ForallNear,
    Not,
    Or,
    RelAtom,
    TRUE,
    Var,
)

x, y, z = Var("x"), Var("y"), Var("z")


class TestAtoms:
    def test_relational_atom(self):
        assert parse("E(x,y)") == RelAtom("E", (x, y))

    def test_unary_atom(self):
        assert parse("B(x)") == RelAtom("B", (x,))

    def test_ternary_atom(self):
        assert parse("T(x, y, z)") == RelAtom("T", (x, y, z))

    def test_equality(self):
        assert parse("x = y") == Eq(x, y)

    def test_inequality(self):
        assert parse("x != y") == Not(Eq(x, y))

    def test_constants(self):
        assert parse("true") is TRUE
        assert parse("false") is FALSE

    def test_dist_within(self):
        assert parse("dist(x,y) <= 3") == DistAtom(x, y, 3, within=True)

    def test_dist_beyond(self):
        assert parse("dist(x,y) > 2") == DistAtom(x, y, 2, within=False)


class TestConnectives:
    def test_conjunction(self):
        formula = parse("B(x) & R(y)")
        assert isinstance(formula, And)
        assert len(formula.children) == 2

    def test_and_keyword(self):
        assert parse("B(x) and R(y)") == parse("B(x) & R(y)")

    def test_disjunction(self):
        assert isinstance(parse("B(x) | R(x)"), Or)
        assert parse("B(x) or R(x)") == parse("B(x) | R(x)")

    def test_negation_symbols(self):
        expected = Not(RelAtom("B", (x,)))
        assert parse("~B(x)") == expected
        assert parse("!B(x)") == expected
        assert parse("not B(x)") == expected

    def test_precedence_and_binds_tighter_than_or(self):
        formula = parse("B(x) | R(x) & B(y)")
        assert isinstance(formula, Or)

    def test_implication(self):
        formula = parse("B(x) -> R(x)")
        assert formula == Or((Not(RelAtom("B", (x,))), RelAtom("R", (x,))))

    def test_implication_right_associative(self):
        # a -> b -> c parses as a -> (b -> c).
        formula = parse("B(x) -> R(x) -> B(y)")
        assert isinstance(formula, Or)

    def test_iff(self):
        formula = parse("B(x) <-> R(x)")
        assert isinstance(formula, Or)  # (a & b) | (~a & ~b)

    def test_parentheses(self):
        formula = parse("(B(x) | R(x)) & B(y)")
        assert isinstance(formula, And)

    def test_double_negation_folds(self):
        assert parse("~~B(x)") == RelAtom("B", (x,))


class TestQuantifiers:
    def test_exists(self):
        formula = parse("exists z. B(z)")
        assert formula == Exists(z, RelAtom("B", (z,)))

    def test_forall(self):
        formula = parse("forall z. B(z)")
        assert formula == Forall(z, RelAtom("B", (z,)))

    def test_multiple_variables(self):
        formula = parse("exists y z. E(y,z)")
        assert isinstance(formula, Exists)
        assert isinstance(formula.child, Exists)

    def test_body_extends_right(self):
        formula = parse("exists z. E(x,z) & B(z)")
        assert isinstance(formula, Exists)
        assert isinstance(formula.child, And)

    def test_relativized_exists(self):
        formula = parse("exists z in N2(x). B(z)")
        assert formula == ExistsNear(z, (x,), 2, RelAtom("B", (z,)))

    def test_relativized_forall_multi_center(self):
        formula = parse("forall z in N1(x, y). B(z)")
        assert formula == ForallNear(z, (x, y), 1, RelAtom("B", (z,)))

    def test_nested_quantifiers(self):
        formula = parse("exists y. forall z. E(y,z)")
        assert isinstance(formula, Exists)
        assert isinstance(formula.child, Forall)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "B(x",
            "B(x))",
            "exists . B(x)",
            "exists z B(z)",          # missing dot
            "B(x) &",
            "dist(x,y) < 3",          # only <= and > are supported
            "dist(x,y)",
            "x + y",
            "exists z in M2(x). B(z)",  # bad neighborhood name
            "exists z in N(x). B(z)",   # missing radius
            "x",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_mentions_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("B(x) & & R(y)")
        assert "position" in str(excinfo.value)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "text",
        [
            "B(x) & R(y) & ~E(x,y)",
            "exists z. (E(x,z) & E(z,y))",
            "forall z. E(x,z) -> B(z)",
            "dist(x,y) > 2 & (B(x) | R(x))",
        ],
    )
    def test_str_reparses_to_same_formula(self, text):
        formula = parse(text)
        assert parse(str(formula)) == formula
