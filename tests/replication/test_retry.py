"""Units for the shared retry/backoff layer (`repro.util.retry`).

Determinism note: jitter is deliberately random in production (the
point is decorrelating a thundering herd), so every test here pins
``jitter=0``.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import CircuitOpenError, ServeConnectionError, ServeTimeoutError
from repro.util.retry import CircuitBreaker, RetryPolicy, call_with_retry

FAST = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.01, jitter=0)


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int, error=ServeConnectionError("boom")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


class TestRetryPolicy:
    def test_delay_is_exponential_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)

    def test_delay_caps_at_max(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.5, jitter=0)
        assert policy.delay(5) == pytest.approx(2.5)

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=1.0)
        for attempt in range(20):
            delay = policy.delay(attempt)
            assert 0.0 <= delay <= 1.0

    def test_first_try_success_needs_no_retry(self):
        flaky = Flaky(0)
        assert call_with_retry(flaky, FAST, retry_on=(ServeConnectionError,)) == "ok"
        assert flaky.calls == 1

    def test_transient_failures_are_retried(self):
        flaky = Flaky(2)
        assert call_with_retry(flaky, FAST, retry_on=(ServeConnectionError,)) == "ok"
        assert flaky.calls == 3

    def test_exhaustion_reraises_the_last_error(self):
        flaky = Flaky(10, error=ServeConnectionError("still down"))
        with pytest.raises(ServeConnectionError, match="still down"):
            call_with_retry(flaky, FAST, retry_on=(ServeConnectionError,))
        assert flaky.calls == FAST.attempts

    def test_non_retryable_errors_propagate_immediately(self):
        flaky = Flaky(10, error=ValueError("a bug, not weather"))
        with pytest.raises(ValueError):
            call_with_retry(flaky, FAST, retry_on=(ServeConnectionError,))
        assert flaky.calls == 1

    def test_deadline_blow_raises_serve_timeout(self):
        policy = RetryPolicy(
            attempts=10, base_delay=0.2, max_delay=0.2, jitter=0, deadline=0.05
        )
        flaky = Flaky(10)
        started = time.monotonic()
        with pytest.raises(ServeTimeoutError, match="deadline"):
            call_with_retry(flaky, policy, retry_on=(ServeConnectionError,))
        # It gave up before sleeping through all ten backoffs.
        assert time.monotonic() - started < 1.0
        assert flaky.calls < 10

    def test_policy_call_shortcut(self):
        flaky = Flaky(1)
        assert FAST.call(flaky, retry_on=(ServeConnectionError,)) == "ok"


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, reset_after=60.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.open
        assert not breaker.allow()

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=3, reset_after=60.0)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.open

    def test_open_circuit_fails_fast(self):
        breaker = CircuitBreaker(threshold=1, reset_after=60.0)
        flaky = Flaky(10)
        with pytest.raises(ServeConnectionError):
            call_with_retry(
                flaky, RetryPolicy(attempts=1), retry_on=(ServeConnectionError,),
                breaker=breaker,
            )
        with pytest.raises(CircuitOpenError):
            call_with_retry(
                flaky, FAST, retry_on=(ServeConnectionError,), breaker=breaker
            )
        assert flaky.calls == 1  # the second call never reached the wire

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(threshold=1, reset_after=0.05)
        breaker.record_failure()
        assert not breaker.allow()
        time.sleep(0.06)
        assert breaker.allow()  # this caller owns the half-open probe
        assert not breaker.allow()  # concurrent callers still fail fast
        breaker.record_success()
        assert breaker.allow()
        assert not breaker.open

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, reset_after=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()

    def test_stats_shape(self):
        breaker = CircuitBreaker(threshold=4)
        breaker.record_failure()
        stats = breaker.stats()
        assert stats["consecutive_failures"] == 1
        assert stats["open"] is False
        assert stats["threshold"] == 4
