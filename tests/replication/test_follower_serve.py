"""The service-tier replication topology: followers tailing a served
leader over ``GET /db/{name}/wal`` (+ long-poll), snapshot re-seed over
``GET /db/{name}/snapshot``, and the WebSocket push feed — all through
the shared retry/backoff layer, with a wire-fault proxy standing in for
bad networks.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import (
    ServeConnectionError,
    ServeError,
    ServeTimeoutError,
)
from repro.replication import FlakyProxy, FollowerDatabase, ServeSource
from repro.serve import DatabaseRegistry, ServeClient, serve_in_thread
from repro.session import Database
from repro.structures.random_gen import random_colored_graph
from repro.util.retry import CircuitBreaker, RetryPolicy

QUERY = "B(x) & ~R(x)"

FAST_RETRY = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02, jitter=0)


def flip(db: Database, element: int) -> None:
    if db.structure.has_fact("R", element):
        db.apply([("delete", "R", (element,))])
    else:
        db.apply([("insert", "R", (element,))])


def changeset_flip(client: ServeClient, name: str, leader: Database, element: int):
    op = "remove" if leader.structure.has_fact("R", element) else "insert"
    return client.apply(
        name, json.dumps({"op": op, "relation": "R", "elements": [element]}) + "\n"
    )


@pytest.fixture
def served_leader(tmp_path):
    structure = random_colored_graph(20, max_degree=3, seed=11)
    leader = Database.open(tmp_path / "leader", structure=structure, sync=False)
    registry = DatabaseRegistry()
    registry.add("lead", leader, close_on_shutdown=False)
    with serve_in_thread(registry) as server:
        yield server, leader
    leader.close()


def client_for(server, **kw) -> ServeClient:
    kw.setdefault("timeout", 10.0)
    return ServeClient("127.0.0.1", server.port, **kw)


class TestWalEndpoint:
    def test_ships_the_tail_past_from(self, served_leader):
        server, leader = served_leader
        before = leader.version
        flip(leader, 0)
        with client_for(server) as client:
            shipment = client.wal("lead", before)
            assert shipment["leader_version"] == leader.version
            assert shipment["reseed"] is False
            assert len(shipment["records"]) == 1
            record = json.loads(shipment["records"][0])
            assert record["b"] == before
            assert record["v"] == leader.version

    def test_caught_up_tail_is_empty(self, served_leader):
        server, leader = served_leader
        with client_for(server) as client:
            shipment = client.wal("lead", leader.version)
            assert shipment["records"] == []
            assert shipment["reseed"] is False

    def test_position_before_snapshot_base_flags_reseed(self, served_leader):
        server, leader = served_leader
        # The store was initialized at the structure's current version,
        # so position 0 predates the retained log.
        with client_for(server) as client:
            shipment = client.wal("lead", 0)
            assert shipment["reseed"] is True

    def test_bad_params_are_400(self, served_leader):
        server, _leader = served_leader
        with client_for(server) as client:
            for path in (
                "/db/lead/wal?from=nope",
                "/db/lead/wal?from=-1",
                "/db/lead/wal?from=0&limit=0",
                "/db/lead/wal?from=0&wait=never",
            ):
                with pytest.raises(ServeError) as info:
                    client._request("GET", path)
                assert info.value.status == 400

    def test_long_poll_wakes_on_commit(self, served_leader):
        server, leader = served_leader
        with client_for(server) as client:
            position = leader.version

            def commit_later():
                time.sleep(0.2)
                with client_for(server) as writer:
                    changeset_flip(writer, "lead", leader, 0)

            thread = threading.Thread(target=commit_later)
            thread.start()
            started = time.monotonic()
            shipment = client.wal("lead", position, wait=10.0)
            waited = time.monotonic() - started
            thread.join()
            assert shipment["records"], "long-poll returned without the commit"
            assert 0.15 <= waited < 5.0

    def test_long_poll_times_out_empty(self, served_leader):
        server, leader = served_leader
        with client_for(server) as client:
            shipment = client.wal("lead", leader.version, wait=0.1)
            assert shipment["records"] == []


class TestSnapshotEndpoint:
    def test_snapshot_round_trips_with_lineage(self, served_leader):
        server, leader = served_leader
        from repro.structures.serialize import loads

        with client_for(server) as client:
            payload = client.snapshot("lead")
            assert payload["version"] == leader.version
            structure = loads(payload["structure"])
            assert structure.version == leader.version
            assert structure.content_fingerprint() == payload["fingerprint"]
            assert payload["fingerprint"] == leader.structure_fingerprint


class TestServeFollower:
    def test_catch_up_and_incremental_replay(self, served_leader):
        server, leader = served_leader
        with FollowerDatabase(ServeSource(client_for(server), "lead")) as follower:
            follower.catch_up()
            assert follower.structure_fingerprint == leader.structure_fingerprint
            with client_for(server) as writer:
                changeset_flip(writer, "lead", leader, 0)
                changeset_flip(writer, "lead", leader, 1)
            assert follower.catch_up() == 2
            assert follower.version == leader.version
            assert follower.structure_fingerprint == leader.structure_fingerprint
            assert follower.stats()["reseeds"] == 0
            assert sorted(follower.query(QUERY).answers()) == sorted(
                leader.query(QUERY).answers()
            )

    def test_serve_reports_true_head_for_lag(self, served_leader):
        server, leader = served_leader
        with FollowerDatabase(
            ServeSource(client_for(server), "lead"), batch_limit=1
        ) as follower:
            follower.catch_up()
            for element in range(3):
                flip(leader, element)
            # One clipped batch: the server still advertises its head,
            # so the remaining distance is visible as lag.
            follower.catch_up(max_batches=1)
            assert follower.lag == 2
            follower.catch_up()
            assert follower.lag == 0

    def test_checkpoint_over_serve_reseeds(self, served_leader):
        server, leader = served_leader
        with FollowerDatabase(ServeSource(client_for(server), "lead")) as follower:
            follower.catch_up()
            flip(leader, 3)
            leader.checkpoint()
            flip(leader, 4)
            follower.catch_up()
            assert follower.stats()["reseeds"] == 1
            assert follower.structure_fingerprint == leader.structure_fingerprint

    def test_background_tailing_over_serve(self, served_leader):
        server, leader = served_leader
        with FollowerDatabase(
            ServeSource(client_for(server), "lead", wait=0.2)
        ) as follower:
            follower.catch_up()
            follower.start_tailing(interval=0.02)
            with client_for(server) as writer:
                changeset_flip(writer, "lead", leader, 5)
            deadline = time.monotonic() + 5
            while follower.version < leader.version and time.monotonic() < deadline:
                time.sleep(0.01)
            follower.stop_tailing()
            assert follower.structure_fingerprint == leader.structure_fingerprint


class TestWebSocketFeed:
    def test_push_delivers_commits_as_they_land(self, served_leader):
        server, leader = served_leader
        with client_for(server) as client:
            with client.stream("lead") as ws:
                events = []

                def pump():
                    for event in ws.wal_feed(leader.version):
                        events.append(event)
                        if event["event"] == "wal":
                            return

                thread = threading.Thread(target=pump, daemon=True)
                thread.start()
                time.sleep(0.2)
                with client_for(server) as writer:
                    changeset_flip(writer, "lead", leader, 0)
                thread.join(timeout=10)
                assert events and events[-1]["event"] == "wal"
                record = json.loads(events[-1]["records"][-1])
                assert record["v"] == leader.version

    def test_stale_position_gets_reseed_event(self, served_leader):
        server, _leader = served_leader
        with client_for(server) as client:
            with client.stream("lead") as ws:
                events = list(ws.wal_feed(0))
                assert events[-1]["event"] == "reseed"


class TestFaultTolerance:
    def test_connection_refused_surfaces_as_taxonomy(self, served_leader):
        server, _leader = served_leader
        breaker = CircuitBreaker(threshold=100, reset_after=0.1)
        with ServeClient(
            "127.0.0.1", 1, timeout=1.0, retry=FAST_RETRY, breaker=breaker
        ) as client:
            with pytest.raises(ServeConnectionError):
                client.wal("x", 0)
        assert breaker.stats()["consecutive_failures"] >= 2

    def test_deadline_blow_is_a_timeout_error(self, served_leader):
        policy = RetryPolicy(
            attempts=10, base_delay=0.2, max_delay=0.2, jitter=0, deadline=0.05
        )
        with ServeClient("127.0.0.1", 1, timeout=1.0, retry=policy) as client:
            with pytest.raises(ServeTimeoutError):
                client.health()

    def test_refusing_proxy_then_heal(self, served_leader):
        server, leader = served_leader
        with FlakyProxy("127.0.0.1", server.port) as proxy:
            client = ServeClient(
                "127.0.0.1", proxy.port, timeout=5.0, retry=FAST_RETRY
            )
            with FollowerDatabase(
                ServeSource(client, "lead"), retry=FAST_RETRY
            ) as follower:
                follower.catch_up()
                flip(leader, 0)
                proxy.refuse = True
                proxy.kill_connections()
                with pytest.raises(ServeConnectionError):
                    follower.catch_up()
                proxy.refuse = False  # the network heals
                follower.catch_up()
                assert (
                    follower.structure_fingerprint == leader.structure_fingerprint
                )

    def test_truncated_response_retries_to_convergence(self, served_leader):
        server, leader = served_leader
        with FlakyProxy("127.0.0.1", server.port) as proxy:
            client = ServeClient(
                "127.0.0.1",
                proxy.port,
                timeout=5.0,
                retry=RetryPolicy(attempts=4, base_delay=0.01, jitter=0),
            )
            with FollowerDatabase(
                ServeSource(client, "lead"), retry=FAST_RETRY
            ) as follower:
                follower.catch_up()
                for element in range(3):
                    flip(leader, element)
                # Cut every response after 40 upstream bytes: truncated
                # HTTP bodies, i.e. torn shipments on the wire.
                proxy.drop_after_bytes = 40
                proxy.kill_connections()
                with pytest.raises(ServeConnectionError):
                    follower.catch_up()
                proxy.drop_after_bytes = None
                follower.catch_up()
                assert (
                    follower.structure_fingerprint == leader.structure_fingerprint
                )
                assert proxy.dropped >= 1

    def test_leader_restart_resume(self, tmp_path):
        structure = random_colored_graph(20, max_degree=3, seed=11)
        path = tmp_path / "leader"
        leader = Database.open(path, structure=structure, sync=False)
        registry = DatabaseRegistry()
        registry.add("lead", leader, close_on_shutdown=False)

        proxy = FlakyProxy("127.0.0.1", 0)  # upstream patched per phase
        proxy.start()
        client = ServeClient(
            "127.0.0.1", proxy.port, timeout=5.0, retry=FAST_RETRY
        )
        follower = None
        try:
            with serve_in_thread(registry) as server:
                proxy.upstream_port = server.port
                follower = FollowerDatabase(
                    ServeSource(client, "lead"), retry=FAST_RETRY
                )
                follower.catch_up()
                flip(leader, 0)
                follower.catch_up()
                assert follower.structure_fingerprint == leader.structure_fingerprint
            # The leader goes away: reads keep working, tailing fails
            # with the transport taxonomy (not a hang, not a crash).
            leader.close()
            proxy.kill_connections()
            assert follower.count(QUERY) >= 0
            with pytest.raises(ServeConnectionError):
                follower.catch_up()
            # The leader restarts from its store with more commits; the
            # follower resumes from its position and converges.
            leader = Database.open(path, sync=False)
            flip(leader, 1)
            registry2 = DatabaseRegistry()
            registry2.add("lead", leader, close_on_shutdown=False)
            with serve_in_thread(registry2) as server2:
                proxy.upstream_port = server2.port
                follower.catch_up()
                assert follower.version == leader.version
                assert follower.structure_fingerprint == leader.structure_fingerprint
                assert follower.stats()["reseeds"] == 0  # resumed, not re-seeded
        finally:
            if follower is not None:
                follower.close()
            else:
                client.close()
            proxy.stop()
            leader.close()
