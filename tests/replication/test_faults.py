"""Fault injection: process crashes at named points, wire faults on the
proxy, and a Hypothesis-driven schedule of commits × crashes × restarts
proving the replication contract under adversity:

* the follower always converges to the leader's fingerprint once the
  faults stop, and
* every read the follower ever answered was byte-identical to some
  state the leader actually reached (no invented intermediate states).
"""

from __future__ import annotations

import socket
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.replication import (
    CRASH_POINTS,
    DirectorySource,
    FlakyProxy,
    FollowerDatabase,
    InjectedCrash,
    crash_point,
    inject,
)
from repro.replication.faults import is_armed
from repro.session import Database
from repro.structures.random_gen import random_colored_graph


def flip(db: Database, element: int) -> None:
    if db.structure.has_fact("R", element):
        db.apply([("delete", "R", (element,))])
    else:
        db.apply([("insert", "R", (element,))])


def injected(error: BaseException) -> bool:
    """Did ``error`` originate from an armed crash point?

    A WAL-append crash surfaces wrapped in
    :class:`~repro.errors.DurabilityError` (the session latches its
    degraded-durability state — the path under test), so crash drivers
    walk the cause chain instead of matching the top type.
    """
    seen = error
    while seen is not None:
        if isinstance(seen, InjectedCrash):
            return True
        seen = seen.__cause__
    return False


class TestCrashPointPlumbing:
    def test_unarmed_points_are_no_ops(self):
        for point in CRASH_POINTS:
            crash_point(point)  # must not raise

    def test_armed_point_fires_on_the_nth_hit(self):
        with inject({"ship.batch": 3}):
            crash_point("ship.batch")
            crash_point("ship.batch")
            with pytest.raises(InjectedCrash) as info:
                crash_point("ship.batch")
            assert info.value.point == "ship.batch"
            crash_point("ship.batch")  # fired points disarm themselves

    def test_callable_action_runs_instead_of_raising(self):
        ran = []
        with inject({"ship.batch": lambda: ran.append(True)}):
            crash_point("ship.batch")
        assert ran == [True]

    def test_scope_exit_disarms(self):
        with inject({"ship.batch": 5}):
            assert is_armed("ship.batch")
        assert not is_armed("ship.batch")

    def test_injected_crash_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(InjectedCrash, ReproError)


class TestCrashMatrix:
    """Arm every named crash point in a full leader→follower cycle;
    after the 'process death', a restart from disk must converge."""

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_convergence_after_crash_at(self, point, tmp_path):
        structure = random_colored_graph(16, max_degree=3, seed=7)
        path = tmp_path / "leader"
        leader = Database.open(path, structure=structure, sync=False)
        stale = []  # abandoned "dead" sessions, closed at the end
        follower = FollowerDatabase(DirectorySource(path))
        follower.catch_up()

        crashed = False
        with inject({point: 1}):
            try:
                flip(leader, 0)
                flip(leader, 1)
                leader.checkpoint()
                flip(leader, 2)
                follower.catch_up()
            except Exception as error:
                assert injected(error), f"unexpected error: {error!r}"
                crashed = True
        assert crashed, f"the {point!r} crash point never fired"

        # A leader-side death abandons the session (files are what
        # survive a real crash) and restarts from disk.
        if not point.startswith("follower.") and point != "ship.batch":
            stale.append(leader)
            leader = Database.open(path, sync=False)
        flip(leader, 3)

        follower.catch_up()
        assert follower.version == leader.version
        assert follower.structure_fingerprint == leader.structure_fingerprint

        follower.close()
        leader.close()
        for db in stale:
            db.close()


class TestFlakyProxyUnit:
    """The proxy itself, against a plain echo server."""

    @pytest.fixture
    def echo(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        stop = threading.Event()

        def serve():
            listener.settimeout(0.2)
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                with conn:
                    while True:
                        try:
                            data = conn.recv(4096)
                        except OSError:
                            break
                        if not data:
                            break
                        try:
                            conn.sendall(data)
                        except OSError:
                            break

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        yield listener.getsockname()[1]
        stop.set()
        listener.close()
        thread.join(timeout=5)

    def test_healthy_relay(self, echo):
        with FlakyProxy("127.0.0.1", echo) as proxy:
            with socket.create_connection(("127.0.0.1", proxy.port), 5) as sock:
                sock.sendall(b"ping")
                assert sock.recv(16) == b"ping"
            assert proxy.connections == 1
            assert proxy.bytes_relayed >= 4

    def test_refuse_closes_new_connections(self, echo):
        with FlakyProxy("127.0.0.1", echo) as proxy:
            proxy.refuse = True
            with socket.create_connection(("127.0.0.1", proxy.port), 5) as sock:
                sock.settimeout(2)
                assert sock.recv(16) == b""  # closed without a byte

    def test_drop_after_bytes_truncates_the_stream(self, echo):
        with FlakyProxy("127.0.0.1", echo) as proxy:
            proxy.drop_after_bytes = 6
            with socket.create_connection(("127.0.0.1", proxy.port), 5) as sock:
                sock.settimeout(2)
                sock.sendall(b"0123456789")
                received = b""
                while True:
                    try:
                        chunk = sock.recv(16)
                    except OSError:
                        break
                    if not chunk:
                        break
                    received += chunk
            assert received == b"012345"  # a torn final chunk
            assert proxy.dropped >= 1


@st.composite
def fault_schedules(draw):
    """A seed plus a step list mixing commits, checkpoints, catch-ups,
    and crashes at drawn points (with the implied restarts)."""
    seed = draw(st.integers(min_value=0, max_value=30))
    steps = draw(
        st.lists(
            st.one_of(
                st.just(("commit",)),
                st.just(("commit",)),
                st.just(("commit",)),
                st.just(("catch_up",)),
                st.just(("checkpoint",)),
                st.tuples(st.just("crash"), st.sampled_from(CRASH_POINTS)),
            ),
            min_size=3,
            max_size=10,
        )
    )
    return seed, steps


class TestConvergenceSchedules:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_follower_converges_and_never_invents_states(
        self, data, tmp_path_factory
    ):
        seed, steps = data.draw(fault_schedules())
        path = tmp_path_factory.mktemp("sched") / "leader"
        structure = random_colored_graph(16, max_degree=3, seed=seed)
        leader = Database.open(path, structure=structure.copy(), sync=False)
        stale = []
        # Every state the leader actually reached, by version.  A
        # follower read is legal iff its (version, fingerprint) pair is
        # in this history.
        history = {leader.version: leader.structure_fingerprint}
        follower = FollowerDatabase(DirectorySource(path))
        element = 0

        def check_follower_state():
            version = follower.version
            assert history.get(version) == follower.structure_fingerprint, (
                f"follower at version {version} holds a state the "
                f"leader never reached"
            )

        def leader_restart():
            nonlocal leader
            stale.append(leader)
            leader = Database.open(path, sync=False)
            fingerprint = leader.structure_fingerprint
            if leader.version in history:
                # Recovery must land exactly on an acknowledged state.
                assert history[leader.version] == fingerprint
            else:
                # A durable-but-unacknowledged record (crash between
                # fsync and the ack) becomes leader history on restart.
                history[leader.version] = fingerprint

        try:
            for step in steps:
                if step[0] == "commit":
                    flip(leader, element % 16)
                    element += 1
                    history[leader.version] = leader.structure_fingerprint
                elif step[0] == "checkpoint":
                    leader.checkpoint()
                elif step[0] == "catch_up":
                    follower.catch_up()
                    check_follower_state()
                else:  # ("crash", point)
                    point = step[1]
                    follower_side = (
                        point.startswith("follower.") or point == "ship.batch"
                    )
                    with inject({point: 1}):
                        try:
                            if follower_side:
                                follower.catch_up()
                            elif point.startswith("checkpoint."):
                                leader.checkpoint()
                            else:
                                flip(leader, element % 16)
                                element += 1
                                history[leader.version] = (
                                    leader.structure_fingerprint
                                )
                        except Exception as error:
                            assert injected(error), f"unexpected: {error!r}"
                            if not follower_side:
                                leader_restart()
                    check_follower_state()

            # The faults stop: one healthy catch-up converges exactly.
            follower.catch_up()
            assert follower.version == leader.version
            assert follower.structure_fingerprint == leader.structure_fingerprint
            check_follower_state()
        finally:
            follower.close()
            leader.close()
            for db in stale:
                db.close()
