"""The shared-directory replication topology: a follower tailing a
leader's durable store read-only.

The invariants under test are the replication contract itself:

* convergence — after ``catch_up`` the follower's fingerprint equals
  the leader's at the same version;
* warmth — replayed commits go through the maintained-commit path, so
  a follower query re-run after catch-up is a cache *hit*;
* staleness honesty — lag is reported in ``stats`` and ``explain``,
  and ``max_lag`` refuses reads with a structured
  :class:`~repro.errors.ReplicaLagError`;
* read-only discipline — follower writes are refused, and snapshot
  pins survive both replay and snapshot re-seed.
"""

from __future__ import annotations

import pytest

from repro.errors import EngineError, ReplicaLagError, ReplicationError
from repro.replication import DirectorySource, FollowerDatabase
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

QUERY = "B(x) & ~R(x)"


@pytest.fixture
def leader(tmp_path):
    structure = random_colored_graph(20, max_degree=3, seed=11)
    with Database.open(tmp_path / "leader", structure=structure, sync=False) as db:
        yield db


def follower_of(leader: Database, **options) -> FollowerDatabase:
    return FollowerDatabase(DirectorySource(leader.path), **options)


def flip(leader: Database, element: int) -> None:
    """One effective commit: toggle ``element``'s R color."""
    if leader.structure.has_fact("R", element):
        leader.apply([("delete", "R", (element,))])
    else:
        leader.apply([("insert", "R", (element,))])


class TestCatchUp:
    def test_converges_to_leader_fingerprint(self, leader):
        flip(leader, 0)
        flip(leader, 1)
        with follower_of(leader) as follower:
            follower.catch_up()
            assert follower.version == leader.version
            assert follower.structure_fingerprint == leader.structure_fingerprint
            assert follower.lag == 0

    def test_incremental_replay_not_reseed(self, leader):
        with follower_of(leader) as follower:
            follower.catch_up()
            for element in range(4):
                flip(leader, element)
            applied = follower.catch_up()
            assert applied == 4
            assert follower.stats()["reseeds"] == 0
            assert follower.structure_fingerprint == leader.structure_fingerprint

    def test_catch_up_is_idempotent(self, leader):
        flip(leader, 2)
        with follower_of(leader) as follower:
            follower.catch_up()
            assert follower.catch_up() == 0  # nothing new: applies nothing
            assert follower.version == leader.version

    def test_small_batches_page_through_the_log(self, leader):
        with follower_of(leader, batch_limit=1) as follower:
            follower.catch_up()
            for element in range(5):
                flip(leader, element)
            assert follower.catch_up() == 5
            assert follower.structure_fingerprint == leader.structure_fingerprint

    def test_checkpoint_retiring_needed_segments_triggers_reseed(self, leader):
        with follower_of(leader) as follower:
            follower.catch_up()
            pinned_version = follower.version
            flip(leader, 3)
            leader.checkpoint()  # retires the records the follower needs
            flip(leader, 4)
            follower.catch_up()
            assert follower.stats()["reseeds"] == 1
            assert follower.version == leader.version
            assert follower.structure_fingerprint == leader.structure_fingerprint
            assert follower.version > pinned_version

    def test_query_results_match_leader(self, leader):
        for element in range(6):
            flip(leader, element)
        with follower_of(leader) as follower:
            follower.catch_up()
            expected = sorted(leader.query(QUERY).answers())
            assert sorted(follower.query(QUERY).answers()) == expected
            assert follower.count(QUERY) == leader.query(QUERY).count()


class TestWarmth:
    def test_first_query_after_catch_up_is_a_cache_hit(self, leader):
        with follower_of(leader) as follower:
            follower.catch_up()
            before = follower.count(QUERY)
            misses = follower.stats()["misses"]
            flip(leader, 0)
            follower.catch_up()
            # The replayed commit maintained the cached pipeline in
            # place; re-running the query must not rebuild it.
            after = follower.count(QUERY)
            stats = follower.stats()
            assert stats["misses"] == misses
            assert stats["hits"] >= 1
            assert after == leader.query(QUERY).count()
            assert (after != before) or True  # counts may or may not move


class TestStaleness:
    def test_lag_is_reported_when_leader_runs_ahead(self, leader):
        class AheadSource(DirectorySource):
            """A leader that advertises its true head (as the serve
            tier does) even when the shipment itself is clipped."""

            extra = 0

            def shipment(self, after_version, limit=512):
                out = super().shipment(after_version, limit=limit)
                out["leader_version"] += self.extra
                return out

        source = AheadSource(leader.path)
        with FollowerDatabase(source) as follower:
            follower.catch_up()
            source.extra = 3
            follower.catch_up()
            assert follower.lag == 3
            assert follower.stats()["lag"] == 3
            plan = follower.query(QUERY).explain()
            assert plan.role == "follower"
            assert plan.lag == 3
            assert "follower" in plan.describe()

    def test_max_lag_refuses_stale_reads_with_structure(self, leader):
        class AheadSource(DirectorySource):
            def shipment(self, after_version, limit=512):
                out = super().shipment(after_version, limit=limit)
                out["leader_version"] += 5
                return out

        with FollowerDatabase(AheadSource(leader.path), max_lag=2) as follower:
            follower.catch_up()
            with pytest.raises(ReplicaLagError) as info:
                follower.query(QUERY)
            assert info.value.lag == 5
            assert info.value.version == follower.version
            assert info.value.leader_version == follower.version + 5
            with pytest.raises(ReplicaLagError):
                follower.snapshot()

    def test_fresh_reads_pass_the_lag_guard(self, leader):
        with follower_of(leader, max_lag=0) as follower:
            follower.catch_up()
            assert follower.count(QUERY) == leader.query(QUERY).count()


class TestReadOnly:
    @pytest.mark.parametrize(
        "method", ["insert_fact", "remove_fact", "apply", "transaction", "checkpoint"]
    )
    def test_writes_are_refused(self, leader, method):
        with follower_of(leader) as follower:
            with pytest.raises(ReplicationError, match="leader"):
                getattr(follower, method)("B", 0)

    def test_snapshot_pin_survives_replay(self, leader):
        with follower_of(leader) as follower:
            follower.catch_up()
            with follower.snapshot() as snap:
                baseline = sorted(snap.query(QUERY).answers())
                pinned_version = snap.version
                flip(leader, 0)
                flip(leader, 1)
                follower.catch_up()
                assert follower.version > pinned_version
                assert sorted(snap.query(QUERY).answers()) == baseline

    def test_snapshot_pin_survives_reseed(self, leader):
        with follower_of(leader) as follower:
            follower.catch_up()
            snap = follower.snapshot()
            baseline = sorted(snap.query(QUERY).answers())
            flip(leader, 3)
            leader.checkpoint()
            flip(leader, 4)
            follower.catch_up()
            assert follower.stats()["reseeds"] == 1
            # The pre-reseed session is retired, not closed: the pin
            # keeps answering byte-identically.
            assert sorted(snap.query(QUERY).answers()) == baseline
            snap.close()

    def test_leader_is_never_written_by_the_follower(self, leader):
        version = leader.version
        with follower_of(leader) as follower:
            follower.catch_up()
            follower.count(QUERY)
        assert leader.version == version
        assert leader.stats()["wal_records"] == 0


class TestLifecycle:
    def test_missing_store_is_a_replication_error(self, tmp_path):
        with pytest.raises(ReplicationError, match="no durable store"):
            FollowerDatabase(DirectorySource(tmp_path / "ghost"))

    def test_closed_follower_refuses_reads(self, leader):
        follower = follower_of(leader)
        follower.close()
        with pytest.raises(EngineError, match="closed"):
            follower.version
        follower.close()  # double close is fine

    def test_stats_shape(self, leader):
        with follower_of(leader, max_lag=7) as follower:
            follower.catch_up()
            stats = follower.stats()
            assert stats["role"] == "follower"
            assert stats["max_lag"] == 7
            assert stats["records_applied"] == 0
            assert stats["reseeds"] == 0
            assert stats["tailing"] is False
            assert stats["last_error"] is None
            assert "directory" in stats["source"]
            assert "breaker_consecutive_failures" in stats

    def test_repr_mentions_versions(self, leader):
        with follower_of(leader) as follower:
            follower.catch_up()
            assert f"version={follower.version}" in repr(follower)


class TestTailing:
    def test_background_tailer_converges(self, leader):
        import time

        with follower_of(leader) as follower:
            follower.catch_up()
            follower.start_tailing(interval=0.02)
            assert follower.tailing
            for element in range(4):
                flip(leader, element)
            deadline = time.monotonic() + 5
            while follower.version < leader.version and time.monotonic() < deadline:
                time.sleep(0.01)
            follower.stop_tailing()
            assert not follower.tailing
            assert follower.structure_fingerprint == leader.structure_fingerprint
