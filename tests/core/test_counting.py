"""Tests for counting (Lemma 3.6, Theorem 2.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting import count_answers
from repro.core.pipeline import Pipeline
from repro.fo.parser import parse
from repro.fo.semantics import naive_count
from repro.fo.syntax import Var
from repro.storage.cost_model import CostMeter
from repro.structures.random_gen import (
    grid_graph,
    padded_clique,
    random_colored_graph,
)

x, y, z = Var("x"), Var("y"), Var("z")


def assert_count_matches(db, text, order=None):
    query = parse(text)
    order = order or sorted(query.free)
    pipeline = Pipeline(db, query, order=order)
    assert count_answers(pipeline) == naive_count(query, db, order=order)


CORPUS = [
    "B(x) & R(y) & ~E(x,y)",
    "B(x) & R(y) & E(x,y)",
    "B(x) & R(y)",
    "B(x) & B(y) & ~E(x,y) & ~E(y,x) & x != y",
    "E(x,y) | E(y,x)",
    "exists z. E(x,z) & R(z)",
    "forall z. E(x,z) -> B(z)",
]


class TestCountCorpus:
    @pytest.mark.parametrize("text", CORPUS)
    def test_small_random(self, text, small_colored):
        assert_count_matches(small_colored, text)

    @pytest.mark.parametrize("text", CORPUS)
    def test_padded_clique(self, text, clique_structure):
        assert_count_matches(clique_structure, text)

    @pytest.mark.parametrize("text", CORPUS[:4])
    def test_grid(self, text, grid_structure):
        assert_count_matches(grid_structure, text)


class TestCountShapes:
    def test_trivially_true_query(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x) | ~B(x)"), order=(x,))
        assert count_answers(pipeline) == small_colored.cardinality

    def test_trivially_true_binary(self, small_colored):
        pipeline = Pipeline(
            small_colored, parse("(B(x) | ~B(x)) & (B(y) | ~B(y))"), order=(x, y)
        )
        assert count_answers(pipeline) == small_colored.cardinality ** 2

    def test_trivially_false(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x) & ~B(x)"), order=(x,))
        assert count_answers(pipeline) == 0

    def test_true_sentence_counts_one(self, small_colored):
        pipeline = Pipeline(small_colored, parse("exists x. B(x)"))
        assert count_answers(pipeline) == 1

    def test_false_sentence_counts_zero(self, small_colored):
        pipeline = Pipeline(small_colored, parse("exists x. B(x) & R(x) & ~B(x)"))
        assert count_answers(pipeline) == 0

    def test_three_variables(self, three_colored):
        assert_count_matches(
            three_colored,
            "B(x) & R(y) & G(z) & ~E(x,y) & ~E(y,z) & ~E(x,z)",
        )

    def test_meter_records_steps(self, small_colored):
        pipeline = Pipeline(
            small_colored, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y)
        )
        meter = CostMeter()
        count_answers(pipeline, meter)
        assert meter.steps > 0


@given(seed=st.integers(0, 40), degree=st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_example_query_count_property(seed, degree):
    """Example 2.3 counts agree with the oracle across random graphs."""
    db = random_colored_graph(15, max_degree=degree, seed=seed)
    assert_count_matches(db, "B(x) & R(y) & ~E(x,y)")


@given(seed=st.integers(0, 40))
@settings(max_examples=10, deadline=None)
def test_quantified_count_property(seed):
    db = random_colored_graph(12, max_degree=3, seed=seed)
    assert_count_matches(db, "exists z. R(z) & ~E(x,z) & ~E(z,y)")
