"""Tests for the colored graph construction (Steps 3-4 of Prop 3.4)."""

import pytest

from repro.core.colored_graph import BOTTOM, ColoredGraph, build_colored_graph
from repro.errors import UnsupportedQueryError
from repro.fo.localize import LocalEvaluator
from repro.structures.gaifman_graph import within_distance
from repro.structures.random_gen import random_colored_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure


@pytest.fixture
def path():
    """0 - 1 - 2 - 3 path."""
    db = Structure(Signature.of(E=2), range(4))
    for u in range(3):
        db.add_fact("E", u, u + 1)
    return db


def build(db, k, link_radius=1):
    evaluator = LocalEvaluator(db, {})
    return build_colored_graph(db, evaluator, k, link_radius)


class TestNodes:
    def test_bottom_node(self, path):
        graph = build(path, 2)
        bottom = graph.node(BOTTOM)
        assert bottom.elements == ()
        assert bottom.positions == ()

    def test_singletons_for_every_element_and_position(self, path):
        graph = build(path, 2)
        for element in path.domain:
            for position in ((0,), (1,)):
                assert graph.node_id((element,), position) is not None

    def test_adjacent_pairs_present(self, path):
        graph = build(path, 2)
        assert graph.node_id((0, 1), (0, 1)) is not None
        assert graph.node_id((1, 0), (0, 1)) is not None

    def test_far_pairs_absent(self, path):
        graph = build(path, 2)
        assert graph.node_id((0, 3), (0, 1)) is None

    def test_repeated_element_tuples_present(self, path):
        graph = build(path, 2)
        assert graph.node_id((2, 2), (0, 1)) is not None

    def test_larger_link_radius_connects_more(self, path):
        graph = build(path, 2, link_radius=3)
        assert graph.node_id((0, 3), (0, 1)) is not None

    def test_k_zero_graph_is_just_bottom(self, path):
        graph = build(path, 0)
        assert graph.node_count == 1

    def test_k_three_includes_chains(self, path):
        graph = build(path, 3)
        # (0, 1, 2) is connected through consecutive edges.
        assert graph.node_id((0, 1, 2), (0, 1, 2)) is not None
        # (0, 2) alone is not connected at radius 1...
        assert graph.node_id((0, 2), (0, 1)) is None
        # ...but (0, 2, 1) is, through 1.
        assert graph.node_id((0, 2, 1), (0, 1, 2)) is not None

    def test_node_budget_enforced(self, path):
        with pytest.raises(UnsupportedQueryError):
            build_colored_graph(path, LocalEvaluator(path, {}), 3, 1, max_nodes=5)


class TestEdges:
    def test_bottom_is_isolated(self, path):
        graph = build(path, 2)
        assert graph.neighbors(BOTTOM) == frozenset()

    def test_adjacent_singletons_linked(self, path):
        graph = build(path, 2)
        left = graph.node_id((0,), (0,))
        right = graph.node_id((1,), (1,))
        assert graph.adjacent(left, right)

    def test_far_singletons_not_linked(self, path):
        graph = build(path, 2)
        left = graph.node_id((0,), (0,))
        right = graph.node_id((3,), (1,))
        assert not graph.adjacent(left, right)

    def test_shared_component_linked(self, path):
        graph = build(path, 2)
        left = graph.node_id((1,), (0,))
        right = graph.node_id((1, 2), (0, 1))
        assert graph.adjacent(left, right)

    def test_adjacency_symmetric(self, path):
        graph = build(path, 2)
        for node in graph.nodes:
            for other in graph.neighbors(node.node_id):
                assert node.node_id in graph.neighbors(other)

    def test_no_self_loops(self, path):
        graph = build(path, 2)
        for node in graph.nodes:
            assert node.node_id not in graph.neighbors(node.node_id)

    def test_edge_semantics_on_random_graph(self):
        db = random_colored_graph(12, max_degree=3, seed=3)
        graph = build(db, 2)
        # Check a sample: adjacency in G iff some components within the
        # linking radius.
        sample = [node for node in graph.nodes[1:]][:40]
        for left in sample:
            for right in sample:
                if left.node_id == right.node_id:
                    continue
                expected = any(
                    within_distance(db, a, b, 1)
                    for a in left.elements
                    for b in right.elements
                )
                assert graph.adjacent(left.node_id, right.node_id) == expected

    def test_stats(self, path):
        graph = build(path, 2)
        assert graph.max_degree > 0
        assert graph.edge_count() > 0
        assert graph.node_count == len(graph.nodes)
