"""Tests for constant-delay enumeration (Theorem 2.7) and the skip
machinery (Proposition 3.10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumeration import BranchEnumerator, SkipList, enumerate_answers
from repro.core.pipeline import Pipeline
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.fo.syntax import Var
from repro.storage.cost_model import CostMeter
from repro.structures.random_gen import random_colored_graph

x, y, z = Var("x"), Var("y"), Var("z")


def assert_enumeration_matches(db, text, skip_mode="lazy"):
    query = parse(text)
    order = sorted(query.free)
    pipeline = Pipeline(db, query, order=order)
    got = list(
        enumerate_answers(pipeline, skip_mode=skip_mode, validate=True)
    )
    assert len(got) == len(set(got)), "enumeration produced repetitions"
    assert sorted(got) == sorted(naive_answers(query, db, order=order))


CORPUS = [
    "B(x) & R(y) & ~E(x,y)",
    "B(x) & R(y) & E(x,y)",
    "B(x) & B(y) & ~E(x,y) & ~E(y,x) & x != y",
    "B(x) | R(x)",
    "exists z. E(x,z) & R(z)",
    "exists z. R(z) & ~E(x,z) & ~E(z,y)",
    "forall z. E(x,z) -> B(z)",
]


class TestEnumerationCorpus:
    @pytest.mark.parametrize("text", CORPUS)
    def test_small_random(self, text, small_colored):
        assert_enumeration_matches(small_colored, text)

    @pytest.mark.parametrize("text", CORPUS[:4])
    def test_padded_clique(self, text, clique_structure):
        assert_enumeration_matches(clique_structure, text)

    @pytest.mark.parametrize("text", CORPUS[:4])
    def test_ring(self, text, ring_structure):
        assert_enumeration_matches(ring_structure, text)

    def test_three_variable_query(self, three_colored):
        assert_enumeration_matches(
            three_colored,
            "B(x) & R(y) & G(z) & ~E(x,y) & ~E(y,z) & ~E(x,z)",
        )


class TestSkipModes:
    def test_precompute_agrees_with_lazy(self, small_colored):
        query = parse("B(x) & R(y) & ~E(x,y)")
        pipeline = Pipeline(small_colored, query, order=(x, y))
        lazy = list(enumerate_answers(pipeline, skip_mode="lazy"))
        strict = list(enumerate_answers(pipeline, skip_mode="precompute"))
        assert lazy == strict

    def test_precompute_on_corpus(self, small_colored):
        for text in CORPUS[:4]:
            assert_enumeration_matches(small_colored, text, skip_mode="precompute")

    def test_unknown_mode_rejected(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x)"), order=(x,))
        with pytest.raises(ValueError):
            list(enumerate_answers(pipeline, skip_mode="bogus"))


class TestTrivialCases:
    def test_trivial_false_yields_nothing(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x) & ~B(x)"), order=(x,))
        assert list(enumerate_answers(pipeline)) == []

    def test_trivial_true_yields_domain(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x) | ~B(x)"), order=(x,))
        got = list(enumerate_answers(pipeline))
        assert sorted(got) == sorted((a,) for a in small_colored.domain)

    def test_true_sentence_yields_empty_tuple(self, small_colored):
        pipeline = Pipeline(small_colored, parse("exists x. B(x)"))
        assert list(enumerate_answers(pipeline)) == [()]

    def test_false_sentence_yields_nothing(self, small_colored):
        pipeline = Pipeline(
            small_colored, parse("exists x. B(x) & ~B(x)")
        )
        assert list(enumerate_answers(pipeline)) == []


class TestDelayShape:
    def test_step_deltas_are_bounded(self, medium_colored):
        """RAM steps between consecutive outputs are small and uniform —
        the measurable content of 'constant delay'."""
        query = parse("B(x) & R(y) & ~E(x,y)")
        pipeline = Pipeline(medium_colored, query, order=(x, y))
        meter = CostMeter()
        outputs = 0
        for _ in enumerate_answers(pipeline, meter=meter):
            meter.mark()
            outputs += 1
        assert outputs > 0
        assert meter.max_delta <= 60

    def test_delay_flat_across_sizes(self):
        """Max step-delta does not grow when n quadruples."""
        deltas = []
        for n in (50, 200):
            db = random_colored_graph(n, max_degree=3, seed=13)
            pipeline = Pipeline(
                db, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y)
            )
            meter = CostMeter()
            for _ in enumerate_answers(pipeline, meter=meter):
                meter.mark()
            deltas.append(meter.max_delta)
        assert deltas[1] <= deltas[0] + 5


class TestSkipList:
    @pytest.fixture
    def skiplist(self, small_colored):
        pipeline = Pipeline(
            small_colored, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y)
        )
        branch = max(pipeline.branches, key=lambda b: min(len(l) for l in b.lists))
        nodes = branch.lists[0]
        return SkipList(pipeline.graph, nodes, 2), pipeline.graph

    def test_first_and_next(self, skiplist):
        sl, _ = skiplist
        first = sl.first()
        assert first == sl.nodes[0]
        assert sl.next(sl.nodes[-1]) is None
        if len(sl) > 1:
            assert sl.next(first) == sl.nodes[1]

    def test_skip_with_no_blockers_is_identity(self, skiplist):
        sl, _ = skiplist
        for node in sl.nodes[:5]:
            assert sl.skip(node, frozenset()) == node

    def test_skip_skips_adjacent(self, skiplist):
        sl, graph = skiplist
        # Use each node's own neighbors as blockers: skip must never
        # return a node adjacent to them.
        for node in sl.nodes[:5]:
            blockers = frozenset(list(graph.neighbors(node))[:1])
            if not blockers:
                continue
            landed = sl.skip(node, blockers)
            if landed is not None:
                assert not any(
                    blocker in graph.neighbors(landed) for blocker in blockers
                )

    def test_skip_memoized(self, skiplist):
        sl, _ = skiplist
        node = sl.first()
        meter1 = CostMeter()
        sl.skip(node, frozenset(), meter1)
        meter2 = CostMeter()
        sl.skip(node, frozenset(), meter2)
        assert meter2.by_label.get("enum.skip_hit", 0) == 1

    def test_reach_contains_neighbors(self, skiplist):
        sl, graph = skiplist
        for node in sl.nodes[:5]:
            assert graph.neighbors(node) <= sl.reach(node)

    def test_reach_monotone_in_closure(self, small_colored):
        pipeline = Pipeline(
            small_colored, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y)
        )
        branch = pipeline.branches[0]
        nodes = branch.lists[0]
        shallow = SkipList(pipeline.graph, nodes, 1)
        deep = SkipList(pipeline.graph, nodes, 3)
        for node in nodes[:5]:
            assert shallow.reach(node) <= deep.reach(node)


@given(seed=st.integers(0, 60), degree=st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_enumeration_oracle_property(seed, degree):
    db = random_colored_graph(14, max_degree=degree, seed=seed)
    assert_enumeration_matches(db, "B(x) & R(y) & ~E(x,y)")


@given(seed=st.integers(0, 40))
@settings(max_examples=10, deadline=None)
def test_enumeration_three_blocks_property(seed):
    db = random_colored_graph(10, max_degree=2, colors=("B", "R", "G"), seed=seed)
    assert_enumeration_matches(
        db, "B(x) & R(y) & G(z) & ~E(x,y) & ~E(y,z) & ~E(x,z)"
    )
