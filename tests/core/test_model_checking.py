"""Tests for model checking (Theorem 2.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model_checking import model_check
from repro.errors import QueryError
from repro.fo.parser import parse
from repro.fo.semantics import evaluate
from repro.structures.random_gen import padded_clique, random_colored_graph

from strategies import formulas, rejecting_unsupported, structures
from repro.fo.syntax import Exists, Forall, Var


SENTENCES = [
    "exists x. exists y. B(x) & R(y) & ~E(x,y)",
    "exists x. exists y. B(x) & R(y) & E(x,y)",
    "forall x. B(x) | R(x)",
    "exists x. forall y. E(x,y) -> R(y)",
    "exists x. exists y. dist(x,y) > 3 & B(x) & B(y)",
    "forall x. forall y. E(x,y) -> E(y,x)",
    "exists x. B(x) & R(x)",
    "forall x. exists y. E(x,y) | E(y,x) | x = y",
]


class TestSentences:
    @pytest.mark.parametrize("text", SENTENCES)
    def test_matches_oracle_random(self, text, small_colored):
        sentence = parse(text)
        assert model_check(sentence, small_colored) == evaluate(
            sentence, small_colored, {}
        )

    @pytest.mark.parametrize("text", SENTENCES)
    def test_matches_oracle_clique(self, text, clique_structure):
        sentence = parse(text)
        assert model_check(sentence, clique_structure) == evaluate(
            sentence, clique_structure, {}
        )

    def test_free_variables_rejected(self, small_colored):
        with pytest.raises(QueryError):
            model_check(parse("B(x)"), small_colored)


@given(formula=formulas(free_count=1, max_depth=2, max_quantifiers=1),
       db=structures(max_n=10))
@settings(max_examples=30, deadline=None)
def test_model_checking_property(formula, db):
    """Random closed sentences: model_check agrees with naive evaluation.

    Localization budgets (max_units, derived-predicate limits) reject
    some generated sentences with UnsupportedQueryError — the same
    draw-again convention as every differential suite, not a failure.
    """
    sentence = Exists(Var("x"), formula)
    with rejecting_unsupported():
        verdict = model_check(sentence, db)
    assert verdict == evaluate(sentence, db, {})


@given(formula=formulas(free_count=1, max_depth=2, max_quantifiers=1),
       db=structures(max_n=9))
@settings(max_examples=20, deadline=None)
def test_model_checking_forall_property(formula, db):
    sentence = Forall(Var("x"), formula)
    with rejecting_unsupported():
        verdict = model_check(sentence, db)
    assert verdict == evaluate(sentence, db, {})
