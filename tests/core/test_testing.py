"""Tests for constant-time answer testing (Theorem 2.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import Pipeline
from repro.core.testing import AnswerTester, test_answer
from repro.errors import QueryError
from repro.fo.parser import parse
from repro.fo.semantics import naive_test
from repro.fo.syntax import Var
from repro.storage.cost_model import CostMeter
from repro.structures.random_gen import random_colored_graph

x, y = Var("x"), Var("y")


def assert_tester_matches(db, text):
    query = parse(text)
    order = sorted(query.free)
    pipeline = Pipeline(db, query, order=order)
    domain = list(db.domain)
    # Probe all pairs (or all singletons) to cover positives and negatives.
    if len(order) == 1:
        candidates = [(a,) for a in domain]
    else:
        candidates = [(a, b) for a in domain[:12] for b in domain[:12]]
    for candidate in candidates:
        got = test_answer(pipeline, candidate)
        want = naive_test(query, db, candidate, order=order)
        assert got == want, f"{text} on {candidate}"


class TestCorpus:
    @pytest.mark.parametrize(
        "text",
        [
            "B(x) & R(y) & ~E(x,y)",
            "B(x) & R(y) & E(x,y)",
            "B(x) & B(y) & ~E(x,y) & ~E(y,x) & x != y",
            "exists z. E(x,z) & R(z)",
            "forall z. E(x,z) -> B(z)",
            "B(x)",
            "~B(x) & ~R(x)",
        ],
    )
    def test_small_random(self, text, small_colored):
        assert_tester_matches(small_colored, text)

    def test_padded_clique(self, clique_structure):
        assert_tester_matches(clique_structure, "B(x) & R(y) & ~E(x,y)")

    def test_grid(self, grid_structure):
        assert_tester_matches(grid_structure, "exists z. E(x,z) & E(z,y) & x != y")


class TestEdgeCases:
    def test_trivial_true(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x) | ~B(x)"), order=(x,))
        element = small_colored.domain[0]
        assert test_answer(pipeline, (element,))

    def test_trivial_false(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x) & ~B(x)"), order=(x,))
        element = small_colored.domain[0]
        assert not test_answer(pipeline, (element,))

    def test_arity_mismatch(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x)"), order=(x,))
        with pytest.raises(QueryError):
            test_answer(pipeline, (0, 1))

    def test_unknown_element(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x)"), order=(x,))
        with pytest.raises(QueryError):
            test_answer(pipeline, ("nope",))

    def test_unknown_element_trivial_query(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x) | ~B(x)"), order=(x,))
        with pytest.raises(QueryError):
            test_answer(pipeline, ("nope",))

    def test_repeated_element_tuple(self, small_colored):
        query = parse("B(x) & R(y) & ~E(x,y)")
        pipeline = Pipeline(small_colored, query, order=(x, y))
        for element in small_colored.domain:
            got = test_answer(pipeline, (element, element))
            want = naive_test(query, small_colored, (element, element), order=(x, y))
            assert got == want

    def test_callable_wrapper(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x)"), order=(x,))
        tester = AnswerTester(pipeline)
        element = small_colored.domain[0]
        assert tester((element,)) == test_answer(pipeline, (element,))


class TestConstantTimeShape:
    def test_step_count_is_small_and_fixed(self, medium_colored):
        """The meter's step count per test does not depend on which tuple
        is probed (and is tiny)."""
        pipeline = Pipeline(
            medium_colored, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y)
        )
        domain = list(medium_colored.domain)
        step_counts = set()
        for candidate in [(domain[0], domain[1]), (domain[5], domain[40]),
                          (domain[10], domain[10])]:
            meter = CostMeter()
            test_answer(pipeline, candidate, meter)
            step_counts.add(meter.steps)
        assert max(step_counts) <= 20


@given(seed=st.integers(0, 40))
@settings(max_examples=10, deadline=None)
def test_testing_oracle_property(seed):
    db = random_colored_graph(14, max_degree=3, seed=seed)
    assert_tester_matches(db, "B(x) & R(y) & ~E(x,y)")
