"""Tests for the naive baselines."""

import pytest

from repro.core.baselines import ListJoinBaseline, product_count, product_enumerate
from repro.errors import QueryError
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.storage.cost_model import CostMeter


class TestProductBaseline:
    def test_matches_oracle(self, small_colored):
        query = parse("B(x) & R(y) & ~E(x,y)")
        got = list(product_enumerate(query, small_colored))
        assert got == naive_answers(query, small_colored)

    def test_count(self, small_colored):
        query = parse("B(x) | R(x)")
        assert product_count(query, small_colored) == len(
            naive_answers(query, small_colored)
        )

    def test_sentence(self, small_colored):
        assert list(product_enumerate(parse("exists x. B(x)"), small_colored)) in (
            [()],
            [],
        )

    def test_meter_counts_every_attempt(self, small_colored):
        query = parse("B(x)")
        meter = CostMeter()
        list(product_enumerate(query, small_colored, meter=meter))
        assert meter.by_label["baseline.check"] == small_colored.cardinality


class TestListJoinBaseline:
    def test_matches_oracle_example(self, small_colored):
        query = parse("B(x) & R(y) & ~E(x,y)")
        baseline = ListJoinBaseline(query, small_colored)
        got = sorted(baseline.enumerate())
        assert got == sorted(naive_answers(query, small_colored))

    def test_positive_binary_atom(self, small_colored):
        query = parse("B(x) & R(y) & E(x,y)")
        baseline = ListJoinBaseline(query, small_colored)
        assert sorted(baseline.enumerate()) == sorted(
            naive_answers(query, small_colored)
        )

    def test_count(self, small_colored):
        query = parse("B(x) & R(y) & ~E(x,y)")
        baseline = ListJoinBaseline(query, small_colored)
        assert baseline.count() == len(naive_answers(query, small_colored))

    def test_candidate_lists_respect_unary_atoms(self, small_colored):
        query = parse("B(x) & R(y) & ~E(x,y)")
        baseline = ListJoinBaseline(query, small_colored)
        for var, relation in (("x", "B"), ("y", "R")):
            from repro.fo.syntax import Var

            for element in baseline.lists[Var(var)]:
                assert small_colored.has_fact(relation, element)

    def test_attempts_exceed_answers_on_false_hits(self, small_colored):
        query = parse("B(x) & R(y) & E(x,y)")
        baseline = ListJoinBaseline(query, small_colored)
        meter = CostMeter()
        answers = list(baseline.enumerate(meter))
        # Attempts = |B-list| * |R-list| >= answers (usually much larger).
        assert meter.by_label["baseline.attempt"] >= len(answers)

    def test_rejects_quantified_queries(self, small_colored):
        with pytest.raises(QueryError):
            ListJoinBaseline(parse("exists z. E(x,z)"), small_colored)

    def test_rejects_negated_unary(self, small_colored):
        with pytest.raises(QueryError):
            ListJoinBaseline(parse("~B(x) & R(y)"), small_colored)

    def test_rejects_disjunction(self, small_colored):
        with pytest.raises(QueryError):
            ListJoinBaseline(parse("B(x) | R(x)"), small_colored)
