"""Failure-injection tests: budgets and guard rails.

The paper's constants are non-elementary in the query size (its own
conclusion); the library's contract is to fail *fast and explicitly* via
:class:`UnsupportedQueryError` instead of hanging when a query or
structure exceeds its budgets.
"""

import pytest

from repro.core.colored_graph import build_colored_graph
from repro.core.enumeration import SkipList
from repro.core.pipeline import Pipeline
from repro.errors import QueryError, UnsupportedQueryError
from repro.fo.localize import LocalEvaluator, LocalizationBudget, localize
from repro.fo.parser import parse
from repro.fo.syntax import Var
from repro.structures.random_gen import random_colored_graph

x, y = Var("x"), Var("y")


class TestLocalizationBudgets:
    def test_max_radius(self, small_colored):
        budget = LocalizationBudget(max_radius=1)
        query = parse("exists z. exists w. dist(z,w) > 3 & E(x,z) & E(x,w)")
        with pytest.raises(UnsupportedQueryError) as excinfo:
            localize(query, small_colored, budget)
        assert "radius" in str(excinfo.value)

    def test_max_derived(self, small_colored):
        budget = LocalizationBudget(max_derived=0)
        with pytest.raises(UnsupportedQueryError) as excinfo:
            localize(
                parse("B(x) & exists z. (R(z) & ~E(x,z))"), small_colored, budget
            )
        assert "derived" in str(excinfo.value)

    def test_budgets_default_are_generous(self, small_colored):
        # The whole query corpus passes under the default budget.
        localize(parse("exists z. exists w. E(z,w) & ~E(x,z)"), small_colored)


class TestPipelineBudgets:
    def test_max_nodes(self, small_colored):
        with pytest.raises(UnsupportedQueryError) as excinfo:
            Pipeline(
                small_colored,
                parse("B(x) & R(y) & ~E(x,y)"),
                order=(x, y),
                max_nodes=3,
            )
        assert "nodes" in str(excinfo.value)

    def test_max_units(self, small_colored):
        # A wide disjunction of many distinct atoms exceeds the unit cap.
        parts = " | ".join(
            f"(B(x) & R(y) & dist(x,y) > {i})" for i in range(1, 10)
        )
        with pytest.raises((UnsupportedQueryError, QueryError)):
            Pipeline(small_colored, parse(parts), order=(x, y), max_units=3)

    def test_graph_budget_via_build_function(self, small_colored):
        evaluator = LocalEvaluator(small_colored, {})
        with pytest.raises(UnsupportedQueryError):
            build_colored_graph(small_colored, evaluator, 3, 1, max_nodes=10)


class TestSkipBudgets:
    def test_precompute_budget(self):
        db = random_colored_graph(120, max_degree=4, seed=1)
        pipeline = Pipeline(db, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y))
        branch = max(
            pipeline.branches, key=lambda b: min(len(l) for l in b.lists)
        )
        big_list = max(branch.lists, key=len)
        skip_list = SkipList(pipeline.graph, big_list, 2)
        with pytest.raises(UnsupportedQueryError):
            skip_list.precompute(max_cells=5)


class TestInputValidation:
    def test_pipeline_rejects_mismatched_order(self, small_colored):
        with pytest.raises(QueryError):
            Pipeline(small_colored, parse("B(x) & R(y)"), order=(x,))

    def test_query_over_unknown_relation(self, small_colored):
        # Unknown relations surface as QueryError during localization /
        # evaluation rather than producing garbage.
        query = parse("Mystery(x) & exists z. Mystery(z) & ~E(x,z)")
        with pytest.raises(QueryError):
            pipeline = Pipeline(small_colored, query, order=(x,))
            list(pipeline.branches)

    def test_unknown_relation_unary_is_false(self, small_colored):
        # Atoms over relations absent from the signature are simply false
        # facts in the reference semantics; the pipeline must agree.
        from repro.fo.semantics import naive_answers

        query = parse("B(x) & Ghost(x, y)")
        try:
            pipeline = Pipeline(small_colored, query, order=(x, y))
            from repro.core.enumeration import enumerate_answers

            got = sorted(enumerate_answers(pipeline))
        except Exception:
            return  # rejecting is acceptable
        assert got == sorted(naive_answers(query, small_colored, order=(x, y)))
