"""Tests for connected conjunctive queries (Lemma 3.2, Proposition 3.3)."""

import pytest

from repro.core.ccq import count_ccq, evaluate_ccq, parse_ccq
from repro.errors import QueryError
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.fo.syntax import Var

x, y, z = Var("x"), Var("y"), Var("z")


class TestParseCCQ:
    def test_simple_conjunction(self):
        free, existential, literals = parse_ccq(parse("E(x,y) & B(x)"))
        assert free == (x, y)
        assert existential == ()
        assert len(literals) == 2

    def test_existential_prefix(self):
        free, existential, literals = parse_ccq(parse("exists z. E(x,z) & B(z)"))
        assert free == (x,)
        assert existential == (z,)

    def test_negated_unary_allowed(self):
        free, _, _ = parse_ccq(parse("E(x,y) & ~B(x)"))
        assert free == (x, y)

    def test_negated_binary_rejected(self):
        # Example 2.3's query is *not* a conjunction (Section 3.2).
        with pytest.raises(QueryError):
            parse_ccq(parse("B(x) & R(y) & ~E(x,y)"))

    def test_disconnected_rejected(self):
        with pytest.raises(QueryError):
            parse_ccq(parse("B(x) & R(y)"))

    def test_disjunction_rejected(self):
        with pytest.raises(QueryError):
            parse_ccq(parse("E(x,y) | B(x)"))

    def test_connected_through_atom(self):
        # Ternary atoms connect all their variables.
        parse_ccq(parse("T(x,y,z)"))


class TestEvaluate:
    @pytest.mark.parametrize(
        "text",
        [
            "E(x,y)",
            "E(x,y) & B(x) & R(y)",
            "E(x,y) & ~B(y)",
            "exists z. E(x,z) & E(z,y)",
            "exists z. E(x,z) & R(z)",
        ],
    )
    def test_matches_oracle(self, text, small_colored):
        query = parse(text)
        order = sorted(query.free)
        got = evaluate_ccq(query, small_colored, order=order)
        want = naive_answers(query, small_colored, order=order)
        assert got == want

    def test_matches_oracle_on_grid(self, grid_structure):
        query = parse("E(x,y) & B(x)")
        got = evaluate_ccq(query, grid_structure)
        want = naive_answers(query, grid_structure)
        assert got == want

    def test_count(self, small_colored):
        query = parse("E(x,y) & B(x)")
        assert count_ccq(query, small_colored) == len(
            naive_answers(query, small_colored)
        )

    def test_boolean_query_rejected(self, small_colored):
        with pytest.raises(QueryError):
            evaluate_ccq(parse("exists x. exists y. E(x,y)"), small_colored)

    def test_answers_sorted(self, small_colored):
        query = parse("E(x,y)")
        answers = evaluate_ccq(query, small_colored)
        order = small_colored.order
        assert answers == sorted(answers, key=order.key)
