"""Tests for the public facade (prepare / PreparedQuery)."""

import pytest

from repro import prepare
from repro.errors import QueryError
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.fo.syntax import Var
from repro.storage.cost_model import CostMeter

x, y = Var("x"), Var("y")


class TestPrepare:
    def test_accepts_text(self, small_colored):
        prepared = prepare(small_colored, "B(x) & R(y) & ~E(x,y)")
        assert prepared.arity == 2

    def test_accepts_formula(self, small_colored):
        prepared = prepare(small_colored, parse("B(x)"))
        assert prepared.arity == 1

    def test_rejects_other_types(self, small_colored):
        with pytest.raises(QueryError):
            prepare(small_colored, 42)

    def test_default_variable_order_is_sorted(self, small_colored):
        prepared = prepare(small_colored, "R(y) & B(x)")
        assert [v.name for v in prepared.variables] == ["x", "y"]

    def test_explicit_order(self, small_colored):
        prepared = prepare(small_colored, "R(y) & B(x)", order=["y", "x"])
        assert [v.name for v in prepared.variables] == ["y", "x"]
        for answer in prepared.enumerate():
            assert small_colored.has_fact("R", answer[0])
            assert small_colored.has_fact("B", answer[1])


class TestOperations:
    def test_three_operations_agree(self, small_colored):
        query = parse("B(x) & R(y) & ~E(x,y)")
        prepared = prepare(small_colored, query)
        answers = prepared.answers()
        assert prepared.count() == len(answers)
        for answer in answers:
            assert prepared.test(answer)
        want = naive_answers(query, small_colored, order=(x, y))
        assert sorted(answers) == sorted(want)

    def test_count_cached(self, small_colored):
        prepared = prepare(small_colored, "B(x)")
        assert prepared.count() == prepared.count()

    def test_count_with_meter_not_cached(self, small_colored):
        prepared = prepare(small_colored, "B(x)")
        meter = CostMeter()
        prepared.count(meter)
        assert meter.steps > 0

    def test_metered_count_does_not_mutate_cache(self, small_colored):
        """Regression: a metered call used to overwrite the cached count.

        Instrumentation must be read-only — the cache stays empty until
        an unmetered call fills it, and a metered call in between never
        replaces the cached value.
        """
        prepared = prepare(small_colored, "B(x)")
        meter = CostMeter()
        metered = prepared.count(meter)
        assert prepared._count is None, "metered call populated the cache"
        cached = prepared.count()
        assert cached == metered
        assert prepared._count == cached
        sentinel = prepared._count
        prepared.count(CostMeter())
        assert prepared._count is sentinel, "metered call overwrote the cache"

    def test_enumerate_with_meter(self, small_colored):
        prepared = prepare(small_colored, "B(x) & R(y) & ~E(x,y)")
        meter = CostMeter()
        for _ in prepared.enumerate(meter=meter):
            meter.mark()
        assert meter.max_delta < 100

    def test_skip_mode_override(self, small_colored):
        prepared = prepare(small_colored, "B(x) & R(y) & ~E(x,y)")
        lazy = list(prepared.enumerate(skip_mode="lazy"))
        strict = list(prepared.enumerate(skip_mode="precompute"))
        assert lazy == strict


class TestIntrospection:
    def test_stats(self, small_colored):
        prepared = prepare(small_colored, "B(x) & R(y) & ~E(x,y)")
        stats = prepared.stats()
        assert stats["arity"] == 2
        assert stats["structure_size"] == small_colored.cardinality

    def test_explain_mentions_key_facts(self, small_colored):
        prepared = prepare(small_colored, "B(x) & exists z. (R(z) & ~E(x,z))")
        text = prepared.explain()
        assert "arity" in text
        assert "derived" in text
        assert "_D0" in text
