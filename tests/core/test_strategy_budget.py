"""Regression for the fuzzer flake: strategy-level unit-budget bounding.

CHANGES.md (PR 4) documented that the Hypothesis strategies can generate
formulas whose clause expansion trips the pipeline's ``max_units=16``
budget.  Unit counts are structure-dependent — localization evaluates
global content against the structure — so the bound lives on the
*(structure, formula) pair*: :func:`repro.core.pipeline.supports_query`
runs the graph-free front half of pipeline construction, and the
``supported_inputs`` strategy rejects over-budget pairs before any test
body sees them.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.pipeline import Pipeline, supports_query
from repro.errors import UnsupportedQueryError
from repro.fo.parser import parse

from strategies import MAX_UNITS_FLAKY_FORMULA, supported_inputs


@given(pair=supported_inputs(max_n=8))
@settings(
    max_examples=500,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
def test_strategy_never_emits_over_budget_pair(pair):
    """500 draws: every pair the strategy emits builds without tripping
    the max_units budget (the documented flake is dead)."""
    db, formula = pair
    Pipeline(db, formula, order=sorted(formula.free))


@given(pair=supported_inputs(max_n=8, ternary=True, max_depth=2))
@settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
def test_strategy_never_emits_over_budget_ternary_pair(pair):
    db, formula = pair
    Pipeline(db, formula, order=sorted(formula.free))


class TestSupportsQuery:
    def test_rejects_the_canonical_flaky_formula(self, small_colored):
        formula = parse(MAX_UNITS_FLAKY_FORMULA)
        assert not supports_query(
            small_colored, formula, order=sorted(formula.free)
        )

    def test_agrees_with_pipeline_on_rejection(self, small_colored):
        formula = parse(MAX_UNITS_FLAKY_FORMULA)
        with pytest.raises(UnsupportedQueryError, match="units"):
            Pipeline(small_colored, formula, order=sorted(formula.free))

    def test_accepts_a_supported_query(self, small_colored):
        formula = parse("E(x, y) & B(x)")
        assert supports_query(small_colored, formula, order=sorted(formula.free))
        Pipeline(small_colored, formula, order=sorted(formula.free))
