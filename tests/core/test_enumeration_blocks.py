"""Regression tests for the big/small block machinery.

The big/small dichotomy replaces the paper's recursive prefix
quantifier-elimination (DESIGN.md deviation #5); these tests pin its
invariants: classification, DFS small-assignment enumeration (lazy) vs
the grounded table (strict), and correctness when *every* block is small
or every block is big.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumeration import BranchEnumerator, enumerate_answers
from repro.core.pipeline import Pipeline
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.fo.syntax import Var
from repro.structures.random_gen import padded_clique, random_colored_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure

x, y, z = Var("x"), Var("y"), Var("z")


def _branch_enumerators(pipeline):
    return [
        BranchEnumerator(pipeline, branch) for branch in pipeline.branches
    ]


class TestClassification:
    def test_large_lists_are_big(self):
        """On a large sparse graph the color lists dwarf the degree."""
        db = random_colored_graph(300, max_degree=3, seed=5)
        pipeline = Pipeline(db, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y))
        split_branches = [
            enumerator
            for enumerator in _branch_enumerators(pipeline)
            if len(enumerator.branch.plan.partition) == 2
        ]
        assert split_branches
        main = max(
            split_branches, key=lambda e: min(len(l) for l in e.branch.lists)
        )
        assert main.big_blocks and not main.small_blocks

    def test_single_block_branches_have_no_blockers(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x)"), order=(x,))
        for enumerator in _branch_enumerators(pipeline):
            # One block: nothing can starve it, so it is always big.
            assert enumerator.big_blocks == [0] or not enumerator.branch.lists[0]


class TestAllSmallScenario:
    def test_dense_tiny_structure(self):
        """On a tiny dense graph every list is below the degree bound, so
        every block is small — the DFS path does all the work."""
        db = padded_clique(6, 10, colors=("B", "R"), seed=3)
        query = parse("B(x) & R(y) & ~E(x,y)")
        pipeline = Pipeline(db, query, order=(x, y))
        got = sorted(enumerate_answers(pipeline, validate=True))
        want = sorted(naive_answers(query, db, order=(x, y)))
        assert got == want

    def test_three_blocks_with_small_lists(self):
        db = random_colored_graph(
            12, max_degree=3, colors=("B", "R", "G"), seed=8
        )
        query = parse(
            "B(x) & R(y) & G(z) & ~E(x,y) & ~E(y,z) & ~E(x,z)"
        )
        pipeline = Pipeline(db, query, order=(x, y, z))
        got = sorted(enumerate_answers(pipeline, validate=True))
        want = sorted(naive_answers(query, db, order=(x, y, z)))
        assert got == want

    def test_small_dfs_equals_strict_table(self):
        db = random_colored_graph(30, max_degree=4, seed=2)
        query = parse("B(x) & R(y) & ~E(x,y)")
        pipeline = Pipeline(db, query, order=(x, y))
        for branch in pipeline.branches:
            lazy = BranchEnumerator(pipeline, branch, skip_mode="lazy")
            strict = BranchEnumerator(pipeline, branch, skip_mode="precompute")
            assert list(lazy._small_assignments()) == strict.small_table


class TestLazySmallAssignments:
    def test_lazy_mode_has_no_table(self, small_colored):
        pipeline = Pipeline(
            small_colored, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y)
        )
        for branch in pipeline.branches:
            enumerator = BranchEnumerator(pipeline, branch, skip_mode="lazy")
            assert enumerator.small_table is None

    def test_assignments_pairwise_nonadjacent(self, small_colored):
        pipeline = Pipeline(
            small_colored, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y)
        )
        for branch in pipeline.branches:
            enumerator = BranchEnumerator(pipeline, branch)
            for assignment in enumerator._small_assignments():
                for i, left in enumerate(assignment):
                    for right in assignment[i + 1 :]:
                        assert not pipeline.graph.adjacent(left, right)

    def test_empty_small_list_kills_branch(self):
        """A branch whose block list is empty yields nothing."""
        db = Structure(Signature.of(E=2, B=1, R=1), range(4))
        db.add_fact("B", 0)  # no reds at all
        pipeline = Pipeline(db, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y))
        assert list(enumerate_answers(pipeline)) == []


@given(seed=st.integers(0, 60), clique=st.integers(3, 6))
@settings(max_examples=15, deadline=None)
def test_dense_core_enumeration_property(seed, clique):
    """Padded cliques mix a dense core (small lists, DFS) with isolated
    padding (big lists) — both code paths in one structure."""
    db = padded_clique(clique, 25, colors=("B", "R"), seed=seed)
    query = parse("B(x) & R(y) & ~E(x,y)")
    pipeline = Pipeline(db, query, order=(x, y))
    got = sorted(enumerate_answers(pipeline, validate=True))
    assert got == sorted(naive_answers(query, db, order=(x, y)))
