"""Tests for position partitions (Section 4, Step 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitions import (
    all_partitions,
    assemble,
    block_subtuple,
    canonical,
    partition_of_tuple,
)


class TestAllPartitions:
    def test_bell_numbers(self):
        # Bell(k) for k = 0..5.
        for k, bell in enumerate([1, 1, 2, 5, 15, 52]):
            assert len(all_partitions(k)) == bell

    def test_canonical_form(self):
        for partition in all_partitions(4):
            mins = [block[0] for block in partition]
            assert mins == sorted(mins)
            for block in partition:
                assert list(block) == sorted(block)

    def test_partitions_cover_exactly(self):
        for partition in all_partitions(4):
            positions = [p for block in partition for p in block]
            assert sorted(positions) == list(range(4))

    def test_no_duplicates(self):
        partitions = all_partitions(4)
        assert len(set(partitions)) == len(partitions)

    def test_k_zero(self):
        assert all_partitions(0) == ((),)


class TestCanonical:
    def test_sorts_blocks_and_positions(self):
        assert canonical([[2, 0], [1]]) == ((0, 2), (1,))

    def test_idempotent(self):
        partition = canonical([[3], [0, 1], [2]])
        assert canonical(partition) == partition


class TestPartitionOfTuple:
    def test_all_far(self):
        partition = partition_of_tuple((10, 20, 30), lambda a, b: False)
        assert partition == ((0,), (1,), (2,))

    def test_all_linked(self):
        partition = partition_of_tuple((10, 20, 30), lambda a, b: True)
        assert partition == ((0, 1, 2),)

    def test_repeated_elements_grouped(self):
        partition = partition_of_tuple((5, 7, 5), lambda a, b: False)
        assert partition == ((0, 2), (1,))

    def test_transitive_chaining(self):
        # 0 linked to 1, 1 linked to 2: all three in one block even though
        # 0 and 2 are not directly linked.
        linked = lambda a, b: abs(a - b) == 1
        partition = partition_of_tuple((1, 2, 3), linked)
        assert partition == ((0, 1, 2),)

    @given(values=st.lists(st.integers(0, 5), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_result_is_a_partition(self, values):
        partition = partition_of_tuple(
            tuple(values), lambda a, b: abs(a - b) <= 1
        )
        positions = sorted(p for block in partition for p in block)
        assert positions == list(range(len(values)))
        assert partition == canonical(partition)


class TestAssemble:
    def test_roundtrip(self):
        elements = ("a", "b", "c", "b")
        partition = partition_of_tuple(elements, lambda a, b: False)
        clusters = [block_subtuple(elements, block) for block in partition]
        assert assemble(len(elements), partition, clusters) == elements

    @given(values=st.lists(st.integers(0, 9), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        elements = tuple(values)
        partition = partition_of_tuple(elements, lambda a, b: a % 3 == b % 3)
        clusters = [block_subtuple(elements, block) for block in partition]
        assert assemble(len(elements), partition, clusters) == elements
