"""Regression guard for Theorem 2.7: constant delay, independent of n.

``skip_mode="precompute"`` is the paper's strict regime — every reach set
and skip cell is materialized during preprocessing, so the work between
two consecutive outputs is a fixed number of table lookups.  The
CostMeter counts those RAM steps exactly; this test pins the per-answer
maximum across a size sweep and fails if it ever starts growing with
``n`` (which would mean delay leaked back into the enumeration phase).

Empirically the max delta plateaus at 9 steps/answer for the running
example; the absolute ceiling below leaves headroom for legitimate
instrumentation changes while still catching any O(n) regression (at
n = 512 a linear leak would show up as hundreds of steps).
"""

from __future__ import annotations

import pytest

from repro import prepare
from repro.storage.cost_model import CostMeter
from repro.structures.random_gen import random_colored_graph

SIZES = [64, 128, 256, 512]
DEGREE = 4
# Absolute per-answer step ceiling: ~4x the observed plateau.
MAX_DELAY_STEPS = 32


def max_delay(db, query: str) -> int:
    prepared = prepare(db, query, skip_mode="precompute")
    meter = CostMeter()
    produced = 0
    for _ in prepared.enumerate(meter=meter):
        meter.mark()
        produced += 1
    assert produced > 0, "sweep structure produced no answers"
    return meter.max_delta


class TestConstantDelay:
    @pytest.mark.parametrize("query", [
        "B(x) & R(y) & ~E(x,y)",   # Example 2.3 (two big blocks)
        "B(x) & R(y) & E(x,y)",    # connected pair (single-cluster branch)
    ])
    def test_delay_bounded_across_size_sweep(self, query):
        delays = [
            max_delay(random_colored_graph(n, max_degree=DEGREE, seed=17), query)
            for n in SIZES
        ]
        # Constant bound: never above the absolute ceiling.
        assert max(delays) <= MAX_DELAY_STEPS, (
            f"per-answer delay {delays} exceeds {MAX_DELAY_STEPS} steps"
        )
        # No growth with n: the largest structure may not be worse than
        # the plateau established by the smaller ones (+2 steps slack for
        # branch-boundary jitter).
        assert delays[-1] <= max(delays[:-1]) + 2, (
            f"per-answer delay grows with n: {dict(zip(SIZES, delays))}"
        )

    def test_quantified_query_delay_bounded(self):
        query = "B(x) & exists z. (R(z) & ~E(x,z))"
        delays = [
            max_delay(random_colored_graph(n, max_degree=3, seed=23), query)
            for n in SIZES[:3]
        ]
        assert max(delays) <= MAX_DELAY_STEPS
        assert delays[-1] <= max(delays[:-1]) + 2
