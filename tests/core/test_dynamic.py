"""Tests for dynamic updates (the [Vig20]-flavored extension).

Oracle discipline: after every update, enumeration / counting / testing
must agree with naive evaluation of the query on the mutated structure.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicQuery
from repro.core.enumeration import enumerate_answers
from repro.errors import UnsupportedQueryError
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.fo.syntax import Var
from repro.structures.random_gen import random_colored_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure

x, y = Var("x"), Var("y")

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


def _assert_consistent(dyn, query, order):
    got = sorted(dyn.enumerate())
    want = sorted(naive_answers(query, dyn.structure, order=order))
    assert got == want
    assert dyn.count() == len(want)
    want_set = set(want)
    for probe in list(want)[:5]:
        assert dyn.test(probe)
    domain = list(dyn.structure.domain)
    for probe in [(domain[0], domain[-1]), (domain[1], domain[1])]:
        assert dyn.test(probe) == (probe in want_set)


@pytest.fixture
def dyn_pair(small_colored):
    query = parse(EXAMPLE)
    db = small_colored.copy()
    return DynamicQuery(db, query, order=(x, y)), query


class TestSingleUpdates:
    def test_insert_edge_removes_answer(self, dyn_pair):
        dyn, query = dyn_pair
        answers = dyn.answers()
        assert answers
        blue, red = answers[0]
        if blue != red:
            dyn.insert_fact("E", blue, red)
            assert not dyn.test((blue, red))
            _assert_consistent(dyn, query, (x, y))

    def test_delete_edge_adds_answer(self, dyn_pair):
        dyn, query = dyn_pair
        # Find a blue-red edge to delete.
        edge = None
        for u, v in dyn.structure.facts("E"):
            if dyn.structure.has_fact("B", u) and dyn.structure.has_fact("R", v):
                edge = (u, v)
                break
        if edge is None:
            pytest.skip("no blue-red edge in this structure")
        before = dyn.count()
        dyn.delete_fact("E", *edge)
        _assert_consistent(dyn, query, (x, y))
        if not dyn.structure.has_fact("E", edge[1], edge[0]):
            assert dyn.test(edge)
            assert dyn.count() == before + 1

    def test_insert_color(self, dyn_pair):
        dyn, query = dyn_pair
        uncolored = next(
            e for e in dyn.structure.domain if not dyn.structure.has_fact("B", e)
        )
        dyn.insert_fact("B", uncolored)
        _assert_consistent(dyn, query, (x, y))

    def test_delete_color(self, dyn_pair):
        dyn, query = dyn_pair
        blue = next(fact[0] for fact in dyn.structure.facts("B"))
        dyn.delete_fact("B", blue)
        _assert_consistent(dyn, query, (x, y))

    def test_idempotent_insert(self, dyn_pair):
        dyn, query = dyn_pair
        fact = next(iter(dyn.structure.facts("E")))
        before = dyn.updates_applied
        dyn.insert_fact("E", *fact)  # already present: no refresh
        assert dyn.updates_applied == before

    def test_idempotent_delete(self, dyn_pair):
        dyn, _ = dyn_pair
        before = dyn.updates_applied
        dyn.delete_fact("E", dyn.structure.domain[0], dyn.structure.domain[0])
        assert dyn.updates_applied == before


class TestUpdateSequences:
    @pytest.mark.parametrize(
        "query_text",
        [
            EXAMPLE,
            "B(x) & R(y) & E(x,y)",
            "dist(x,y) <= 2 & B(x)",
            "exists z in N1(x). R(z)",
        ],
    )
    def test_random_walk_stays_consistent(self, query_text, small_colored):
        query = parse(query_text)
        order = sorted(query.free)
        dyn = DynamicQuery(small_colored.copy(), query, order=order)
        rng = random.Random(7)
        domain = list(dyn.structure.domain)
        for _ in range(15):
            a, b = rng.choice(domain), rng.choice(domain)
            roll = rng.random()
            if roll < 0.4:
                dyn.insert_fact("E", a, b)
            elif roll < 0.7:
                dyn.delete_fact("E", a, b)
            elif roll < 0.85:
                dyn.insert_fact("B", a)
            else:
                dyn.delete_fact("R", a)
        got = sorted(dyn.enumerate())
        want = sorted(naive_answers(query, dyn.structure, order=order))
        assert got == want

    def test_build_graph_from_empty(self):
        """Grow a graph edge by edge; the maintained state tracks it."""
        db = Structure(Signature.of(E=2, B=1, R=1), range(8))
        for u in range(0, 8, 2):
            db.add_fact("B", u)
        for u in range(1, 8, 2):
            db.add_fact("R", u)
        query = parse(EXAMPLE)
        dyn = DynamicQuery(db, query, order=(x, y))
        assert dyn.count() == 16  # all blue-red pairs, nothing connected
        for u in range(0, 8, 2):
            dyn.insert_fact("E", u, u + 1)
        _assert_consistent(dyn, query, (x, y))
        assert dyn.count() == 12

    def test_tear_down_to_empty(self, dyn_pair):
        dyn, query = dyn_pair
        for fact in list(dyn.structure.facts("E")):
            dyn.delete_fact("E", *fact)
        # Without edges, every blue-red pair is an answer.
        blues = len(dyn.structure.facts("B"))
        reds = len(dyn.structure.facts("R"))
        assert dyn.count() == blues * reds


class TestSupportGuard:
    def test_rejects_derived_predicates(self, small_colored):
        with pytest.raises(UnsupportedQueryError):
            DynamicQuery(
                small_colored.copy(),
                parse("B(x) & exists z. (R(z) & ~E(x,z))"),
                order=(x,),
            )

    def test_accepts_relativized_quantifiers(self, small_colored):
        DynamicQuery(
            small_colored.copy(), parse("exists z in N2(x). R(z)"), order=(x,)
        )

    def test_refresh_radius_is_query_dependent(self, dyn_pair):
        dyn, _ = dyn_pair
        assert dyn.refresh_radius >= dyn.pipeline.link_radius


class TestBatchMaintenance:
    """PipelineMaintainer.apply_batch: one refresh pass for a whole
    changeset, with no-ops and cancelling pairs netted out."""

    def test_batch_is_one_pass_and_oracle_exact(self, small_colored):
        from repro.core.dynamic import PipelineMaintainer
        from repro.core.pipeline import Pipeline

        db = small_colored.copy()
        query = parse(EXAMPLE)
        pipeline = Pipeline(db, query, order=(x, y))
        maintainer = PipelineMaintainer(pipeline)
        domain = list(db.domain)
        existing = next(iter(db.facts("E")))
        ops = [
            (True, "E", (domain[0], domain[-1])),
            (False, "E", existing),
            (True, "E", existing),            # cancels the remove
            (True, "B", (domain[1],)),
        ]
        before = maintainer.updates_applied
        effective = maintainer.apply_batch(ops)
        assert maintainer.updates_applied == before + 1, "one pass, not four"
        assert 0 < effective <= 2
        got = sorted(enumerate_answers(pipeline))
        want = sorted(naive_answers(query, db, order=(x, y)))
        assert got == want

    def test_all_noops_skip_the_refresh(self, small_colored):
        from repro.core.dynamic import PipelineMaintainer
        from repro.core.pipeline import Pipeline

        db = small_colored.copy()
        pipeline = Pipeline(db, parse(EXAMPLE), order=(x, y))
        maintainer = PipelineMaintainer(pipeline)
        existing = next(iter(db.facts("E")))
        assert maintainer.apply_batch([(True, "E", existing)]) == 0
        assert maintainer.updates_applied == 0

    @given(seed=st.integers(0, 30), update_seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_batch_oracle_property(self, seed, update_seed):
        from repro.core.dynamic import PipelineMaintainer
        from repro.core.pipeline import Pipeline

        db = random_colored_graph(12, max_degree=3, seed=seed).copy()
        query = parse(EXAMPLE)
        pipeline = Pipeline(db, query, order=(x, y))
        maintainer = PipelineMaintainer(pipeline)
        rng = random.Random(update_seed)
        domain = list(db.domain)
        ops = []
        for _ in range(8):
            a, b = rng.choice(domain), rng.choice(domain)
            ops.append((rng.random() < 0.5, "E", (a, b)))
        maintainer.apply_batch(ops)
        assert maintainer.updates_applied <= 1
        got = sorted(enumerate_answers(pipeline))
        want = sorted(naive_answers(query, db, order=(x, y)))
        assert got == want


@given(seed=st.integers(0, 30), update_seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_dynamic_oracle_property(seed, update_seed):
    db = random_colored_graph(12, max_degree=3, seed=seed)
    query = parse(EXAMPLE)
    dyn = DynamicQuery(db.copy(), query, order=(x, y))
    rng = random.Random(update_seed)
    domain = list(dyn.structure.domain)
    for _ in range(8):
        a, b = rng.choice(domain), rng.choice(domain)
        if rng.random() < 0.5:
            dyn.insert_fact("E", a, b)
        else:
            dyn.delete_fact("E", a, b)
    got = sorted(dyn.enumerate())
    want = sorted(naive_answers(query, dyn.structure, order=(x, y)))
    assert got == want
