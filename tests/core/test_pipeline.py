"""Tests for the quantifier-elimination pipeline (Proposition 3.4)."""

import pytest

from repro.core.pipeline import Pipeline
from repro.errors import QueryError
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers, naive_test
from repro.fo.syntax import Var
from repro.structures.random_gen import random_colored_graph

x, y = Var("x"), Var("y")


@pytest.fixture
def example_pipeline(small_colored):
    return Pipeline(small_colored, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y))


class TestConstruction:
    def test_stats_shape(self, example_pipeline):
        stats = example_pipeline.stats()
        assert stats["arity"] == 2
        assert stats["radius"] == 0
        assert stats["link_radius"] == 1
        assert stats["partitions"] == 2  # Bell(2)
        assert stats["graph_nodes"] > 0

    def test_branches_nonempty_for_example(self, example_pipeline):
        assert example_pipeline.branches

    def test_trivial_true(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x) | ~B(x)"), order=(x,))
        assert pipeline.trivial is True

    def test_trivial_false(self, small_colored):
        pipeline = Pipeline(small_colored, parse("B(x) & ~B(x)"), order=(x,))
        assert pipeline.trivial is False

    def test_sentence_collapses(self, small_colored):
        pipeline = Pipeline(small_colored, parse("exists x. B(x)"))
        assert pipeline.trivial in (True, False)
        assert pipeline.arity == 0

    def test_branches_are_exclusive_per_answer(self, small_colored):
        """Every naive answer is covered by exactly one branch."""
        pipeline = Pipeline(
            small_colored, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y)
        )
        query = parse("B(x) & R(y) & ~E(x,y)")
        for answer in naive_answers(query, small_colored, order=(x, y)):
            plan_index, node_ids = pipeline.encode(answer)
            matching = 0
            for branch in pipeline.branches:
                if branch.plan.index != plan_index:
                    continue
                if all(
                    node_id in branch.lists[j]
                    for j, node_id in enumerate(node_ids)
                ):
                    matching += 1
            assert matching == 1


class TestEncoder:
    def test_roundtrip(self, example_pipeline, small_colored):
        domain = list(small_colored.domain)
        for candidate in [(domain[0], domain[1]), (domain[2], domain[2])]:
            plan_index, node_ids = example_pipeline.encode(candidate)
            assert example_pipeline.decode(plan_index, node_ids) == candidate

    def test_close_pair_single_block(self, example_pipeline, small_colored):
        # A pair (a, a) is always one cluster.
        element = small_colored.domain[0]
        plan_index, node_ids = example_pipeline.encode((element, element))
        partition = example_pipeline.plans[plan_index].partition
        assert partition == ((0, 1),)
        assert len(node_ids) == 1

    def test_far_pair_two_blocks(self, example_pipeline, small_colored):
        # Find a pair at distance > 1.
        domain = list(small_colored.domain)
        far_pair = None
        for a in domain:
            for b in domain:
                if b not in small_colored.neighbors(a) and a != b:
                    far_pair = (a, b)
                    break
            if far_pair:
                break
        assert far_pair is not None
        plan_index, node_ids = example_pipeline.encode(far_pair)
        assert example_pipeline.plans[plan_index].partition == ((0,), (1,))
        assert len(node_ids) == 2

    def test_arity_mismatch(self, example_pipeline):
        with pytest.raises(QueryError):
            example_pipeline.encode((0,))

    def test_unknown_element(self, example_pipeline):
        with pytest.raises(QueryError):
            example_pipeline.encode(("nope", "nope"))


class TestUnitVectors:
    def test_unit_vectors_respect_oracle(self, small_colored):
        """The stored color of a singleton node matches direct evaluation."""
        pipeline = Pipeline(
            small_colored, parse("B(x) & R(y) & ~E(x,y)"), order=(x, y)
        )
        split_plan = next(
            plan
            for plan in pipeline.plans
            if plan.partition == ((0,), (1,))
        )
        assert pipeline.graph is not None
        for node in pipeline.graph.nodes[1:]:
            if node.positions != (0,):
                continue
            vector = node.unit_values.get(split_plan.index)
            if vector is None:
                continue
            for unit_index, value in zip(split_plan.block_units[0], vector):
                unit = split_plan.units[unit_index]
                expected = naive_test(
                    unit, small_colored, node.elements, order=(x,)
                )
                assert value == expected
