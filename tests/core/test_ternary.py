"""Integration tests over a non-binary signature (T/3).

Proposition 3.4's reduction must handle arbitrary arities: ternary facts
induce Gaifman cliques, and cluster tuples/colors are evaluated against
the original (non-graph) structure.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import prepare
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.structures.random_gen import random_structure
from repro.structures.signature import Signature


QUERIES = [
    "T(x,y,z)",
    "T(x,y,z) & B(x)",
    "B(x) & ~B(y) & ~T(x,x,y)",
    "exists u. T(x,u,y)",
    "B(x) & B(y) & dist(x,y) > 2",
]


def assert_matches(db, text):
    query = parse(text)
    order = sorted(query.free)
    prepared = prepare(db, query, order=order)
    got = sorted(prepared.enumerate(validate=True))
    want = sorted(naive_answers(query, db, order=order))
    assert got == want
    assert prepared.count() == len(want)


class TestTernary:
    @pytest.fixture
    def db(self):
        return random_structure(Signature.of(T=3, B=1), 14, max_degree=4, seed=6)

    @pytest.mark.parametrize("text", QUERIES)
    def test_corpus(self, db, text):
        assert_matches(db, text)

    def test_testing_on_ternary(self, db):
        query = parse("T(x,y,z)")
        prepared = prepare(db, query, order=sorted(query.free))
        for fact in list(db.facts("T"))[:10]:
            assert prepared.test(fact)

    def test_gaifman_cliques_link_clusters(self, db):
        """Components of one T-fact always share a cluster."""
        query = parse("B(x) & ~B(y)")
        prepared = prepare(db, query, order=sorted(query.free))
        for fact in db.facts("T"):
            a, b = fact[0], fact[1]
            if a == b:
                continue
            plan_index, node_ids = prepared.pipeline.encode((a, b))
            partition = prepared.pipeline.plans[plan_index].partition
            assert partition == ((0, 1),)


@given(seed=st.integers(0, 40))
@settings(max_examples=12, deadline=None)
def test_ternary_property(seed):
    db = random_structure(Signature.of(T=3, B=1), 12, max_degree=4, seed=seed)
    assert_matches(db, "T(x,y,z) & B(x)")


@given(seed=st.integers(0, 40))
@settings(max_examples=12, deadline=None)
def test_mixed_arity_property(seed):
    db = random_structure(
        Signature.of(T=3, E=2, B=1), 12, max_degree=4, seed=seed
    )
    assert_matches(db, "E(x,y) & ~B(x) & exists u. T(x,u,y)")
