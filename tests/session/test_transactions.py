"""Transactional batch updates: atomicity, validation, rollback, and the
one-maintenance-pass-per-plan cost contract.

Oracle discipline: after every commit, session answers must equal naive
evaluation on the mutated structure; a rolled-back transaction must leave
structure, cache, and fingerprint untouched.
"""

from __future__ import annotations

import pytest

from repro.errors import SignatureError, TransactionError
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.session import Changeset, Database, load_changeset_jsonl
from repro.structures.random_gen import random_colored_graph

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


def oracle(structure, text=EXAMPLE):
    formula = parse(text)
    return sorted(naive_answers(formula, structure, order=sorted(formula.free)))


@pytest.fixture
def structure():
    return random_colored_graph(24, max_degree=3, seed=7).copy()


def missing_unary(structure, relation="B"):
    return next(
        e for e in structure.domain if not structure.has_fact(relation, e)
    )


class TestTransactionBasics:
    def test_commit_on_clean_exit(self, structure):
        with Database(structure) as db:
            q = db.query(EXAMPLE)
            q.count()
            new_blue = missing_unary(structure)
            with db.transaction() as tx:
                tx.insert_fact("B", new_blue)
                assert not structure.has_fact("B", new_blue), "buffered, not applied"
            assert structure.has_fact("B", new_blue)
            assert tx.result is not None and tx.result.changed
            assert sorted(q.answers().all()) == oracle(structure)

    def test_exception_rolls_back(self, structure):
        with Database(structure) as db:
            before_version = db.version
            before_fp = db.structure_fingerprint
            with pytest.raises(RuntimeError):
                with db.transaction() as tx:
                    tx.insert_fact("B", missing_unary(structure))
                    raise RuntimeError("boom")
            assert db.version == before_version
            assert db.structure_fingerprint == before_fp
            assert tx.result is None
            assert not tx.active

    def test_finished_transaction_rejects_use(self, structure):
        with Database(structure) as db:
            tx = db.transaction()
            tx.insert_fact("B", missing_unary(structure))
            tx.commit()
            with pytest.raises(TransactionError):
                tx.insert_fact("B", 0)
            with pytest.raises(TransactionError):
                tx.commit()

    def test_explicit_commit_then_clean_exit_commits_once(self, structure):
        with Database(structure) as db:
            new_blue = missing_unary(structure)
            with db.transaction() as tx:
                tx.insert_fact("B", new_blue)
                result = tx.commit()
            assert tx.result is result
            assert result.ops_effective == 1

    def test_rollback_discards(self, structure):
        with Database(structure) as db:
            before = db.version
            tx = db.transaction()
            tx.insert_fact("B", missing_unary(structure))
            tx.rollback()
            assert db.version == before

    def test_insert_many_and_remove_many(self, structure):
        with Database(structure) as db:
            free = [
                e for e in structure.domain if not structure.has_fact("B", e)
            ][:3]
            with db.transaction() as tx:
                tx.insert_many("B", [(e,) for e in free])
            assert all(structure.has_fact("B", e) for e in free)
            with db.transaction() as tx:
                tx.remove_many("B", [(e,) for e in free])
            assert not any(structure.has_fact("B", e) for e in free)


class TestValidation:
    def test_arity_checked_at_buffer_time(self, structure):
        with Database(structure) as db:
            with pytest.raises(RuntimeError):
                with db.transaction() as tx:
                    with pytest.raises(SignatureError):
                        tx.insert_fact("E", 0)
                    raise RuntimeError("abort cleanly")

    def test_unknown_relation_at_buffer_time(self, structure):
        with Database(structure) as db:
            tx = db.transaction()
            with pytest.raises(SignatureError):
                tx.insert_fact("Z", 0)
            tx.rollback()

    def test_domain_checked_at_buffer_time(self, structure):
        with Database(structure) as db:
            tx = db.transaction()
            with pytest.raises(ValueError):
                tx.insert_fact("B", object())
            tx.rollback()

    def test_apply_validates_before_mutating(self, structure):
        with Database(structure) as db:
            before = db.version
            # Second op is invalid: the whole changeset must be refused
            # with the first op NOT applied.
            with pytest.raises(SignatureError):
                db.apply(
                    [
                        ("insert", "B", (missing_unary(structure),)),
                        ("insert", "E", (0,)),
                    ]
                )
            assert db.version == before

    def test_remove_of_out_of_domain_element_is_a_noop(self, structure):
        # The legacy remove_fact contract: removing a fact that cannot
        # exist (unknown element) returns False, it does not raise.
        with Database(structure) as db:
            assert db.remove_fact("B", "no-such-element") is False
            result = db.apply([("remove", "E", ("ghost", "ghost"))])
            assert not result.changed
            with db.transaction() as tx:
                tx.remove_fact("B", "still-not-there")
            assert not tx.result.changed

    def test_malformed_ops_rejected(self, structure):
        with Database(structure) as db:
            with pytest.raises(TransactionError):
                db.apply([("frobnicate", "B", (0,))])
            with pytest.raises(TransactionError):
                db.apply(["not an op"])


class TestCommitSemantics:
    def test_noop_changeset_reports_unchanged(self, structure):
        with Database(structure) as db:
            existing = next(iter(structure.facts("E")))
            result = db.apply(
                [
                    ("insert", "E", existing),          # already present
                    ("remove", "B", (missing_unary(structure),)),  # absent
                ]
            )
            assert not result.changed
            assert result.ops_submitted == 2
            assert result.ops_effective == 0
            assert result.version_before == result.version_after

    def test_remove_then_reinsert_cancels(self, structure):
        with Database(structure) as db:
            edge = next(iter(structure.facts("E")))
            before_fp = db.structure_fingerprint
            result = db.apply(
                [("remove", "E", edge), ("insert", "E", edge)]
            )
            assert result.ops_effective == 0
            assert db.structure_fingerprint == before_fp

    def test_batch_is_one_maintenance_pass_per_plan(self, structure):
        with Database(structure) as db:
            q = db.query(EXAMPLE)
            q.count()  # plan cached + maintained
            maintainers = list(db._maintainers.values())
            assert maintainers, "example plan should be maintainable"
            before = maintainers[0].updates_applied
            free = [
                e for e in structure.domain if not structure.has_fact("B", e)
            ][:4]
            db.apply([("insert", "B", (e,)) for e in free])
            assert maintainers[0].updates_applied == before + 1, (
                "a batch commit must cost ONE local-recomputation pass, "
                "not one per fact"
            )
            assert sorted(q.answers().all()) == oracle(structure)

    def test_batch_equals_singles_on_answers(self, structure):
        other = structure.copy()
        edge = next(iter(structure.facts("E")))
        free = [e for e in structure.domain if not structure.has_fact("B", e)]
        ops = [
            ("insert", "B", (free[0],)),
            ("remove", "E", edge),
            ("insert", "B", (free[1],)),
        ]
        with Database(structure) as batch_db, Database(other) as single_db:
            batch_q = batch_db.query(EXAMPLE)
            single_q = single_db.query(EXAMPLE)
            batch_db.apply(ops)
            for insert, relation, elements in ops:
                if insert:
                    single_db.insert_fact(relation, *elements)
                else:
                    single_db.remove_fact(relation, *elements)
            # Node ids (and with them the enumeration order) depend on
            # the maintenance history; the answer SET, count, and
            # verdicts are the contract — same as maintained-vs-rebuilt.
            batch_answers = sorted(batch_q.answers().all())
            assert batch_answers == sorted(single_q.answers().all())
            assert batch_answers == oracle(structure)
            assert batch_q.count() == single_q.count()

    def test_fingerprint_rolls_once_per_commit(self, structure):
        with Database(structure) as db:
            fp_before = db.structure_fingerprint
            free = [
                e for e in structure.domain if not structure.has_fact("R", e)
            ][:3]
            db.apply([("insert", "R", (e,)) for e in free])
            fp_after = db.structure_fingerprint
            assert fp_after != fp_before
            from repro.structures.serialize import fingerprint_full

            assert fp_after == fingerprint_full(db.structure)

    def test_cache_rekeyed_not_dropped(self, structure):
        with Database(structure) as db:
            q = db.query(EXAMPLE)
            q.count()
            hits_before = db.stats()["hits"]
            db.apply([("insert", "B", (missing_unary(structure),))])
            q.count()  # must re-resolve via a cache hit (maintained plan)
            assert db.stats()["hits"] > hits_before
            assert db.stats()["maintained_plans"] == 1


class TestChangeset:
    def test_standalone_changeset_applies(self, structure):
        with Database(structure) as db:
            changeset = Changeset(structure=structure)
            changeset.insert_fact("B", missing_unary(structure))
            result = db.apply(changeset)
            assert result.ops_effective == 1

    def test_jsonl_round_trip(self, structure):
        lines = [
            "# a comment",
            '{"op": "insert", "relation": "B", "elements": [0]}',
            "",
            '{"op": "remove", "relation": "E", "elements": [0, 1]}',
        ]
        changeset = load_changeset_jsonl(lines, structure=structure)
        assert changeset.ops == (
            (True, "B", (0,)),
            (False, "E", (0, 1)),
        )

    def test_jsonl_errors_carry_line_numbers(self, structure):
        with pytest.raises(TransactionError, match="line 2"):
            load_changeset_jsonl(
                ['{"op": "insert", "relation": "B", "elements": [0]}', "{bad"],
                structure=structure,
            )
        with pytest.raises(TransactionError, match="line 1"):
            load_changeset_jsonl(['{"op": "insert"}'], structure=structure)

    def test_jsonl_accepts_byte_lines(self, structure):
        # The serve tier feeds raw request-body splits: bytes, not str.
        lines = [
            b'{"op": "insert", "relation": "B", "elements": [0]}',
            bytearray(b'{"op": "remove", "relation": "E", "elements": [0, 1]}'),
            memoryview(b"# comment"),
        ]
        changeset = load_changeset_jsonl(lines, structure=structure)
        assert changeset.ops == (
            (True, "B", (0,)),
            (False, "E", (0, 1)),
        )

    def test_jsonl_rejects_non_utf8_bytes(self, structure):
        with pytest.raises(TransactionError, match="line 2.*UTF-8"):
            load_changeset_jsonl(
                [
                    b'{"op": "insert", "relation": "B", "elements": [0]}',
                    b"\xff\xfe{}",
                ],
                structure=structure,
            )

    @pytest.mark.parametrize(
        "oversized",
        [
            b'{"op": "insert", "relation": "B", "elements": [0],'
            b' "pad": "' + b"x" * 100 + b'"}',
            '{"op": "insert", "relation": "B", "elements": [0],'
            ' "pad": "' + "x" * 100 + '"}',
        ],
        ids=["bytes", "str"],
    )
    def test_jsonl_rejects_oversized_records(self, structure, oversized):
        good = '{"op": "insert", "relation": "B", "elements": [0]}'
        with pytest.raises(TransactionError, match="line 2.*limit 64"):
            load_changeset_jsonl(
                [good, oversized], structure=structure, max_record_bytes=64
            )
        # Within the limit, the same shapes load fine.
        loaded = load_changeset_jsonl(
            [good], structure=structure, max_record_bytes=64
        )
        assert loaded.ops == ((True, "B", (0,)),)

    def test_jsonl_no_limit_by_default(self, structure):
        big = (
            '{"op": "insert", "relation": "B", "elements": [0],'
            ' "pad": "' + "x" * 5000 + '"}'
        )
        assert load_changeset_jsonl([big], structure=structure).ops == (
            (True, "B", (0,)),
        )
