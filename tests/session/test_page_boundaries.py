"""Boundary contract of ``Answers.page`` — sealed vs unsealed parity.

A sealed handle (exhausted, pin released, self-contained) and an
unsealed one must raise/return *identically* on every boundary input:
negative index, ``size=0``, a page past the end, and any access after
``cancel()``.  Liveness outranks argument validation — a cancelled
handle raises :class:`CancelledResultError` even for malformed page
arguments, never :class:`EngineError`.
"""

from __future__ import annotations

import pytest

from repro.errors import CancelledResultError, EngineError
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


@pytest.fixture
def db():
    with Database(random_colored_graph(20, max_degree=3, seed=7)) as session:
        yield session


def fresh_handle(db):
    """An unsealed handle: no answers pulled yet."""
    return db.query(EXAMPLE).answers()


def sealed_handle(db):
    """A sealed handle: fully consumed, pin released."""
    handle = db.query(EXAMPLE).answers()
    handle.all()
    assert not handle.pinned
    return handle


@pytest.fixture(params=["unsealed", "sealed"])
def handle(request, db):
    if request.param == "unsealed":
        return fresh_handle(db)
    return sealed_handle(db)


class TestBoundaryParity:
    def test_negative_index_raises_engine_error(self, handle):
        with pytest.raises(EngineError, match="bad page request"):
            handle.page(-1, size=5)

    def test_zero_size_raises_engine_error(self, handle):
        with pytest.raises(EngineError, match="bad page request"):
            handle.page(0, size=0)

    def test_negative_size_raises_engine_error(self, handle):
        with pytest.raises(EngineError, match="bad page request"):
            handle.page(0, size=-3)

    def test_page_past_end_returns_empty(self, handle):
        total = len(handle.all())
        size = 5
        beyond = total // size + 1
        assert handle.page(beyond, size=size) == []
        assert handle.page(beyond + 100, size=size) == []

    def test_last_partial_page(self, handle):
        everything = handle.all()
        size = max(1, len(everything) - 1)
        assert handle.page(1, size=size) == everything[size:]

    def test_page_after_cancel_raises_cancelled(self, handle):
        handle.cancel()
        with pytest.raises(CancelledResultError):
            handle.page(0, size=5)

    def test_bad_arguments_after_cancel_still_raise_cancelled(self, handle):
        # The divergence this suite pins down: liveness is checked
        # before argument validation, so a cancelled handle never leaks
        # an EngineError for (-1, 0)-style requests.
        handle.cancel()
        with pytest.raises(CancelledResultError):
            handle.page(-1, size=5)
        with pytest.raises(CancelledResultError):
            handle.page(0, size=0)


class TestAsyncParity:
    def test_async_page_matches_sync_contract(self, db):
        import asyncio

        async def scenario():
            handle = db.query(EXAMPLE).answers()
            handle.cancel()
            with pytest.raises(CancelledResultError):
                await handle.apage(-1, size=5)

        asyncio.run(scenario())
