"""Tests for the unified session API (`repro.session`)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.counting import count_answers
from repro.errors import (
    CancelledResultError,
    EngineError,
    QueryError,
    StaleResultError,
)
from repro.fo import parse
from repro.fo.semantics import naive_answers, naive_count
from repro.fo.syntax import Var
from repro.session import Answers, Database, Query, QueryPlan, resolve_backend
from repro.structures.random_gen import random_colored_graph

EXAMPLE = "B(x) & R(y) & ~E(x,y)"
x, y = Var("x"), Var("y")


@pytest.fixture
def structure():
    return random_colored_graph(24, max_degree=3, seed=7)


@pytest.fixture
def db(structure):
    with Database(structure) as session:
        yield session


def oracle(structure, text=EXAMPLE):
    formula = parse(text)
    return sorted(naive_answers(formula, structure, order=sorted(formula.free)))


def missing_unary(structure, relation="B"):
    return next(
        element
        for element in structure.domain
        if not structure.has_fact(relation, element)
    )


class TestQueryBasics:
    def test_three_operations(self, db, structure):
        q = db.query(EXAMPLE)
        want = oracle(structure)
        assert sorted(q.answers().all()) == want
        assert q.count() == len(want)
        present = want[0] if want else (0, 1)
        assert q.test(present) == (present in set(want))

    def test_accepts_formula_and_text(self, db):
        from_text = db.query(EXAMPLE)
        from_formula = db.query(parse(EXAMPLE))
        assert from_text.answers().all() == from_formula.answers().all()
        # Equal queries share one cached pipeline.
        assert from_text.pipeline is from_formula.pipeline

    def test_rejects_non_queries(self, db):
        with pytest.raises(QueryError):
            db.query(42)

    def test_query_iteration_shorthand(self, db):
        q = db.query(EXAMPLE)
        assert list(q) == q.answers().all()

    def test_count_is_exact(self, db, structure):
        for text in [EXAMPLE, "B(x)", "B(x) & R(y) & E(x,y)"]:
            q = db.query(text)
            formula = parse(text)
            assert q.count() == naive_count(formula, structure)
            assert q.count() == count_answers(q.pipeline)

    def test_convenience_count_and_test(self, db, structure):
        want = oracle(structure)
        assert db.count(EXAMPLE) == len(want)
        if want:
            assert db.test(EXAMPLE, want[0])


class TestBackends:
    @pytest.mark.parametrize("backend", ["serial", "thread", "auto"])
    def test_forced_backends_agree(self, db, structure, backend):
        answers = db.query(EXAMPLE, backend=backend).answers()
        assert sorted(answers.all()) == oracle(structure)

    def test_backend_order_is_byte_identical(self, db):
        serial = db.query(EXAMPLE, backend="serial").answers().all()
        threaded = db.query(EXAMPLE, backend="thread", workers=3).answers().all()
        assert serial == threaded

    def test_unknown_backend_rejected(self, db):
        with pytest.raises(EngineError):
            db.query(EXAMPLE, backend="quantum")

    def test_custom_backend_object(self, db, structure):
        class Recorder:
            name = "recorder"

            def __init__(self):
                self.ran = 0

            def run(self, plan):
                self.ran += 1
                from repro.session.backends import SERIAL

                plan.used_mode = self.name
                return SERIAL.run(plan)

            def count(self, plan):
                from repro.session.backends import SERIAL

                return SERIAL.count(plan)

        recorder = Recorder()
        q = db.query(EXAMPLE, backend=recorder)
        assert sorted(q.answers().all()) == oracle(structure)
        assert recorder.ran == 1
        assert resolve_backend(recorder) is recorder


class TestExplain:
    def test_plan_shape(self, db):
        plan = db.query(EXAMPLE).explain()
        assert isinstance(plan, QueryPlan)
        assert plan.branch_count >= 1
        assert plan.backend in ("serial", "thread", "process")
        assert plan.backend_requested == "auto"
        assert len(plan.branch_costs) == plan.branch_count
        assert plan.total_cost == sum(plan.branch_costs)
        assert plan.cached and plan.maintained
        assert "backend:" in plan.describe()

    def test_explain_reports_backend_actually_used(self, db):
        for backend in ("serial", "thread"):
            q = db.query(EXAMPLE, backend=backend, workers=2)
            answers = q.answers()
            answers.all()
            assert q.explain().backend == backend == answers.backend_used

    def test_auto_explain_matches_execution(self, db):
        q = db.query(EXAMPLE)
        plan = q.explain()
        answers = q.answers()
        answers.all()
        assert answers.backend_used == plan.backend
        assert q.count() >= 0
        # count backend resolution is deterministic too
        assert plan.count_backend in ("serial", "thread", "process")

    def test_forced_thread_plan_has_shards(self, db):
        plan = db.query(EXAMPLE, backend="thread", workers=2).explain()
        assert plan.backend == "thread"
        assert plan.shards, "parallel plans report their shard layout"

    def test_runtime_absent_until_chunks_move(self, db):
        q = db.query(EXAMPLE, backend="serial")
        q.answers().all()
        plan = q.explain()
        # Serial execution is zero-copy: nothing crossed a transport,
        # so there is no observed layout to report.
        assert plan.runtime is None
        assert "runtime:" not in plan.describe()

    def test_runtime_describe_renders_per_source_streaming(self, db):
        from dataclasses import replace

        runtime = {
            "chunks": 2,
            "bytes_received": 64,
            "rows": 10,
            "sources": {
                # First chunk before the unit finished: true streaming.
                "b0[0:]": {
                    "chunks": 1, "bytes": 32, "rows": 5,
                    "first_at": 1.0, "last_at": 1.5, "done_at": 2.0,
                },
                # Everything arrived after the unit was done.
                "b1[0:]": {
                    "chunks": 1, "bytes": 32, "rows": 5,
                    "first_at": 3.0, "last_at": 3.0, "done_at": 2.5,
                },
            },
        }
        plan = replace(db.query(EXAMPLE).explain(), runtime=runtime)
        text = plan.describe()
        assert "runtime: 2 chunk(s), 64 bytes, 10 rows received" in text
        assert "b0[0:]: chunks=1, bytes=32, rows=5, streamed=yes" in text
        assert "b1[0:]: chunks=1, bytes=32, rows=5, streamed=no" in text

    def test_process_run_reports_observed_runtime(self, db):
        q = db.query(EXAMPLE, backend="process", workers=2)
        answers = q.answers()
        rows = answers.all()
        plan = q.explain()
        assert plan.runtime is not None
        assert plan.runtime["rows"] == len(rows)
        assert plan.runtime["backend_used"] == "process"
        assert "runtime:" in plan.describe()


class TestAnswersHandle:
    def test_paging_matches_serial_order(self, db):
        q = db.query(EXAMPLE)
        full = q.answers().all()
        paged = q.answers()
        pages = []
        index = 0
        while True:
            page = paged.page(index, size=3)
            if not page:
                break
            pages.extend(page)
            index += 1
        assert pages == full

    def test_stream_and_iter(self, db):
        q = db.query(EXAMPLE)
        assert list(q.answers().stream()) == list(iter(q.answers()))

    def test_cancel_blocks_every_access(self, db):
        answers = db.query(EXAMPLE).answers()
        answers.page(0, size=2)
        answers.cancel()
        assert answers.cancelled
        for access in (
            lambda: answers.all(),
            lambda: answers.page(0),
            lambda: answers.count(),
            lambda: answers.test((0, 1)),
        ):
            with pytest.raises(CancelledResultError):
                access()

    def test_bad_page_rejected(self, db):
        answers = db.query(EXAMPLE).answers()
        with pytest.raises(EngineError):
            answers.page(-1)
        with pytest.raises(EngineError):
            answers.page(0, size=0)

    def test_async_and_sync_same_object(self, db):
        answers = db.query(EXAMPLE).answers()
        sync_all = answers.all()

        async def main():
            fresh = db.query(EXAMPLE).answers()
            async_all = await fresh.aall()
            count = await fresh.acount()
            streamed = [a async for a in fresh]
            return async_all, count, streamed

        async_all, count, streamed = asyncio.run(main())
        assert async_all == sync_all == streamed
        assert count == len(sync_all)

    def test_async_cancel(self, db):
        async def main():
            answers = db.query(EXAMPLE).answers()
            await answers.apage(0, size=2)
            await answers.acancel()
            assert answers.cancelled
            with pytest.raises(CancelledResultError):
                await answers.aall()

        asyncio.run(main())


class TestDynamicUpdates:
    def test_insert_maintains_cached_plans(self, structure):
        with Database(structure) as db:
            q = db.query(EXAMPLE)
            q.count()
            pipeline_before = q.pipeline
            assert db.insert_fact("B", missing_unary(structure))
            # maintained in place: same pipeline object, fresh answers
            assert q.pipeline is pipeline_before
            assert sorted(q.answers().all()) == oracle(structure)
            assert q.count() == len(oracle(structure))
            stats = db.stats()
            assert stats["maintained_plans"] == 1

    def test_remove_fact_maintained(self, structure):
        with Database(structure) as db:
            q = db.query(EXAMPLE)
            q.answers().all()
            edge = next(iter(structure.facts("E")))
            assert db.remove_fact("E", *edge)
            assert sorted(q.answers().all()) == oracle(structure)

    def test_noop_updates_change_nothing(self, structure):
        with Database(structure) as db:
            q = db.query(EXAMPLE)
            before = q.answers().all()
            existing = next(iter(structure.facts("B")))
            assert not db.insert_fact("B", *existing)
            assert not db.remove_fact("B", missing_unary(structure))
            assert q.answers().all() == before

    def test_update_stream_agrees_with_oracle(self):
        import random

        structure = random_colored_graph(18, max_degree=3, seed=3)
        rng = random.Random(11)
        domain = list(structure.domain)
        with Database(structure) as db:
            q = db.query(EXAMPLE)
            for _ in range(12):
                a, b = rng.choice(domain), rng.choice(domain)
                if structure.has_fact("E", a, b):
                    db.remove_fact("E", a, b)
                else:
                    db.insert_fact("E", a, b)
                assert sorted(q.answers().all()) == oracle(structure)
                assert q.count() == len(oracle(structure))

    def test_targeted_invalidation_keeps_maintained_entries(self, structure):
        with Database(structure) as db:
            maintained = db.query(EXAMPLE)  # quantifier-free: maintainable
            # An unrelativized quantifier with far witnesses derives
            # predicates -> not maintainable.
            unmaintained = db.query("B(x) & exists z. (R(z) & dist(x,z) > 2)")
            stats = db.stats()
            assert stats["entries"] == 2
            assert stats["maintained_plans"] == 1
            maintained_pipeline = maintained.pipeline
            unmaintained_pipeline = unmaintained.pipeline
            db.insert_fact("B", missing_unary(structure))
            # The maintained plan survived as a cache hit (same object);
            # the other was dropped and rebuilds on next use.
            assert maintained.pipeline is maintained_pipeline
            assert unmaintained.pipeline is not unmaintained_pipeline
            assert db.stats()["entries"] == 2
            # Both serve correct post-update answers.
            assert sorted(maintained.answers().all()) == oracle(structure)
            want = oracle(structure, "B(x) & exists z. (R(z) & dist(x,z) > 2)")
            assert sorted(unmaintained.answers().all()) == want

    def test_outstanding_handles_stay_pinned(self, structure):
        # The snapshot-isolation contract: a handle opened before a
        # commit keeps streaming its pinned version byte-identically
        # (stale is informative, never an error on the session API).
        with Database(structure) as db:
            expected = db.query(EXAMPLE).answers().all()
            answers = db.query(EXAMPLE).answers()
            first = answers.page(0, size=2)
            db.insert_fact("B", missing_unary(structure))
            assert answers.stale
            assert answers.pinned
            assert first + answers.all()[2:] == expected
            assert answers.all() == expected

    def test_external_mutation_falls_back_to_invalidation(self, structure):
        # guard_writes=False opts back into the legacy contract where
        # out-of-band mutations are tolerated via invalidation; guarded
        # sessions (the default) refuse them at the add_fact call.
        with Database(structure, guard_writes=False) as db:
            q = db.query(EXAMPLE)
            before = q.pipeline
            structure.add_fact("B", missing_unary(structure))  # behind our back
            assert q.pipeline is not before, "stale pipeline served"
            assert sorted(q.answers().all()) == oracle(structure)
            assert db.stats()["maintained_plans"] == 1  # re-attached on rebuild

    def test_agrees_with_legacy_dynamic_query(self):
        structure_a = random_colored_graph(20, max_degree=3, seed=13)
        structure_b = structure_a.copy()
        from repro.core.dynamic import DynamicQuery

        with pytest.warns(DeprecationWarning):
            legacy = DynamicQuery(structure_b, EXAMPLE)
        with Database(structure_a) as db:
            q = db.query(EXAMPLE)
            for action, fact in [
                ("insert", ("E", 0, 5)),
                ("insert", ("B", 7)),
                ("delete", ("E", 0, 5)),
            ]:
                if action == "insert":
                    db.insert_fact(*fact)
                    legacy.insert_fact(*fact)
                else:
                    db.remove_fact(*fact)
                    legacy.delete_fact(*fact)
                assert sorted(q.answers().all()) == sorted(legacy.answers())


class TestLifecycle:
    def test_close_rejects_new_queries(self, structure):
        db = Database(structure)
        q = db.query(EXAMPLE)
        db.close()
        assert db.closed
        with pytest.raises(EngineError):
            db.query(EXAMPLE)
        with pytest.raises(EngineError):
            q.answers()
        with pytest.raises(EngineError):
            db.insert_fact("B", missing_unary(structure))
        db.close()  # idempotent

    def test_context_manager(self, structure):
        with Database(structure) as db:
            assert not db.closed
        assert db.closed

    def test_bad_workers_rejected(self, structure):
        with pytest.raises(EngineError):
            Database(structure, workers=0)

    def test_stats_keys(self, db):
        db.query(EXAMPLE)
        stats = db.stats()
        for key in (
            "entries",
            "hits",
            "misses",
            "graph_templates",
            "maintained_plans",
            "pool_submits",
            "pool_workers",
        ):
            assert key in stats

    def test_cache_shared_across_queries(self, db):
        first = db.query(EXAMPLE)
        second = db.query("(B(x)) & (R(y)) & ~E(x,y)")  # same normalized form
        assert first.pipeline is second.pipeline
        assert db.stats()["hits"] >= 1


class TestQueryLiveView:
    def test_query_survives_updates_queries_answers(self, structure):
        with Database(structure) as db:
            q = db.query(EXAMPLE)
            counts = [q.count()]
            db.insert_fact("B", missing_unary(structure))
            counts.append(q.count())
            db.insert_fact("R", missing_unary(structure, "R"))
            counts.append(q.count())
            assert counts[-1] == len(oracle(structure))

    def test_answers_returns_fresh_handles(self, db):
        q = db.query(EXAMPLE)
        first = q.answers()
        second = q.answers()
        assert first is not second
        assert isinstance(first, Answers)
        first.cancel()
        assert second.all() == list(second)  # unaffected by sibling cancel

    def test_repr(self, db):
        q = db.query(EXAMPLE)
        assert "Query(" in repr(q)
        assert isinstance(q, Query)
