"""Snapshot isolation: pinned reads survive commits byte-identically.

The acceptance contract of the snapshot redesign:

* an ``Answers`` handle opened *before* a committing transaction streams
  to completion byte-identical to serial enumeration of the pre-commit
  structure — no ``StaleResultError`` on the session API — while a
  post-commit ``db.query()`` sees the new facts (the barrier test below
  proves the overlap is real, not accidental serialization);
* ``db.snapshot()`` pins a version: its queries, counts, and verdicts
  are frozen at that version no matter how many commits follow;
* the legacy engine facades keep the historical raise-on-mutation
  contract behind the deprecation shim.
"""

from __future__ import annotations

import threading
import warnings

import pytest

from repro.core.enumeration import enumerate_answers
from repro.engine import QueryBatch
from repro.errors import EngineError, StaleResultError
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


def oracle(structure, text=EXAMPLE):
    formula = parse(text)
    return sorted(naive_answers(formula, structure, order=sorted(formula.free)))


@pytest.fixture
def structure():
    return random_colored_graph(24, max_degree=3, seed=19).copy()


def missing_unary(structure, relation="B"):
    return next(
        e for e in structure.domain if not structure.has_fact(relation, e)
    )


class TestSnapshotReads:
    def test_snapshot_is_invisible_to_commits(self, structure):
        with Database(structure) as db:
            with db.snapshot() as snap:
                q = snap.query(EXAMPLE)
                before_answers = q.answers().all()
                before_count = q.count()
                db.insert_fact("B", missing_unary(structure))
                assert q.answers().all() == before_answers
                assert q.count() == before_count
                # A fresh query through the same snapshot: same version.
                assert snap.query(EXAMPLE).answers().all() == before_answers
            # The head sees the commit.
            assert sorted(db.query(EXAMPLE).answers().all()) == oracle(
                db.structure
            )

    def test_snapshot_across_many_commits(self, structure):
        with Database(structure) as db:
            snap = db.snapshot()
            pinned = snap.query(EXAMPLE).answers().all()
            free = [
                e for e in structure.domain if not structure.has_fact("B", e)
            ][:3]
            for element in free:
                db.insert_fact("B", element)
            assert snap.query(EXAMPLE).answers().all() == pinned
            assert snap.count(EXAMPLE) == len(pinned)
            snap.close()

    def test_snapshot_test_verdicts_pinned(self, structure):
        with Database(structure) as db:
            snap = db.snapshot()
            new_blue = missing_unary(structure)
            red = next(iter(structure.facts("R")))[0]
            probe = (new_blue, red)
            head_q = db.query(EXAMPLE)
            snap_q = snap.query(EXAMPLE)
            before = snap_q.test(probe)
            db.insert_fact("B", new_blue)
            assert snap_q.test(probe) == before
            assert snap.query(EXAMPLE).test(probe) == before
            # The head's live query re-resolves and may flip the verdict.
            want = sorted(
                naive_answers(
                    parse(EXAMPLE), db.structure, order=parse(EXAMPLE).free and sorted(parse(EXAMPLE).free)
                )
            )
            assert head_q.test(probe) == (probe in set(want))
            snap.close()

    def test_query_outlives_snapshot_close(self, structure):
        # Regression: a Query created through a snapshot holds its own
        # pin — closing the snapshot must not let a later commit refresh
        # the query's pipeline in place and serve head data.
        with Database(structure) as db:
            with db.snapshot() as snap:
                q = snap.query(EXAMPLE)
                pinned_answers = q.answers().all()
                pinned_count = q.count()
            # snapshot closed; the query keeps its version anyway
            db.insert_fact("B", missing_unary(structure))
            assert q.count() == pinned_count
            assert q.answers().all() == pinned_answers
            assert q.explain().pinned
            head_count = db.query(EXAMPLE).count()
            assert head_count == len(oracle(db.structure))

    def test_closed_snapshot_rejects_queries(self, structure):
        with Database(structure) as db:
            snap = db.snapshot()
            snap.close()
            with pytest.raises(EngineError):
                snap.query(EXAMPLE)
            snap.close()  # idempotent

    def test_snapshot_queries_share_the_cache(self, structure):
        with Database(structure) as db:
            db.query(EXAMPLE).count()
            misses_before = db.stats()["misses"]
            with db.snapshot() as snap:
                snap.query(EXAMPLE).count()  # same fingerprint: cache hit
            assert db.stats()["misses"] == misses_before

    def test_pinned_entries_survive_commits_then_purge(self, structure):
        with Database(structure) as db:
            snap = db.snapshot()
            snap.query(EXAMPLE).count()
            old_fp = snap.fingerprint
            db.insert_fact("B", missing_unary(structure))
            assert db.structure_fingerprint != old_fp
            # Still retained: the snapshot can cache-hit its version.
            hits_before = db.stats()["hits"]
            snap.query(EXAMPLE).count()
            assert db.stats()["hits"] > hits_before
            retained_while_pinned = db.stats()["retained_fingerprints"]
            assert retained_while_pinned >= 1
            snap.close()
            # Last pin gone: the superseded version's entries are purged.
            assert db.stats()["pinned_versions"] == 0
            assert db.stats()["retained_fingerprints"] == 0
            assert old_fp != db.structure_fingerprint

    def test_explain_reports_pinning(self, structure):
        with Database(structure) as db:
            with db.snapshot() as snap:
                plan = snap.query(EXAMPLE).explain()
                assert plan.pinned
                assert plan.at_version == snap.version
                assert "snapshot-pinned" in plan.describe()
                live = db.query(EXAMPLE).explain()
                assert not live.pinned

    def test_direct_mutation_still_raises_on_snapshot(self, structure):
        # guard_writes=False: the legacy tolerate-and-detect contract.
        with Database(structure, guard_writes=False) as db:
            snap = db.snapshot()
            structure.add_fact("B", missing_unary(structure))  # behind our back
            with pytest.raises(StaleResultError):
                snap.query(EXAMPLE)
            snap.close()

    def test_direct_mutation_is_refused_by_default(self, structure):
        from repro.errors import GuardedStructureError

        with Database(structure) as db:
            snap = db.snapshot()
            with pytest.raises(GuardedStructureError, match="db.transaction"):
                structure.add_fact("B", missing_unary(structure))
            # The refused write left nothing stale.
            assert snap.query(EXAMPLE).count() == db.query(EXAMPLE).count()
            snap.close()


class TestCommitForkSemantics:
    def test_unpinned_commit_mutates_in_place(self, structure):
        with Database(structure) as db:
            result = db.apply([("insert", "B", (missing_unary(structure),))])
            assert not result.forked
            assert db.structure is structure

    def test_pinned_commit_forks_and_freezes(self, structure):
        from repro.errors import FrozenStructureError

        with Database(structure) as db:
            snap = db.snapshot()
            result = db.apply([("insert", "B", (missing_unary(structure),))])
            assert result.forked
            assert db.structure is not structure
            assert structure.frozen
            with pytest.raises(FrozenStructureError):
                structure.add_fact("B", 0)
            # The fork carries the whole content; the head keeps working.
            assert sorted(db.query(EXAMPLE).answers().all()) == oracle(
                db.structure
            )
            snap.close()

    def test_commits_after_pin_release_go_back_in_place(self, structure):
        with Database(structure) as db:
            snap = db.snapshot()
            db.insert_fact("B", missing_unary(structure))  # forked
            snap.close()
            head = db.structure
            db.insert_fact("R", missing_unary(db.structure, "R"))
            assert db.structure is head, "no pins -> in-place commit"

    def test_fork_chain_multiple_snapshots(self, structure):
        with Database(structure) as db:
            snap_a = db.snapshot()
            count_a = snap_a.count(EXAMPLE)
            db.insert_fact("B", missing_unary(db.structure))
            snap_b = db.snapshot()
            count_b = snap_b.count(EXAMPLE)
            db.insert_fact("B", missing_unary(db.structure))
            head_count = db.query(EXAMPLE).count()
            assert snap_a.count(EXAMPLE) == count_a
            assert snap_b.count(EXAMPLE) == count_b
            assert head_count >= count_b >= count_a
            assert head_count == len(oracle(db.structure))
            snap_a.close()
            snap_b.close()


class TestFingerprintABA:
    """Regression: a fork followed by an inverse commit returns the head
    to the *content* fingerprint of the frozen old structure.  The
    generation-tagged cache keys must keep the frozen generation's
    pipelines unreachable — no wrong answers, no maintainer attached to
    a superseded structure, no livelock in answers()."""

    def _aba(self, structure, db):
        snap = db.snapshot()
        element = missing_unary(structure)
        q = db.query(EXAMPLE)
        q.count()  # cache + maintain at generation 0
        db.insert_fact("B", element)  # forks (snapshot pins)
        db.remove_fact("B", element)  # head content == frozen content
        return snap, element

    def test_head_never_hits_frozen_generation(self, structure):
        with Database(structure) as db:
            snap, element = self._aba(structure, db)
            live = db.query(EXAMPLE)
            assert sorted(live.answers().all()) == oracle(db.structure)
            snap.close()
            # Maintenance after the ABA must track the *head*, not the
            # frozen structure the stale cache entry was built on.
            db.insert_fact("B", element)
            assert sorted(db.query(EXAMPLE).answers().all()) == oracle(
                db.structure
            )
            assert live.count() == len(oracle(db.structure))

    def test_answers_does_not_livelock_after_aba(self, structure):
        with Database(structure) as db:
            snap, _ = self._aba(structure, db)
            done = threading.Event()
            result = []

            def pull():
                result.append(db.query(EXAMPLE).answers().all())
                done.set()

            worker = threading.Thread(target=pull, daemon=True)
            worker.start()
            assert done.wait(timeout=20), "answers() livelocked after ABA"
            assert sorted(result[0]) == oracle(db.structure)
            snap.close()


class TestAnswersPinning:
    def test_handle_streams_across_commit_barrier(self, structure):
        """THE acceptance test: a handle opened before a commit that
        lands mid-stream (a real barrier proves the interleaving)
        completes byte-identical to pre-commit serial enumeration,
        while a post-commit query sees the new facts."""
        with Database(structure) as db:
            # Pre-commit serial reference, computed on an isolated copy.
            reference_pipeline_db = structure.copy()
            with Database(reference_pipeline_db) as ref_db:
                expected = ref_db.query(EXAMPLE).answers().all()

            handle = db.query(EXAMPLE).answers()
            first = handle.page(0, size=3)  # production has started

            handle_at_barrier = threading.Barrier(2, timeout=10)
            committed = threading.Event()

            def commit_side():
                handle_at_barrier.wait()
                db.apply(
                    [
                        ("insert", "B", (missing_unary(db.structure),)),
                        ("insert", "R", (missing_unary(db.structure, "R"),)),
                    ]
                )
                committed.set()

            writer = threading.Thread(target=commit_side)
            writer.start()
            handle_at_barrier.wait()
            assert committed.wait(timeout=10), "commit never landed"
            writer.join(timeout=10)

            # The handle: mid-stream when the commit landed, streams to
            # completion, byte-identical, no StaleResultError.
            streamed = first + list(handle.stream())[len(first):]
            assert streamed == expected
            assert handle.all() == expected
            assert handle.stale  # informative only
            assert handle.count() == len(expected)

            # The head: sees the new facts.
            assert sorted(db.query(EXAMPLE).answers().all()) == oracle(
                db.structure
            )

    def test_handle_pin_released_on_cancel(self, structure):
        with Database(structure) as db:
            handle = db.query(EXAMPLE).answers()
            assert handle.pinned
            assert db.stats()["pinned_versions"] == 1
            handle.cancel()
            assert not handle.pinned
            assert db.stats()["pinned_versions"] == 0
            head = db.structure
            db.insert_fact("B", missing_unary(structure))
            assert db.structure is head, "released pin -> in-place commit"

    def test_handle_pin_released_on_gc(self, structure):
        import gc

        with Database(structure) as db:
            handle = db.query(EXAMPLE).answers()
            handle.page(0, size=2)
            assert db.stats()["pinned_versions"] == 1
            del handle
            gc.collect()
            assert db.stats()["pinned_versions"] == 0

    def test_count_on_pinned_handle_is_precommit(self, structure):
        with Database(structure) as db:
            handle = db.query(EXAMPLE).answers()
            before = db.query(EXAMPLE).count()
            db.insert_fact("B", missing_unary(structure))
            assert handle.count() == before

    def test_async_pulls_survive_commit(self, structure):
        import asyncio

        async def scenario():
            with Database(structure) as db:
                handle = db.query(EXAMPLE).answers()
                expected_first = await handle.apage(0, size=5)
                db.insert_fact("B", missing_unary(structure))
                rest = [answer async for answer in handle]
                return expected_first, rest

        first, rest = asyncio.run(scenario())
        assert rest[: len(first)] == first  # astream restarts from 0


class TestConcurrentStress:
    def test_readers_and_writers_never_corrupt_or_hang(self, structure):
        import random

        from repro.fo.parser import parse as parse_query

        errors: list = []
        stop = threading.Event()
        with Database(structure, workers=2) as db:

            def reader(tid):
                rng = random.Random(tid)
                try:
                    while not stop.is_set():
                        if rng.random() < 0.5:
                            with db.snapshot() as snap:
                                q = snap.query(EXAMPLE)
                                answers = q.answers().all()
                                assert q.count() == len(answers)
                                assert (
                                    snap.query(EXAMPLE).answers().all()
                                    == answers
                                )
                        else:
                            handle = db.query(EXAMPLE).answers()
                            first = handle.page(0, 3)
                            assert handle.all()[:3] == first
                            handle.cancel()
                except Exception as error:  # pragma: no cover - fail below
                    errors.append(repr(error))

            def writer(tid):
                rng = random.Random(100 + tid)
                domain = list(structure.domain)
                try:
                    for _ in range(25):
                        ops = []
                        for _ in range(rng.randint(1, 4)):
                            relation = rng.choice(["E", "B", "R"])
                            if relation == "E":
                                fact = (
                                    rng.choice(domain),
                                    rng.choice(domain),
                                )
                            else:
                                fact = (rng.choice(domain),)
                            ops.append((rng.random() < 0.6, relation, fact))
                        db.apply(ops)
                except Exception as error:  # pragma: no cover - fail below
                    errors.append(repr(error))

            readers = [
                threading.Thread(target=reader, args=(i,)) for i in range(3)
            ]
            writers = [
                threading.Thread(target=writer, args=(i,)) for i in range(2)
            ]
            for thread in readers + writers:
                thread.start()
            for thread in writers:
                thread.join(timeout=60)
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
            assert not any(
                t.is_alive() for t in readers + writers
            ), "a reader or writer hung"
            assert not errors, errors

            formula = parse_query(EXAMPLE)
            want = sorted(
                naive_answers(
                    formula, db.structure, order=sorted(formula.free)
                )
            )
            assert sorted(db.query(EXAMPLE).answers().all()) == want
            assert db.stats()["pinned_versions"] == 0, "pins leaked"


class TestLegacyFacadeKeepsRaising:
    def test_querybatch_handle_raises_after_session_commit(self, structure):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with QueryBatch(structure) as batch:
                handle = batch.submit(EXAMPLE)
                handle.page(0, size=2)
                # A *session* commit on the batch's underlying database
                # forks (nothing pins here, but the facade still reports
                # staleness through the head-version probe).
                batch.database.insert_fact("B", missing_unary(structure))
                assert handle.stale
                with pytest.raises(StaleResultError):
                    handle.all()

    def test_querybatch_handle_raises_on_direct_mutation(self, structure):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with QueryBatch(structure) as batch:
                handle = batch.submit(EXAMPLE)
                handle.page(0, size=2)
                structure.add_fact("B", missing_unary(structure))
                with pytest.raises(StaleResultError):
                    handle.all()
