"""``Answers.astream()`` must release its version pin on every exit
path — including the one that used to leak: the consuming task cancelled
*between* page pulls.

A task cancelled between pulls stores the ``CancelledError`` (with its
traceback) on the ``Task`` object; the traceback <-> frame reference
cycle keeps the iterator alive until a garbage-collection pass, at which
point the ``weakref.finalize`` hook must release the pin *synchronously*
— no further event-loop turns are available, because the regression was
an asyncgen-based implementation whose cleanup needed scheduled
``aclose()`` turns that never ran.  These tests therefore collect and
assert immediately, with no intervening ``await``.
"""

from __future__ import annotations

import asyncio
import gc

import pytest

from repro.errors import EngineError
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


@pytest.fixture
def structure():
    return random_colored_graph(24, max_degree=3, seed=19).copy()


class TestCancelledConsumer:
    def test_cancel_between_pulls_releases_pin(self, structure):
        """The regression: cancellation lands while the consumer is
        parked *between* ``__anext__`` calls, so the stream never sees
        the ``CancelledError`` — only the finalizer can release the
        pin, and it must do so at collection time without any further
        event-loop turns."""

        async def scenario():
            with Database(structure) as db:
                handle = db.query(EXAMPLE).answers()
                got_page = asyncio.Event()
                parked = asyncio.Event()

                async def consume():
                    stream = handle.astream(page_size=2)
                    async for _answer_page_marker in stream:
                        got_page.set()
                        await parked.wait()  # cancellation lands here

                task = asyncio.create_task(consume())
                await got_page.wait()
                assert handle.pinned
                assert db.stats()["pinned_versions"] == 1

                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass

                # The cancellation's traceback holds the consumer frame
                # (and through it the iterator); the awaiting task's
                # C-level ``__step`` keeps that exception on the C stack
                # until this coroutine next suspends, so one loop turn,
                # then a collection pass.  The finalizer must release
                # the pin *during* the collect — the old asyncgen
                # implementation merely scheduled ``aclose()`` here and
                # still held the pin at the assert below.
                del task
                await asyncio.sleep(0)
                gc.collect()
                assert not handle.pinned
                assert handle.cancelled
                assert db.stats()["pinned_versions"] == 0

        asyncio.run(scenario())

    def test_cancel_inside_pull_releases_pin_without_gc(self, structure):
        """Cancellation landing *inside* ``__anext__`` is caught there
        and releases the pin synchronously — no collection needed."""

        async def scenario():
            with Database(structure) as db:
                handle = db.query(EXAMPLE).answers()

                async def consume():
                    async for _answer in handle.astream(page_size=2):
                        pass

                task = asyncio.create_task(consume())
                # One turn parks the task inside the first page pull.
                await asyncio.sleep(0)
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                assert not handle.pinned
                assert db.stats()["pinned_versions"] == 0

        asyncio.run(scenario())


class TestAbandonment:
    def test_break_then_collect_releases_pin(self, structure):
        async def scenario():
            with Database(structure) as db:
                handle = db.query(EXAMPLE).answers()
                stream = handle.astream(page_size=2)
                async for _answer in stream:
                    break
                assert handle.pinned  # abandoned mid-stream, still live
                del stream
                gc.collect()
                assert not handle.pinned
                assert db.stats()["pinned_versions"] == 0

        asyncio.run(scenario())

    def test_aclose_mid_stream_cancels(self, structure):
        async def scenario():
            with Database(structure) as db:
                handle = db.query(EXAMPLE).answers()
                stream = handle.astream(page_size=2)
                await stream.__anext__()
                await stream.aclose()
                assert handle.cancelled
                assert db.stats()["pinned_versions"] == 0

        asyncio.run(scenario())


class TestCleanCompletion:
    def test_full_drain_seals_instead_of_cancelling(self, structure):
        async def scenario():
            with Database(structure) as db:
                handle = db.query(EXAMPLE).answers()
                expected = db.query(EXAMPLE).answers().all()
                streamed = [a async for a in handle.astream(page_size=7)]
                assert streamed == expected
                # Exhaustion seals the handle (pin released, results
                # self-contained) — it is *not* a cancellation.
                assert not handle.cancelled
                assert not handle.pinned
                assert db.stats()["pinned_versions"] == 0
                assert handle.all() == expected

        asyncio.run(scenario())

    def test_aclose_after_drain_is_not_a_cancel(self, structure):
        async def scenario():
            with Database(structure) as db:
                handle = db.query(EXAMPLE).answers()
                total = len(db.query(EXAMPLE).answers().all())
                stream = handle.astream(page_size=total + 1)
                # One short page: the stream is ending; consume it all
                # without tripping the terminal StopAsyncIteration.
                for _ in range(total):
                    await stream.__anext__()
                await stream.aclose()  # drained -> seal, not cancel
                assert not handle.cancelled
                assert db.stats()["pinned_versions"] == 0
                with pytest.raises(StopAsyncIteration):
                    await stream.__anext__()
                assert len(handle.all()) == total

        asyncio.run(scenario())

    def test_bad_page_size_rejected(self, structure):
        with Database(structure) as db:
            handle = db.query(EXAMPLE).answers()
            with pytest.raises(EngineError):
                handle.astream(page_size=0)
            handle.cancel()
