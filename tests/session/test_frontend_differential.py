"""Front-end differential suite: every entry point, one answer.

The acceptance contract of the session refactor: for a corpus of
(structure, query) pairs — including ternary relations and nested
quantifiers — ``Database.query(...)`` must produce *byte-identical*
enumeration order, exact-equal counts, and identical test verdicts
versus every legacy front-end (``prepare``/``PreparedQuery``,
``QueryBatch``/``ResultHandle``, ``AsyncQueryBatch``), on both fixed
corpus queries and Hypothesis-generated random structures/formulas.
"""

from __future__ import annotations

import asyncio
import warnings

import pytest
from hypothesis import HealthCheck, given, settings

from repro import Database, prepare
from repro.engine import AsyncQueryBatch, QueryBatch
from repro.fo import parse
from repro.fo.semantics import naive_answers

from strategies import (
    formulas,
    rejecting_unsupported,
    structures,
    ternary_structures,
)

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CORPUS = [
    "B(x)",
    "B(x) & R(y) & ~E(x,y)",                     # Example 2.3
    "B(x) & R(y) & (E(x,y) | E(y,x))",
    "B(x) & B(y) & ~E(x,y) & ~E(y,x) & x != y",
    "dist(x,y) > 2 & B(x) & R(y)",
    "exists z. E(x,z) & E(z,y) & x != y",        # nested witness
    "B(x) & exists z. (R(z) & dist(x,z) > 2)",   # derived predicates
    "forall z. E(x,z) -> B(z)",
    "exists z. exists w. E(z,w) & B(z) & R(w) & ~E(x,z)",  # nested quantifiers
]

TERNARY_CORPUS = [
    "T(x,y,y) & B(x)",
    "B(x) & exists z. T(x,z,y)",
    "T(x,y,y) & ~B(y) & dist(x,y) <= 2",
]


def quiet(fn, *args, **kwargs):
    """Run a deprecated front-end without polluting the warning log."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return fn(*args, **kwargs)


def front_end_results(structure, formula, order):
    """(answers, count, verdicts) from each front-end, same inputs."""
    probes = []
    session_db = Database(structure)
    session_query = session_db.query(formula, order=order)
    session_answers = session_query.answers().all()
    # Probe a mix of real answers and non-answers.
    probes = session_answers[:3] + [
        tuple(reversed(answer)) for answer in session_answers[:2]
    ]
    if order:
        first = next(iter(structure.domain))
        probes.append((first,) * len(order))

    def capture(answers, count, test):
        return {
            "answers": answers,
            "count": count,
            "verdicts": [test(probe) for probe in probes],
        }

    results = {
        "session": capture(
            session_answers, session_query.count(), session_query.test
        )
    }

    prepared = quiet(prepare, structure, formula, order=order)
    results["prepare"] = capture(
        list(prepared.enumerate()), prepared.count(), prepared.test
    )

    with quiet(QueryBatch, structure) as batch:
        handle = batch.submit(formula, order=order)
        results["batch"] = capture(handle.all(), handle.count(), handle.test)

    async def async_face():
        async with quiet(AsyncQueryBatch, structure) as async_batch:
            handle = await async_batch.submit(formula, order=order)
            answers = await handle.all()
            count = await handle.count()
            verdicts = [await handle.test(probe) for probe in probes]
            return {"answers": answers, "count": count, "verdicts": verdicts}

    results["asyncio"] = asyncio.run(async_face())
    session_db.close()
    return results


def assert_front_ends_agree(structure, formula_text_or_formula):
    formula = (
        parse(formula_text_or_formula)
        if isinstance(formula_text_or_formula, str)
        else formula_text_or_formula
    )
    order = sorted(formula.free)
    with rejecting_unsupported():
        results = front_end_results(structure, formula, order)
    reference = results.pop("session")
    # The session must equal the oracle as a set ...
    oracle = set(naive_answers(formula, structure, order=order))
    assert set(reference["answers"]) == oracle
    assert reference["count"] == len(oracle)
    # ... and every legacy front-end byte-for-byte (order included).
    for name, result in results.items():
        assert result["answers"] == reference["answers"], (
            f"{name}: answers (or their order) diverge from the session"
        )
        assert result["count"] == reference["count"], f"{name}: count diverges"
        assert result["verdicts"] == reference["verdicts"], (
            f"{name}: test verdicts diverge"
        )


class TestCorpus:
    @pytest.mark.parametrize("text", CORPUS)
    def test_binary_corpus(self, small_colored, text):
        assert_front_ends_agree(small_colored, text)

    @pytest.mark.parametrize("text", CORPUS[:4])
    def test_three_colors(self, three_colored, text):
        assert_front_ends_agree(three_colored, text)

    @pytest.mark.parametrize("text", TERNARY_CORPUS)
    def test_ternary_corpus(self, ternary_structure, text):
        assert_front_ends_agree(ternary_structure, text)


class TestHypothesis:
    @given(db=structures(max_n=10), formula=formulas(free_count=2, max_depth=3, max_quantifiers=1))
    @settings(max_examples=20, **SETTINGS)
    def test_random_binary(self, db, formula):
        assert_front_ends_agree(db, formula)

    @given(db=structures(max_n=8), formula=formulas(free_count=1, max_depth=3, max_quantifiers=2))
    @settings(max_examples=10, **SETTINGS)
    def test_random_nested_quantifiers(self, db, formula):
        assert_front_ends_agree(db, formula)

    @given(
        db=ternary_structures(max_n=9),
        formula=formulas(free_count=2, max_depth=2, max_quantifiers=1, ternary=True),
    )
    @settings(max_examples=10, **SETTINGS)
    def test_random_ternary(self, db, formula):
        assert_front_ends_agree(db, formula)


class TestExplainReportsReality:
    def test_explain_backend_matches_execution(self, medium_colored):
        with Database(medium_colored, workers=2) as db:
            for backend in (None, "serial", "thread"):
                query = db.query(
                    "B(x) & R(y) & ~E(x,y)", backend=backend, workers=2
                )
                plan = query.explain()
                answers = query.answers()
                answers.all()
                assert answers.backend_used == plan.backend
