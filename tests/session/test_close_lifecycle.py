"""Database close/exit audit: closing with live snapshots and answer
handles must cancel cleanly — no pool leak, no hang, idempotent close.

Mirrors the PR 2 pool lifecycle tests (the ``no_leaks`` fixture):
whatever the session state — pinned snapshots, partially consumed
handles, in-flight async pulls — ``close()`` must reap every thread and
process the session started.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
import warnings

import pytest

from repro.engine import AsyncQueryBatch
from repro.errors import EngineError
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


@pytest.fixture
def no_leaks():
    """Snapshot live threads/children; fail if the test leaks either."""
    threads_before = set(threading.enumerate())
    children_before = set(multiprocessing.active_children())
    yield
    deadline = time.monotonic() + 10
    leaked_threads: list = []
    leaked_children: list = []
    while time.monotonic() < deadline:
        leaked_threads = [
            t
            for t in threading.enumerate()
            if t not in threads_before and t.is_alive()
        ]
        leaked_children = [
            p
            for p in multiprocessing.active_children()
            if p not in children_before
        ]
        if not leaked_threads and not leaked_children:
            break
        time.sleep(0.05)
    assert not leaked_children, f"leaked processes: {leaked_children}"
    assert not leaked_threads, f"leaked threads: {leaked_threads}"


@pytest.fixture
def structure():
    return random_colored_graph(24, max_degree=3, seed=23).copy()


class TestCloseIdempotency:
    def test_close_twice_and_exit(self, structure, no_leaks):
        db = Database(structure)
        db.query(EXAMPLE).count()
        db.close()
        db.close()
        with pytest.raises(EngineError):
            db.query(EXAMPLE)
        # __exit__ after explicit close is also a no-op.
        db.__exit__(None, None, None)

    def test_close_with_live_snapshot(self, structure, no_leaks):
        db = Database(structure)
        snap = db.snapshot()
        snap.query(EXAMPLE).count()
        db.close()
        # Snapshot reads are refused after the session is gone...
        with pytest.raises(EngineError):
            snap.query(EXAMPLE)
        # ...and closing the snapshot afterwards neither hangs nor raises.
        snap.close()
        snap.close()

    def test_close_with_partially_consumed_handle(self, structure, no_leaks):
        db = Database(structure)
        handle = db.query(EXAMPLE, backend="thread", workers=2).answers()
        handle.page(0, size=2)
        db.close()
        # The handle keeps its already-pulled answers; pin release and
        # cancel on a closed session must not hang or leak.
        assert len(handle.page(0, size=2)) == 2
        handle.cancel()

    def test_close_with_pinned_fork_history(self, structure, no_leaks):
        db = Database(structure)
        snap = db.snapshot()
        free = [e for e in structure.domain if not structure.has_fact("B", e)]
        db.insert_fact("B", free[0])  # forks (snapshot pins)
        handle = db.query(EXAMPLE).answers()
        handle.page(0, size=1)
        db.insert_fact("B", free[1])  # forks again (handle pins)
        db.close()
        db.close()
        # Releasing pins after close is clean (cache purge on a closed
        # session must not error).
        handle.cancel()
        snap.close()

    def test_context_manager_with_live_handles(self, structure, no_leaks):
        with Database(structure, workers=2) as db:
            snap = db.snapshot()
            handles = [db.query(EXAMPLE).answers() for _ in range(3)]
            for handle in handles:
                handle.page(0, size=1)
        # exiting the with-block closed the pool with pins outstanding
        for handle in handles:
            handle.cancel()
        snap.close()

    def test_async_handle_then_close(self, structure, no_leaks):
        async def scenario():
            db = Database(structure, workers=2)
            handle = db.query(EXAMPLE).answers()
            await handle.apage(0, size=2)
            db.close()
            await handle.acancel()

        asyncio.run(scenario())

    def test_legacy_async_batch_close_with_handles(self, structure, no_leaks):
        async def scenario():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                async with AsyncQueryBatch(structure, workers=2) as batch:
                    handle = await batch.submit(EXAMPLE)
                    await handle.page(0, size=2)
                # closed with the handle mid-consumption
                await handle.cancel()

        asyncio.run(scenario())

    def test_pool_shut_down_after_close(self, structure, no_leaks):
        db = Database(structure, workers=2)
        db.query(EXAMPLE, backend="thread").answers().all()
        assert db.stats()["pool_thread_pool_live"] == 1
        db.close()
        assert db.pool.closed
