"""Differential: ``db.apply(changeset)`` vs one-by-one replay.

The transactional-commit contract: applying a whole changeset in one
atomic batch must be answer/count/verdict-identical to replaying the
same facts one at a time through ``insert_fact`` / ``remove_fact`` on a
fresh :class:`Database` — including remove-then-reinsert pairs and
no-op operations (inserting a present fact, removing an absent one) —
and both must agree with the naive oracle on the final structure.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

from strategies import structures

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

QUERIES = [
    "B(x) & R(y) & ~E(x,y)",
    "B(x) & exists z. (E(x,z) & R(z))",
]


@st.composite
def changesets(draw, structure, max_ops: int = 12):
    """A random op sequence biased toward the tricky cases: duplicate
    inserts, removals of absent facts, and remove-then-reinsert pairs."""
    domain = list(structure.domain)
    ops = []
    count = draw(st.integers(min_value=1, max_value=max_ops))
    while len(ops) < count:
        kind = draw(
            st.sampled_from(
                ["edge", "unary", "noop_insert", "remove_reinsert"]
            )
        )
        if kind == "edge":
            left = draw(st.sampled_from(domain))
            right = draw(st.sampled_from(domain))
            insert = draw(st.booleans())
            ops.append((insert, "E", (left, right)))
        elif kind == "unary":
            element = draw(st.sampled_from(domain))
            relation = draw(st.sampled_from(["B", "R"]))
            insert = draw(st.booleans())
            ops.append((insert, relation, (element,)))
        elif kind == "noop_insert":
            existing = sorted(structure.facts("E")) or [None]
            fact = draw(st.sampled_from(existing))
            if fact is not None:
                ops.append((True, "E", fact))
        else:  # remove_reinsert
            left = draw(st.sampled_from(domain))
            right = draw(st.sampled_from(domain))
            ops.append((False, "E", (left, right)))
            ops.append((True, "E", (left, right)))
    return ops


def capture(db, query_texts):
    state = []
    domain = list(db.structure.domain)
    for text in query_texts:
        query = db.query(text)
        answers = sorted(query.answers().all())
        probes = answers[:3] + [(domain[0],) * query.arity]
        state.append(
            {
                "answers": answers,
                "count": query.count(),
                "verdicts": [query.test(probe) for probe in probes],
            }
        )
    return state


@given(db=structures(max_n=12), data=st.data())
@settings(max_examples=30, **SETTINGS)
def test_apply_equals_one_by_one_replay(db, data):
    ops = data.draw(changesets(db))
    batch_structure = db.copy()
    replay_structure = db.copy()

    with Database(batch_structure) as batch_db, Database(
        replay_structure
    ) as replay_db:
        # Warm (and thereby maintain) the plans on both sides first, so
        # the differential also covers batched vs per-fact maintenance.
        for text in QUERIES:
            batch_db.query(text).count()
            replay_db.query(text).count()

        batch_db.apply(ops)
        for insert, relation, elements in ops:
            if insert:
                replay_db.insert_fact(relation, *elements)
            else:
                replay_db.remove_fact(relation, *elements)

        # Same final structure, bit for bit.
        assert (
            batch_db.structure_fingerprint == replay_db.structure_fingerprint
        )
        batch_state = capture(batch_db, QUERIES)
        replay_state = capture(replay_db, QUERIES)
        assert batch_state == replay_state
        # And both equal the oracle on the final structure.
        for text, state in zip(QUERIES, batch_state):
            formula = parse(text)
            want = sorted(
                naive_answers(
                    formula, batch_structure, order=sorted(formula.free)
                )
            )
            assert state["answers"] == want
            assert state["count"] == len(want)


class TestEdgeCases:
    def test_noop_insert_of_existing_fact(self):
        base = random_colored_graph(16, max_degree=3, seed=3)
        edge = next(iter(base.facts("E")))
        batch_structure, replay_structure = base.copy(), base.copy()
        with Database(batch_structure) as batch_db, Database(
            replay_structure
        ) as replay_db:
            result = batch_db.apply([("insert", "E", edge)])
            assert not replay_db.insert_fact("E", *edge)
            assert not result.changed
            assert (
                batch_db.structure_fingerprint
                == replay_db.structure_fingerprint
            )

    def test_remove_then_reinsert_matches_replay(self):
        base = random_colored_graph(16, max_degree=3, seed=5)
        edge = next(iter(base.facts("E")))
        batch_structure, replay_structure = base.copy(), base.copy()
        with Database(batch_structure) as batch_db, Database(
            replay_structure
        ) as replay_db:
            for text in QUERIES:
                batch_db.query(text).count()
                replay_db.query(text).count()
            batch_db.apply([("remove", "E", edge), ("insert", "E", edge)])
            replay_db.remove_fact("E", *edge)
            replay_db.insert_fact("E", *edge)
            assert (
                batch_db.structure_fingerprint
                == replay_db.structure_fingerprint
            )
            assert capture(batch_db, QUERIES) == capture(replay_db, QUERIES)
