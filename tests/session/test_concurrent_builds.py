"""Regression: pipeline builds are no longer serialized behind one lock.

The session layer holds *per-cache-key* build locks: two cold queries
with distinct keys must be able to run their (expensive) pipeline builds
concurrently, while two racing submits of the *same* query still build
exactly once.  The overlap tests use a two-party barrier inside a
patched ``Pipeline`` constructor — if the builds were serialized, the
second build could never reach the barrier while the first waits, and
the barrier would time out.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.session.database as database_module
from repro.core.pipeline import Pipeline
from repro.session import Database

QUERY_A = "B(x) & R(y) & ~E(x,y)"
QUERY_B = "B(x) & R(y) & E(x,y)"

BARRIER_TIMEOUT = 20.0


class _BarrierPipeline:
    """Pipeline factory that parks every build on a shared barrier."""

    def __init__(self, parties: int):
        self.barrier = threading.Barrier(parties, timeout=BARRIER_TIMEOUT)
        self.builds = 0
        self._lock = threading.Lock()

    def __call__(self, *args, **kwargs):
        with self._lock:
            self.builds += 1
        self.barrier.wait()  # every party must be building simultaneously
        return Pipeline(*args, **kwargs)


class TestDistinctQueriesOverlap:
    def test_two_cold_builds_run_concurrently(self, small_colored, monkeypatch):
        probe = _BarrierPipeline(parties=2)
        monkeypatch.setattr(database_module, "Pipeline", probe)
        with Database(small_colored) as db:
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [
                    pool.submit(db.query, QUERY_A),
                    pool.submit(db.query, QUERY_B),
                ]
                queries = [future.result() for future in futures]
            assert probe.builds == 2
            counts = [q.count() for q in queries]
        assert all(isinstance(count, int) for count in counts)

    def test_async_submits_overlap(self, small_colored, monkeypatch):
        probe = _BarrierPipeline(parties=2)
        monkeypatch.setattr(database_module, "Pipeline", probe)
        from repro.engine.aio import AsyncQueryBatch

        async def scenario():
            with pytest.warns(DeprecationWarning):
                batch = AsyncQueryBatch(small_colored)
            async with batch:
                first, second = await asyncio.gather(
                    batch.submit(QUERY_A), batch.submit(QUERY_B)
                )
                return await first.count(), await second.count()

        counts = asyncio.run(scenario())
        assert probe.builds == 2
        assert all(isinstance(count, int) for count in counts)


class TestSameQueryBuildsOnce:
    def test_racing_submits_share_one_build(self, small_colored, monkeypatch):
        builds = 0
        build_lock = threading.Lock()

        def counting_pipeline(*args, **kwargs):
            nonlocal builds
            with build_lock:
                builds += 1
            return Pipeline(*args, **kwargs)

        monkeypatch.setattr(database_module, "Pipeline", counting_pipeline)
        with Database(small_colored) as db:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(db.query, QUERY_A) for _ in range(4)]
                queries = [future.result() for future in futures]
        assert builds == 1, "racing submits of one query must build once"
        pipelines = {id(q.pipeline) for q in queries}
        assert len(pipelines) == 1, "all submits must share the cached pipeline"

    def test_equal_shape_queries_share_graph_template(self, small_colored):
        with Database(small_colored) as db:
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [
                    pool.submit(db.query, QUERY_A),
                    pool.submit(db.query, QUERY_B),
                ]
                for future in futures:
                    future.result()
            # Same (arity, link radius): one template serves both.
            assert db.stats()["graph_templates"] == 1


class TestConcurrentUpdates:
    def test_racing_duplicate_inserts_apply_once(self, small_colored):
        """Two threads inserting the same fact: exactly one effective
        update — the loser must see the winner's fact and not wipe the
        cache with a no-op 'update'."""
        probe = None
        for node in range(small_colored.cardinality):
            if not small_colored.has_fact("B", node):
                probe = node
                break
        assert probe is not None
        with Database(small_colored) as db:
            db.query(QUERY_A).count()  # populate the cache
            results = []
            barrier = threading.Barrier(2, timeout=BARRIER_TIMEOUT)

            def racer():
                barrier.wait()
                results.append(db.insert_fact("B", probe))

            threads = [threading.Thread(target=racer) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sorted(results) == [False, True]
            assert db.structure.has_fact("B", probe)


class TestThreadSafetySmoke:
    def test_many_threads_many_queries(self, small_colored):
        queries = [QUERY_A, QUERY_B, "B(x)", "R(x)", "E(x,y)"]
        with Database(small_colored) as db:
            expected = {q: db.query(q).count() for q in queries}

            def worker(query: str) -> bool:
                return db.query(query).count() == expected[query]

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(worker, queries * 8))
        assert all(results)
