"""Durable sessions and the closed MVCC caveats.

Four contracts under test:

* ``Database.open`` / ``db.checkpoint`` — a reopened database is
  version-, generation-, fingerprint-, and answer-identical to the one
  that closed, whether the state lives in the snapshot, the WAL tail,
  or both; a warm reopen serves its first cached-plan query without
  re-running preprocessing.
* Warm forks — a commit overlapping a live pin forks the head *and*
  keeps its maintained plans warm (``maintained_plans >= 1`` on the
  commit result), while the pinned reader stays byte-identical.
* Handle retention — exhausted ``Answers`` handles release their
  version pin (so the next commit mutates in place), and the
  per-database budget for superseded pinned versions fails loudly.
* The write guard — direct mutation of a session-owned structure is
  refused with a message naming the session API.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    DurabilityError,
    GuardedStructureError,
    MaintenanceWarning,
    RetentionLimitError,
)
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


def oracle(structure, text=EXAMPLE):
    formula = parse(text)
    return sorted(naive_answers(formula, structure, order=sorted(formula.free)))


def fresh_structure(seed=19):
    return random_colored_graph(24, max_degree=3, seed=seed).copy()


def missing_unary(structure, relation="B"):
    return next(
        e for e in structure.domain if not structure.has_fact(relation, e)
    )


class TestOpenAndReopen:
    def test_create_then_reopen_identical(self, tmp_path):
        path = tmp_path / "db"
        structure = fresh_structure()
        with Database.open(path, structure=structure) as db:
            want = oracle(db.structure)
            fingerprint = db.structure_fingerprint
            version = db.version
        with Database.open(path) as db:
            assert db.durable
            assert db.structure_fingerprint == fingerprint
            assert db.version == version
            assert sorted(db.query(EXAMPLE).answers().all()) == want

    def test_open_missing_store_needs_structure(self, tmp_path):
        with pytest.raises(DurabilityError, match="no database"):
            Database.open(tmp_path / "nope")

    def test_open_existing_store_refuses_structure(self, tmp_path):
        path = tmp_path / "db"
        Database.open(path, structure=fresh_structure()).close()
        with pytest.raises(DurabilityError, match="already"):
            Database.open(path, structure=fresh_structure())

    def test_commits_survive_reopen_via_wal(self, tmp_path):
        path = tmp_path / "db"
        with Database.open(path, structure=fresh_structure()) as db:
            db.insert_fact("B", missing_unary(db.structure))
            element = missing_unary(db.structure, "R")
            db.insert_fact("R", element)
            db.remove_fact("R", element)
            want = oracle(db.structure)
            fingerprint = db.structure_fingerprint
            version = db.version
        # No checkpoint happened: this state exists only in the WAL.
        with Database.open(path) as db:
            assert db.version == version
            assert db.structure_fingerprint == fingerprint
            assert sorted(db.query(EXAMPLE).answers().all()) == want

    def test_checkpoint_then_more_commits_then_reopen(self, tmp_path):
        path = tmp_path / "db"
        with Database.open(path, structure=fresh_structure()) as db:
            db.insert_fact("B", missing_unary(db.structure))
            db.checkpoint()
            db.insert_fact("B", missing_unary(db.structure))
            want = oracle(db.structure)
            version = db.version
        with Database.open(path) as db:
            assert db.version == version
            assert sorted(db.query(EXAMPLE).answers().all()) == want

    def test_generation_survives_fork_and_reopen(self, tmp_path):
        path = tmp_path / "db"
        with Database.open(path, structure=fresh_structure()) as db:
            snap = db.snapshot()
            result = db.apply(
                [("insert", "B", (missing_unary(db.structure),))]
            )
            assert result.forked
            snap.close()
            generation = db.structure.generation
            assert generation >= 1
            want = oracle(db.structure)
        with Database.open(path) as db:
            assert db.structure.generation == generation
            assert sorted(db.query(EXAMPLE).answers().all()) == want
            # The restored lineage keeps committing cleanly.
            db.insert_fact("B", missing_unary(db.structure))
            assert db.structure.generation == generation

    def test_apply_is_durable_once_acknowledged(self, tmp_path):
        path = tmp_path / "db"
        db = Database.open(path, structure=fresh_structure())
        try:
            db.apply([("insert", "B", (missing_unary(db.structure),))])
            want = oracle(db.structure)
        finally:
            # Simulate a crash: no close(), no checkpoint — the WAL
            # handle just goes away with the process.
            db._store.close()
            db.pool.close()
        with Database.open(path) as reopened:
            assert sorted(reopened.query(EXAMPLE).answers().all()) == want


class TestWarmReopen:
    def test_first_query_after_warm_reopen_is_a_cache_hit(self, tmp_path):
        path = tmp_path / "db"
        with Database.open(path, structure=fresh_structure()) as db:
            want = sorted(db.query(EXAMPLE).answers().all())
            result = db.checkpoint()
            assert result.warm_entries >= 1
        with Database.open(path) as db:
            query = db.query(EXAMPLE)
            stats = db.stats()
            assert stats["hits"] >= 1 and stats["misses"] == 0
            assert sorted(query.answers().all()) == want

    def test_warm_entries_replay_the_wal_tail_maintained(self, tmp_path):
        path = tmp_path / "db"
        with Database.open(path, structure=fresh_structure()) as db:
            db.query(EXAMPLE)
            db.checkpoint()
            db.insert_fact("B", missing_unary(db.structure))
            want = oracle(db.structure)
        # Reopen: the warm pipeline is seeded at the snapshot version,
        # then the WAL tail replays *through* it (maintenance, not
        # rebuild) — the first query is still a hit and still correct.
        with Database.open(path) as db:
            query = db.query(EXAMPLE)
            stats = db.stats()
            assert stats["misses"] == 0
            assert stats["maintained_plans"] >= 1
            assert sorted(query.answers().all()) == want

    def test_cold_reopen_on_demand(self, tmp_path):
        path = tmp_path / "db"
        with Database.open(path, structure=fresh_structure()) as db:
            want = sorted(db.query(EXAMPLE).answers().all())
            db.checkpoint()
        with Database.open(path, load_warm=False) as db:
            query = db.query(EXAMPLE)
            assert db.stats()["misses"] == 1
            assert sorted(query.answers().all()) == want


class TestBrokenStore:
    def test_failed_append_fails_the_commit_and_latches(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "db"
        with Database.open(path, structure=fresh_structure()) as db:
            fingerprint = db.structure_fingerprint

            def explode(record):
                raise OSError("disk full")

            monkeypatch.setattr(db._store, "append", explode)
            with pytest.raises(DurabilityError, match="disk full"):
                db.insert_fact("B", missing_unary(db.structure))
            # Further commits are refused outright: the WAL no longer
            # reflects the head, so acknowledging anything would lie.
            with pytest.raises(DurabilityError, match="checkpoint"):
                db.insert_fact("B", missing_unary(db.structure))
            monkeypatch.undo()
            # A checkpoint re-establishes an on-disk base ...
            db.checkpoint()
            element = missing_unary(db.structure)
            db.insert_fact("B", element)  # ... and commits flow again
            assert db.structure.has_fact("B", element)
            assert db.structure_fingerprint != fingerprint


class TestWarmForks:
    def test_pinned_overlapping_commit_keeps_plans_warm(self):
        structure = fresh_structure()
        with Database(structure) as db:
            query = db.query(EXAMPLE)
            before = oracle(db.structure)
            assert db.stats()["maintained_plans"] == 1
            snap = db.snapshot()
            result = db.apply(
                [("insert", "B", (missing_unary(db.structure),))]
            )
            assert result.forked
            # The caveat under test: the forked head used to come up
            # cold (maintained_plans == 0, next query re-preprocesses).
            assert result.maintained_plans >= 1
            misses_before = db.stats()["misses"]
            fresh = db.query(EXAMPLE)
            assert db.stats()["misses"] == misses_before  # cache hit
            assert sorted(fresh.answers().all()) == oracle(db.structure)
            # The pinned side is untouched by the fork.
            assert sorted(snap.query(EXAMPLE).answers().all()) == before
            snap.close()

    def test_warm_fork_chain_stays_correct(self):
        with Database(fresh_structure()) as db:
            db.query(EXAMPLE)
            pins = []
            for _ in range(3):
                pins.append(db.snapshot())
                element = missing_unary(db.structure)
                result = db.apply([("insert", "B", (element,))])
                assert result.forked and result.maintained_plans >= 1
                assert sorted(db.query(EXAMPLE).answers().all()) == oracle(
                    db.structure
                )
            for pin in pins:
                pin.close()


class TestWarmForkDegradation:
    """Injected failures in the warm-fork path must warn, not vanish —
    the commit still succeeds and the new head simply comes up cold."""

    def test_clone_failure_warns_and_commits_cold(self, monkeypatch):
        import repro.session.database as database_module

        with Database(fresh_structure()) as db:
            db.query(EXAMPLE)
            assert db.stats()["maintained_plans"] == 1
            snap = db.snapshot()

            def explode(pipeline):
                raise RuntimeError("injected clone failure")

            monkeypatch.setattr(
                database_module, "PipelineMaintainer", explode
            )
            with pytest.warns(MaintenanceWarning, match="cloning"):
                result = db.apply(
                    [("insert", "B", (missing_unary(db.structure),))]
                )
            monkeypatch.undo()
            assert result.forked
            assert result.maintained_plans == 0
            # Cold but correct: the next query rebuilds and agrees.
            assert sorted(db.query(EXAMPLE).answers().all()) == oracle(
                db.structure
            )
            snap.close()

    def test_refresh_failure_warns_and_commits_cold(self, monkeypatch):
        from repro.core.dynamic import PipelineMaintainer

        with Database(fresh_structure()) as db:
            db.query(EXAMPLE)
            assert db.stats()["maintained_plans"] == 1
            snap = db.snapshot()

            def explode(self, touched, region):
                raise RuntimeError("injected refresh failure")

            monkeypatch.setattr(PipelineMaintainer, "refresh", explode)
            with pytest.warns(MaintenanceWarning, match="refreshing"):
                result = db.apply(
                    [("insert", "B", (missing_unary(db.structure),))]
                )
            monkeypatch.undo()
            assert result.forked
            assert result.maintained_plans == 0
            assert sorted(db.query(EXAMPLE).answers().all()) == oracle(
                db.structure
            )
            snap.close()


class TestRetention:
    def test_exhausted_answers_release_their_pin(self):
        with Database(fresh_structure()) as db:
            answers = db.query(EXAMPLE).answers()
            collected = answers.all()  # exhausts the source: pin released
            result = db.apply(
                [("insert", "B", (missing_unary(db.structure),))]
            )
            assert not result.forked, "sealed handle still pinned a version"
            # The sealed handle still serves its snapshot's answers.
            assert answers.all() == collected
            assert answers.test(collected[0])
            domain = list(db.structure.domain)
            non_answer = next(
                (x, y)
                for x in domain
                for y in domain
                if (x, y) not in set(collected)
            )
            assert not answers.test(non_answer)

    def test_partially_consumed_answers_still_pin(self):
        with Database(fresh_structure()) as db:
            answers = db.query(EXAMPLE).answers()
            first = next(iter(answers))
            result = db.apply(
                [("insert", "B", (missing_unary(db.structure),))]
            )
            assert result.forked
            assert first is not None
            answers.cancel()

    def test_retention_budget_overflow_is_loud(self):
        with Database(fresh_structure(), retention_budget=1) as db:
            db.query(EXAMPLE)
            snap = db.snapshot()
            db.apply([("insert", "B", (missing_unary(db.structure),))])
            # One superseded version is now pinned (snap): the budget is
            # exhausted, so the next pinned-overlapping commit refuses.
            later = db.snapshot()
            with pytest.raises(RetentionLimitError, match="superseded"):
                db.apply([("insert", "B", (missing_unary(db.structure),))])
            # The refused commit changed nothing.
            assert sorted(later.query(EXAMPLE).answers().all()) == sorted(
                db.query(EXAMPLE).answers().all()
            )
            snap.close()  # releasing the superseded pin unblocks writes
            db.apply([("insert", "B", (missing_unary(db.structure),))])
            later.close()

    def test_budget_validates(self):
        from repro.errors import EngineError

        with pytest.raises(EngineError, match="retention_budget"):
            Database(fresh_structure(), retention_budget=0)


class TestWriteGuard:
    def test_direct_mutation_is_refused(self):
        structure = fresh_structure()
        with Database(structure) as db:
            with pytest.raises(GuardedStructureError) as excinfo:
                structure.add_fact("B", missing_unary(structure))
            message = str(excinfo.value)
            assert "db.transaction()" in message
            assert "db.insert_fact()" in message
            with pytest.raises(GuardedStructureError):
                structure.remove_fact("B", next(iter(structure.facts("B")))[0])
            # The session's own write path is unaffected.
            db.insert_fact("B", missing_unary(structure))

    def test_close_releases_the_guard(self):
        structure = fresh_structure()
        db = Database(structure)
        db.close()
        structure.add_fact("B", missing_unary(structure))  # fine again

    def test_guard_opt_out(self):
        structure = fresh_structure()
        with Database(structure, guard_writes=False) as db:
            structure.add_fact("B", missing_unary(structure))
            assert db is not None
