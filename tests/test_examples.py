"""Smoke tests: every example script runs end to end (downscaled)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name, argv):
    monkeypatch.setattr(sys, "argv", [name] + argv)
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py", [])
        assert "|q(A)| = 8" in out
        assert "blue 0 with red 3" in out

    def test_social_recommendations(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "social_recommendations.py", ["120"]
        )
        assert "candidate pairs" in out
        assert "RAM steps per answer" in out
        assert "newcomers with no active friend" in out

    def test_sensor_grid(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "sensor_grid.py", ["6", "6"])
        assert "global invariants" in out
        assert "hand-off pairs" in out

    def test_delay_experiment(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "delay_experiment.py", ["120"])
        assert "skip-based enumeration" in out
        assert "list-join baseline" in out

    def test_dynamic_stream(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "dynamic_stream.py", ["100", "6"]
        )
        assert "updates maintained" in out
        assert "True" in out  # maintained count == fresh count
