"""Shared fixtures: small structures and a corpus of FO queries.

The corpus is the library's oracle workhorse: every algorithm is compared
against the naive reference semantics on these (structure, query) pairs.
"""

from __future__ import annotations

import pytest

from repro.fo.parser import parse
from repro.structures import (
    Signature,
    Structure,
    cycle_graph,
    grid_graph,
    padded_clique,
    random_colored_graph,
    random_structure,
)


@pytest.fixture
def tiny_graph() -> Structure:
    """Example 2.3 by hand: 4 nodes, one blue, one red, one edge."""
    db = Structure(Signature.of(E=2, B=1, R=1), range(4))
    db.add_fact("B", 0)
    db.add_fact("B", 1)
    db.add_fact("R", 2)
    db.add_fact("R", 3)
    db.add_fact("E", 0, 2)
    db.add_fact("E", 2, 0)
    return db


@pytest.fixture
def small_colored() -> Structure:
    return random_colored_graph(20, max_degree=3, seed=11)


@pytest.fixture
def medium_colored() -> Structure:
    return random_colored_graph(60, max_degree=4, seed=5)


@pytest.fixture
def three_colored() -> Structure:
    return random_colored_graph(16, max_degree=3, colors=("B", "R", "G"), seed=3)


@pytest.fixture
def ternary_structure() -> Structure:
    return random_structure(Signature.of(T=3, B=1), 15, max_degree=4, seed=2)


@pytest.fixture
def clique_structure() -> Structure:
    return padded_clique(4, 18, colors=("B", "R"), seed=1)


@pytest.fixture
def grid_structure() -> Structure:
    return grid_graph(4, 4, colors=("B", "R"), seed=4)


@pytest.fixture
def ring_structure() -> Structure:
    return cycle_graph(15, colors=("B", "R"), seed=6)


# The oracle query corpus, grouped by what they exercise.  Every query is
# over the signature {E/2, B/1, R/1} (optionally G/1).

QUANTIFIER_FREE_QUERIES = [
    "B(x)",
    "B(x) & R(y) & ~E(x,y)",                          # Example 2.3
    "B(x) & R(y) & E(x,y)",
    "B(x) & R(y)",
    "B(x) | R(x)",
    "~B(x) & ~R(x)",
    "B(x) & R(y) & x != y",
    "B(x) & B(y) & ~E(x,y) & ~E(y,x) & x != y",
    "E(x,y) & E(y,z)",
    "B(x) & R(y) & (E(x,y) | E(y,x))",
    "dist(x,y) <= 2 & B(x) & R(y)",
    "dist(x,y) > 2 & B(x) & R(y)",
]

EXISTENTIAL_QUERIES = [
    "exists z. E(x,z) & R(z)",
    "exists z. E(x,z) & E(z,y) & x != y",
    "exists z. R(z) & ~E(x,z) & ~E(z,y)",
    "B(x) & exists z. (R(z) & dist(x,z) > 2)",
    "exists z. exists w. E(z,w) & B(z) & R(w) & ~E(x,z)",
]

UNIVERSAL_QUERIES = [
    "forall z. E(x,z) -> B(z)",
    "B(x) & forall z. (E(x,z) -> ~R(z))",
]

RELATIVIZED_QUERIES = [
    "exists z in N2(x). B(z) & E(x,z)",
    "forall z in N1(x). B(z) | R(z)",
    "exists z in N2(x,y). R(z)",
]

SENTENCES = [
    "exists x. exists y. B(x) & R(y) & ~E(x,y)",
    "forall x. B(x) | R(x)",
    "exists x. forall y. E(x,y) -> R(y)",
    "exists x. exists y. dist(x,y) > 3 & B(x) & B(y)",
    "exists x. B(x) & R(x)",
]

ALL_NONBOOLEAN_QUERIES = (
    QUANTIFIER_FREE_QUERIES
    + EXISTENTIAL_QUERIES
    + UNIVERSAL_QUERIES
    + RELATIVIZED_QUERIES
)


@pytest.fixture(params=ALL_NONBOOLEAN_QUERIES)
def corpus_query(request):
    return parse(request.param)


@pytest.fixture(params=QUANTIFIER_FREE_QUERIES)
def quantifier_free_query(request):
    return parse(request.param)


@pytest.fixture(params=SENTENCES)
def corpus_sentence(request):
    return parse(request.param)
