"""Unit tests for the engine: cache keys, LRU, paging, streaming,
cancellation, the execution-mode heuristic, and preprocessing sharing."""

from __future__ import annotations

import pytest

from repro import prepare
from repro.engine import QueryBatch, parallel_enumerate
from repro.engine.cache import PipelineCache, normalize_formula
from repro.core.enumeration import arm_enumerator, enumerate_branch
from repro.engine.executor import branch_works, decide_mode, plan_work_units
from repro.structures.random_gen import random_colored_graph
from repro.errors import CancelledResultError, EngineError, ResultCancelledError
from repro.fo.parser import parse
from repro.storage.cost_model import (
    choose_execution_mode,
    estimate_branch_work,
    estimate_count_work,
)
from repro.structures.serialize import fingerprint

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


class TestFingerprint:
    def test_stable_and_order_independent(self, tiny_graph):
        first = fingerprint(tiny_graph)
        assert first == fingerprint(tiny_graph)
        clone = tiny_graph.copy()
        assert fingerprint(clone) == first

    def test_changes_on_mutation(self, tiny_graph):
        before = fingerprint(tiny_graph)
        tiny_graph.add_fact("B", 3)
        assert fingerprint(tiny_graph) != before
        tiny_graph.remove_fact("B", 3)
        assert fingerprint(tiny_graph) == before

    def test_handles_tuple_elements(self, grid_structure):
        # Grid elements are (row, col) pairs the text format rejects.
        assert len(fingerprint(grid_structure)) == 64

    def test_version_counts_effective_mutations(self, tiny_graph):
        version = tiny_graph.version
        tiny_graph.add_fact("B", 0)  # already present: no-op
        assert tiny_graph.version == version
        tiny_graph.add_fact("B", 3)
        assert tiny_graph.version == version + 1


class TestPipelineCache:
    def test_hit_returns_same_pipeline(self, small_colored):
        cache = PipelineCache()
        first, key1 = cache.get_or_build(small_colored, EXAMPLE)
        second, key2 = cache.get_or_build(small_colored, EXAMPLE)
        assert first is second
        assert key1 == key2
        assert cache.stats()["hits"] == 1

    def test_normalization_merges_spellings(self, small_colored):
        cache = PipelineCache()
        first, _ = cache.get_or_build(small_colored, "B(x) & R(y)")
        second, _ = cache.get_or_build(small_colored, "(B(x)) & (R(y))")
        assert first is second

    def test_distinct_eps_distinct_entries(self, small_colored):
        cache = PipelineCache()
        first, _ = cache.get_or_build(small_colored, EXAMPLE, eps=0.5)
        second, _ = cache.get_or_build(small_colored, EXAMPLE, eps=0.25)
        assert first is not second

    def test_retained_entries_never_evicted_and_never_starve_head(self):
        # Regression: with retained entries at/over capacity, put() must
        # neither evict a pinned entry nor the entry it just inserted —
        # the capacity budget applies to the unpinned population only.
        cache = PipelineCache(capacity=2)
        cache.retain("old")
        cache.put(("old", "q1", None, 0.5), "pinned-1")
        cache.put(("old", "q2", None, 0.5), "pinned-2")
        cache.put(("head", "q1", None, 0.5), "fresh")
        assert cache.get(("head", "q1", None, 0.5)) == "fresh", (
            "the just-inserted head entry was evicted"
        )
        assert cache.get(("old", "q1", None, 0.5)) == "pinned-1"
        assert cache.get(("old", "q2", None, 0.5)) == "pinned-2"
        # Unpinned population is still bounded by capacity.
        for index in range(5):
            cache.put(("head", f"extra{index}", None, 0.5), index)
        unpinned = sum(1 for k in cache._entries if k[0] == "head")
        assert unpinned <= 2
        # Releasing the pin restores plain LRU behavior.
        cache.release("old")
        assert not cache.retained("old")

    def test_distinct_order_distinct_entries(self, small_colored):
        cache = PipelineCache()
        first, _ = cache.get_or_build(small_colored, EXAMPLE, order=["x", "y"])
        second, _ = cache.get_or_build(small_colored, EXAMPLE, order=["y", "x"])
        assert first is not second

    def test_lru_eviction(self, small_colored):
        cache = PipelineCache(capacity=2)
        cache.get_or_build(small_colored, "B(x)")
        cache.get_or_build(small_colored, "R(x)")
        cache.get_or_build(small_colored, "B(x) & R(y)")
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        # "B(x)" was evicted; rebuilding is a miss.
        cache.get_or_build(small_colored, "B(x)")
        assert cache.stats()["misses"] == 4

    def test_normalize_formula_text(self):
        assert normalize_formula(parse("B(x) & R(y)")) == normalize_formula(
            parse("(B(x)) & (R(y))")
        )


class TestHeuristic:
    def test_empty_branch_costs_nothing(self):
        assert estimate_branch_work([10, 0, 5], 4) == 0

    def test_work_scales_with_lists_and_degree(self):
        small = estimate_branch_work([10, 10], 2)
        bigger = estimate_branch_work([100, 100], 2)
        assert bigger > small
        assert estimate_branch_work([10, 10], 8) > small

    def test_single_heavy_branch_still_parallelizes(self):
        # Intra-branch sharding makes one heavy branch splittable.
        assert choose_execution_mode([10**9], workers=8) == "process"

    def test_single_tiny_branch_is_serial(self):
        assert choose_execution_mode([10], workers=8) == "serial"

    def test_one_worker_is_serial(self):
        assert choose_execution_mode([10**6, 10**6], workers=1) == "serial"

    def test_small_work_is_serial(self):
        assert choose_execution_mode([10, 10], workers=4) == "serial"

    def test_medium_work_is_thread(self):
        assert choose_execution_mode([50_000, 50_000], workers=4) == "thread"

    def test_large_work_is_process(self):
        assert choose_execution_mode([10**6, 10**6], workers=4) == "process"

    def test_decide_mode_rejects_bad_mode(self, small_colored):
        prepared = prepare(small_colored, EXAMPLE)
        with pytest.raises(EngineError):
            decide_mode(prepared.pipeline, workers=2, mode="fiber")

    def test_branch_works_matches_branches(self, small_colored):
        prepared = prepare(small_colored, EXAMPLE)
        works = branch_works(prepared.pipeline)
        assert len(works) == prepared.pipeline.branch_count

    def test_count_works_matches_branches(self, small_colored):
        from repro.engine import count_works

        prepared = prepare(small_colored, EXAMPLE)
        works = count_works(prepared.pipeline)
        assert len(works) == prepared.pipeline.branch_count
        assert all(work >= 1 for work in works)

    def test_count_work_far_below_enumeration_work(self):
        # Counting never materializes the quadratic answer set.
        sizes = [1000, 1000]
        assert estimate_count_work(sizes, 4) < estimate_branch_work(sizes, 4)

    def test_count_work_grows_with_blocks(self):
        two = estimate_count_work([50, 50], 3)
        three = estimate_count_work([50, 50, 50], 3)
        assert three > two  # 2^(b choose 2) leaves

    def test_decide_count_mode_rejects_bad_mode(self, small_colored):
        from repro.engine import decide_count_mode

        prepared = prepare(small_colored, EXAMPLE)
        with pytest.raises(EngineError):
            decide_count_mode(prepared.pipeline, workers=2, mode="fiber")
        assert decide_count_mode(prepared.pipeline, workers=1) == ("serial", 1)


class TestResultHandle:
    def test_paging_covers_all_answers(self, medium_colored):
        batch = QueryBatch(medium_colored)
        serial = list(prepare(medium_colored, EXAMPLE).enumerate())
        handle = batch.submit(EXAMPLE)
        paged = []
        index = 0
        while True:
            page = handle.page(index, size=37)
            if not page:
                break
            paged.extend(page)
            index += 1
        assert paged == serial

    def test_page_is_idempotent(self, small_colored):
        handle = QueryBatch(small_colored).submit(EXAMPLE)
        assert handle.page(0, size=5) == handle.page(0, size=5)

    def test_bad_page_request(self, small_colored):
        handle = QueryBatch(small_colored).submit(EXAMPLE)
        with pytest.raises(EngineError):
            handle.page(-1)
        with pytest.raises(EngineError):
            handle.page(0, size=0)

    def test_stream_matches_serial_order(self, medium_colored):
        serial = list(prepare(medium_colored, EXAMPLE).enumerate())
        handle = QueryBatch(medium_colored).submit(EXAMPLE)
        assert list(handle.stream()) == serial

    def test_stream_restarts_from_materialized_prefix(self, small_colored):
        handle = QueryBatch(small_colored).submit(EXAMPLE)
        first = list(handle.stream())
        second = list(handle.stream())
        assert first == second

    def test_count_and_test(self, small_colored):
        prepared = prepare(small_colored, EXAMPLE)
        handle = QueryBatch(small_colored).submit(EXAMPLE)
        assert handle.count() == prepared.count()
        answers = prepared.answers()
        if answers:
            assert handle.test(answers[0])

    def test_cancel_stops_access(self, small_colored):
        handle = QueryBatch(small_colored).submit(EXAMPLE)
        stream = handle.stream()
        next(stream)
        handle.cancel()
        assert handle.cancelled
        with pytest.raises(ResultCancelledError):
            handle.page(0)
        with pytest.raises(ResultCancelledError):
            handle.all()

    def test_cancel_is_idempotent(self, small_colored):
        handle = QueryBatch(small_colored).submit(EXAMPLE)
        handle.cancel()
        handle.cancel()

    def test_count_after_cancel_raises(self, small_colored):
        """Regression: count() on a cancelled handle must raise a clear
        CancelledResultError — never compute from (or return alongside)
        the partial prefix the handle pulled before cancellation."""
        handle = QueryBatch(small_colored).submit(EXAMPLE)
        stream = handle.stream()
        next(stream)  # partial pull
        handle.cancel()
        with pytest.raises(CancelledResultError):
            handle.count()
        # The legacy exception name still catches it.
        with pytest.raises(ResultCancelledError):
            handle.count()

    def test_count_cached_before_cancel_still_raises(self, small_colored):
        handle = QueryBatch(small_colored).submit(EXAMPLE)
        assert handle.count() >= 0  # cache the count
        handle.cancel()
        with pytest.raises(CancelledResultError):
            handle.count()

    def test_trivial_query_handles(self, small_colored):
        # Localization collapses this to a constant-true formula.
        handle = QueryBatch(small_colored).submit("x = x")
        answers = handle.all()
        assert answers == [(a,) for a in small_colored.domain]


class TestSharedPreprocessing:
    def test_graph_template_shared_across_queries(self, small_colored):
        batch = QueryBatch(small_colored)
        batch.submit("B(x) & R(y) & ~E(x,y)").all()
        batch.submit("B(x) & B(y) & ~E(x,y) & x != y").all()
        # Same arity, same radius: one template serves both pipelines.
        assert batch.stats()["graph_templates"] == 1
        assert batch.stats()["misses"] == 2

    def test_shared_graph_answers_match_unshared(self, medium_colored):
        shared = QueryBatch(medium_colored, share_graphs=True)
        unshared = QueryBatch(medium_colored, share_graphs=False)
        for text in (EXAMPLE, "B(x) & R(y) & E(x,y)"):
            assert shared.submit(text).all() == unshared.submit(text).all()

    def test_pipelines_do_not_share_colors(self, small_colored):
        batch = QueryBatch(small_colored)
        first, _ = batch.prepare(EXAMPLE)
        second, _ = batch.prepare("B(x) & R(y) & E(x,y)")
        assert first.graph is not second.graph


class TestIntraBranchSharding:
    """One heavy branch must split into contiguous, exact shards."""

    TRIPLE = "B(x) & R(y) & G(z) & ~E(x,y) & ~E(y,z) & ~E(x,z)"

    @pytest.fixture(scope="class")
    def triple_pipeline(self):
        db = random_colored_graph(
            40, max_degree=4, colors=("B", "R", "G"), seed=42
        )
        return prepare(db, self.TRIPLE).pipeline

    def test_units_are_ordered_and_contiguous(self, triple_pipeline):
        units = plan_work_units(triple_pipeline, workers=4)
        assert [unit[0] for unit in units] == sorted(unit[0] for unit in units)
        per_branch = {}
        for branch_index, start, stop in units:
            per_branch.setdefault(branch_index, []).append((start, stop))
        for branch_index, slices in per_branch.items():
            if slices == [(0, None)]:
                continue
            size = arm_enumerator(triple_pipeline, branch_index).outer_size()
            assert slices[0][0] == 0
            assert slices[-1][1] == size
            for (_, left_stop), (right_start, _) in zip(slices, slices[1:]):
                assert left_stop == right_start, "shards must be contiguous"

    def test_heavy_branch_is_sharded(self, triple_pipeline):
        units = plan_work_units(triple_pipeline, workers=4)
        assert len(units) > triple_pipeline.branch_count

    def test_shard_concatenation_is_exact(self, triple_pipeline):
        units = plan_work_units(triple_pipeline, workers=4)
        sharded = []
        for branch_index, start, stop in units:
            outer_slice = None if start == 0 and stop is None else (start, stop)
            sharded.extend(
                enumerate_branch(
                    triple_pipeline, branch_index, outer_slice=outer_slice
                )
            )
        serial = []
        for branch_index in range(triple_pipeline.branch_count):
            serial.extend(enumerate_branch(triple_pipeline, branch_index))
        assert sharded == serial

    def test_shards_exact_in_precompute_mode(self, triple_pipeline):
        whole = list(
            enumerate_branch(triple_pipeline, 4, skip_mode="precompute")
        )
        size = arm_enumerator(
            triple_pipeline, 4, skip_mode="precompute"
        ).outer_size()
        pieces = []
        cut = size // 2
        for outer_slice in ((0, cut), (cut, size)):
            pieces.extend(
                enumerate_branch(
                    triple_pipeline,
                    4,
                    skip_mode="precompute",
                    outer_slice=outer_slice,
                )
            )
        assert pieces == whole


class TestExternalExecutors:
    def test_process_pool_with_thread_mode_falls_back(self, medium_colored):
        """Regression: thread mode must not pickle its closure into a
        caller-supplied process pool."""
        from concurrent.futures import ProcessPoolExecutor

        serial = list(prepare(medium_colored, EXAMPLE).enumerate())
        with ProcessPoolExecutor(max_workers=2) as pool:
            batch = QueryBatch(medium_colored, workers=2, executor=pool)
            got = batch.submit(EXAMPLE, mode="thread").all()
        assert got == serial

    def test_thread_pool_reused_for_thread_mode(self, medium_colored):
        from concurrent.futures import ThreadPoolExecutor

        serial = list(prepare(medium_colored, EXAMPLE).enumerate())
        with ThreadPoolExecutor(max_workers=2) as pool:
            batch = QueryBatch(medium_colored, workers=2, executor=pool)
            got = batch.submit(EXAMPLE, mode="thread").all()
        assert got == serial


class TestFailureRecovery:
    def test_retry_after_worker_failure_is_complete(self, medium_colored):
        """Regression: a failed pull must not leave partial answers that a
        retry would serve as the complete result set."""
        batch = QueryBatch(medium_colored)
        handle = batch.submit(EXAMPLE)
        want = list(prepare(medium_colored, EXAMPLE).enumerate())

        def broken_source():
            yield want[:2]
            raise RuntimeError("worker died")

        handle._source = broken_source()
        with pytest.raises(RuntimeError):
            handle.all()
        # The retry rebuilds a fresh source and returns everything.
        assert handle.all() == want


class TestBudgetPropagation:
    def test_rebuild_spec_carries_budget(self, small_colored):
        from repro.fo.localize import LocalizationBudget

        budget = LocalizationBudget(max_derived=10_000)
        prepared = prepare(small_colored, EXAMPLE, budget=budget)
        spec = prepared.pipeline.rebuild_spec()
        assert spec[4] is budget
        from repro.engine.executor import _default_spec_key

        keyed = _default_spec_key(prepared.pipeline)
        default = _default_spec_key(prepare(small_colored, EXAMPLE).pipeline)
        assert keyed != default, "budget must distinguish worker memo keys"


class TestParallelEnumerateEdgeCases:
    def test_empty_answer_set(self, small_colored):
        prepared = prepare(small_colored, "B(x) & R(x) & ~(x = x)")
        assert list(parallel_enumerate(prepared.pipeline, workers=2)) == []

    def test_workers_validation(self, small_colored):
        prepared = prepare(small_colored, EXAMPLE)
        with pytest.raises(EngineError):
            list(parallel_enumerate(prepared.pipeline, workers=0))

    def test_batch_rejects_bad_workers_eagerly(self, small_colored):
        with pytest.raises(EngineError):
            QueryBatch(small_colored, workers=0)
