"""The columnar answer transport: codec units + differential suite.

The transport's contract is exact: for every (backend, codec, chunk
size) configuration the merged answer sequence — set AND order — must be
byte-identical to serial enumeration, including ternary relations,
nested quantifiers, and non-integer domain elements routed through the
intern table.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.transport import (
    ColumnarCodec,
    InternTable,
    TransferStats,
    encode_answers,
    estimate_encoded_bytes,
    resolve_transport,
    width_for,
)
from repro.errors import EngineError
from repro.session import Database
from repro.structures import Signature, Structure

# Chunk sizes the differential sweep exercises: degenerate (1), prime &
# misaligned with every answer count (7), and the cost-model default.
CHUNK_SIZES = (1, 7, None)
TRANSPORTS = ("columnar", "pickle")


class TestInternTable:
    def test_roundtrip_ints(self):
        table = InternTable(range(10, 0, -1))
        for ident, element in enumerate(table.elements):
            assert table.id_of(element) == ident
            assert table.element(ident) == element

    def test_handles_arbitrary_hashables(self):
        table = InternTable(["alice", ("pair", 1), 7, frozenset({2})])
        for element in table.elements:
            assert table.element(table.id_of(element)) == element

    def test_id_width_scales_with_domain(self):
        assert InternTable(range(5)).id_width() == 1
        assert InternTable(range(256)).id_width() == 1
        assert InternTable(range(257)).id_width() == 2
        assert InternTable(range(70_000)).id_width() == 4

    def test_pickle_ships_elements_only(self):
        table = InternTable(["x", "y", "z"])
        clone = pickle.loads(pickle.dumps(table))
        assert clone.elements == table.elements
        assert clone.id_of("z") == 2

    def test_width_for_rejects_negative(self):
        with pytest.raises(EngineError):
            width_for(-1)


class TestColumnarCodec:
    def _codec(self, n=300):
        return ColumnarCodec(InternTable(range(n)))

    def test_roundtrip(self):
        codec = self._codec()
        rows = [(1, 2, 3), (1, 5, 299), (0, 0, 0), (298, 1, 2)]
        assert codec.decode(codec.encode(rows)) == rows

    def test_roundtrip_empty(self):
        codec = self._codec()
        assert codec.decode(codec.encode([])) == []

    def test_roundtrip_single_row_and_column(self):
        codec = self._codec()
        assert codec.decode(codec.encode([(7,)])) == [(7,)]

    def test_constant_column_costs_no_per_row_bytes(self):
        codec = self._codec()
        constant = codec.encode([(5, i) for i in range(200)])
        varying = codec.encode([(i, i) for i in range(200)])
        assert len(constant) < len(varying)

    def test_roundtrip_string_elements(self):
        names = [f"user-{i}" for i in range(40)]
        codec = ColumnarCodec(InternTable(names))
        rows = [(names[3], names[39]), (names[0], names[0])]
        assert codec.decode(codec.encode(rows)) == rows

    def test_large_chunk_compresses_below_pickle(self):
        codec = self._codec()
        rows = [(i % 7, (i * 3) % 300, i % 300) for i in range(5000)]
        encoded = codec.encode(rows)
        assert codec.decode(encoded) == rows
        assert len(encoded) * 2 < len(pickle.dumps(rows))

    def test_rejects_unknown_flag(self):
        codec = self._codec()
        with pytest.raises(EngineError):
            codec.decode(b"\x07junk")

    def test_encode_answers_bounds_chunks(self):
        codec = self._codec()
        rows = [(i, i, i) for i in range(25)]
        chunks = encode_answers(iter(rows), codec, chunk_rows=7)
        assert len(chunks) == 4  # 7 + 7 + 7 + 4
        decoded = [answer for chunk in chunks for answer in codec.decode(chunk)]
        assert decoded == rows

    def test_encode_answers_rejects_bad_chunk_rows(self):
        with pytest.raises(EngineError):
            encode_answers(iter([]), self._codec(), chunk_rows=0)

    def test_estimate_encoded_bytes_monotone(self):
        small = estimate_encoded_bytes(10, 2, 1, 100)
        large = estimate_encoded_bytes(10_000, 2, 1, 100)
        assert 0 < small < large
        assert estimate_encoded_bytes(0, 2, 1, 100) == 0

    def test_resolve_transport(self):
        assert resolve_transport(None) == "columnar"
        assert resolve_transport("pickle") == "pickle"
        with pytest.raises(EngineError):
            resolve_transport("carrier-pigeon")


class TestTransferStats:
    def test_accumulates(self):
        stats = TransferStats()
        stats.record(100, 10)
        stats.record(50, 5)
        report = stats.as_dict()
        assert report["chunks"] == 2
        assert report["bytes_received"] == 150
        assert report["rows"] == 15
        assert report["first_chunk_at"] <= report["last_chunk_at"]
        assert report["sources"] == {}

    def test_per_source_attribution(self):
        stats = TransferStats()
        stats.record(100, 10, source="b0[0:]")
        stats.record(60, 6, source="b0[0:]")
        stats.record(50, 5, source="b1[0:]")
        stats.note_done("b0[0:]", at=123.0)
        stats.note_done("b1[0:]")
        sources = stats.as_dict()["sources"]
        assert sources["b0[0:]"]["chunks"] == 2
        assert sources["b0[0:]"]["bytes"] == 160
        assert sources["b0[0:]"]["rows"] == 16
        assert sources["b0[0:]"]["done_at"] == 123.0
        assert sources["b0[0:]"]["first_at"] <= sources["b0[0:]"]["last_at"]
        assert sources["b1[0:]"]["done_at"] is not None


def string_domain_structure() -> Structure:
    """A colored graph whose elements are strings (intern-table path)."""
    names = [f"node-{i:02d}" for i in range(18)]
    db = Structure(Signature.of(E=2, B=1, R=1), names)
    for i, name in enumerate(names):
        if i % 2 == 0:
            db.add_fact("B", name)
        if i % 3 == 0:
            db.add_fact("R", name)
        other = names[(i * 5 + 1) % len(names)]
        if other != name:
            db.add_fact("E", name, other)
            db.add_fact("E", other, name)
    return db


def sweep(db: Database, query: str) -> None:
    """Every backend x transport x chunk size must equal serial exactly."""
    serial = db.query(query, backend="serial").answers()
    expected = serial.all()
    expected_count = serial.count()
    for backend in ("serial", "thread", "process"):
        for transport in TRANSPORTS:
            for chunk_rows in CHUNK_SIZES:
                answers = db.query(
                    query,
                    backend=backend,
                    transport=transport,
                    chunk_rows=chunk_rows,
                ).answers()
                label = f"{backend}/{transport}/chunk={chunk_rows}"
                assert answers.page(0, 3) == expected[:3], label
                assert answers.all() == expected, label
                assert answers.count() == expected_count, label
                if backend == "process":
                    assert answers.transport_used == transport, label
                    if transport == "columnar" and expected:
                        assert answers.transport_stats.rows == len(expected), label
                        assert answers.transport_stats.bytes_received > 0, label
                else:
                    assert answers.transport_used == "none", label


class TestTransportDifferential:
    def test_binary_query_all_configs(self, small_colored):
        with Database(small_colored, workers=2) as db:
            sweep(db, "B(x) & R(y) & ~E(x,y)")

    def test_ternary_relation_all_configs(self, ternary_structure):
        with Database(ternary_structure, workers=2) as db:
            sweep(db, "T(x,y,z) & B(x)")

    def test_nested_quantifiers_all_configs(self, small_colored):
        with Database(small_colored, workers=2) as db:
            sweep(db, "exists z. exists w. E(z,w) & B(z) & R(w) & ~E(x,z)")

    def test_string_domain_through_intern_table(self):
        with Database(string_domain_structure(), workers=2) as db:
            sweep(db, "B(x) & R(y) & ~E(x,y)")

    def test_empty_answer_set_all_configs(self, small_colored):
        with Database(small_colored, workers=2) as db:
            sweep(db, "B(x) & R(x) & ~(x = x)")

    def test_stream_prefix_matches_serial(self, small_colored):
        with Database(small_colored, workers=2) as db:
            expected = db.query("B(x) & R(y)", backend="serial").answers().all()
            answers = db.query(
                "B(x) & R(y)", backend="process", chunk_rows=7
            ).answers()
            prefix = []
            for answer in answers.stream():
                prefix.append(answer)
                if len(prefix) == 5:
                    break
            assert prefix == expected[:5]

    def test_pool_accounts_received_bytes(self, small_colored):
        with Database(small_colored, workers=2) as db:
            assert db.pool.bytes_received == 0
            db.query("B(x) & R(y)", backend="process").answers().all()
            assert db.pool.bytes_received > 0
            assert db.stats()["pool_bytes_received"] == db.pool.bytes_received


class TestExplainReportsTransport:
    def test_process_plan_reports_columnar(self, small_colored):
        with Database(small_colored, workers=2) as db:
            plan = db.query("B(x) & R(y)", backend="process").explain()
            assert plan.transport == "columnar"
            assert plan.chunk_rows >= 1
            assert plan.transfer_bytes > 0
            assert len(plan.transfer_costs) == plan.branch_count
            text = plan.describe()
            assert "transport: columnar" in text
            assert f"chunk_rows: {plan.chunk_rows}" in text

    def test_pickle_plan_reports_pickle(self, small_colored):
        with Database(small_colored, workers=2) as db:
            plan = db.query(
                "B(x) & R(y)", backend="process", transport="pickle"
            ).explain()
            assert plan.transport == "pickle"
            assert plan.chunk_rows is None
            assert plan.transfer_bytes > 0
            assert "transport: pickle" in plan.describe()

    def test_in_process_plan_reports_zero_copy(self, small_colored):
        with Database(small_colored, workers=2) as db:
            plan = db.query("B(x) & R(y)", backend="serial").explain()
            assert plan.transport == "none"
            assert plan.transfer_bytes == 0
            assert "zero-copy" in plan.describe()

    def test_chunk_rows_override_flows_to_plan(self, small_colored):
        with Database(small_colored, workers=2) as db:
            plan = db.query(
                "B(x) & R(y)", backend="process", chunk_rows=123
            ).explain()
            assert plan.chunk_rows == 123

    def test_cli_explain_prints_transport(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "query",
                    "-w",
                    "colored:n=24,d=3",
                    "-q",
                    "B(x) & R(y) & ~E(x,y)",
                    "--backend",
                    "process",
                    "--explain",
                    "--count",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "transport: columnar" in out
        assert "chunk_rows:" in out


class TestWorkerSpecCarriesIntern:
    def test_rebuild_spec_ships_built_intern_table(self, small_colored):
        from repro.core.pipeline import Pipeline
        from repro.fo.parser import parse

        pipeline = Pipeline(small_colored, parse("B(x) & R(y)"))
        # Lazy: paths that never move answers ship None...
        assert pipeline.rebuild_spec()[5] is None
        table = pipeline.intern_table
        # ...but once the transport built it, every spec carries it.
        spec = pipeline.rebuild_spec()
        assert spec[5] is table
        rebuilt = Pipeline(
            spec[0], spec[1], order=spec[2], eps=spec[3], budget=spec[4],
            intern=spec[5],
        )
        assert rebuilt.intern_table is table

    def test_worker_side_table_matches_parent_without_spec(self, small_colored):
        from repro.core.pipeline import Pipeline
        from repro.fo.parser import parse

        parent = Pipeline(small_colored, parse("B(x) & R(y)"))
        worker = Pipeline(small_colored, parse("B(x) & R(y)"), intern=None)
        assert worker.intern_table.elements == parent.intern_table.elements
