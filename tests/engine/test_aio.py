"""Tests for the asyncio front-end (`repro.engine.aio`).

Run with plain pytest via ``asyncio.run`` — no pytest-asyncio needed.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro import prepare
from repro.engine import AsyncQueryBatch, QueryBatch
from repro.errors import CancelledResultError, StaleResultError

EXAMPLE = "B(x) & R(y) & ~E(x,y)"
QUERIES = [
    "B(x)",
    "R(x)",
    "B(x) & R(y)",
    "B(x) & R(y) & ~E(x,y)",
    "B(x) & R(y) & E(x,y)",
    "B(x) & B(y) & x != y",
]


def run(coro):
    return asyncio.run(coro)


def mutate(structure, color="B"):
    """An effective mutation: color some element that lacks ``color``
    (a no-op add_fact would not bump Structure.version)."""
    victim = next(
        e for e in structure.domain if not structure.has_fact(color, e)
    )
    structure.add_fact(color, victim)


class TestConcurrentSubmits:
    def test_many_concurrent_awaits(self, medium_colored):
        """Many queries submitted and drained concurrently must each match
        their serial result exactly."""
        want = {
            text: list(prepare(medium_colored, text).enumerate())
            for text in QUERIES
        }

        async def main():
            async with AsyncQueryBatch(medium_colored, workers=2) as batch:
                handles = await asyncio.gather(
                    *[batch.submit(text) for text in QUERIES]
                )
                results = await asyncio.gather(
                    *[handle.all() for handle in handles]
                )
                counts = await asyncio.gather(
                    *[handle.count() for handle in handles]
                )
            return results, counts

        results, counts = run(main())
        for text, answers, count in zip(QUERIES, results, counts):
            assert answers == want[text], f"async answers diverge for {text}"
            assert count == len(want[text])

    def test_stream_matches_serial_order(self, medium_colored):
        serial = list(prepare(medium_colored, EXAMPLE).enumerate())

        async def main():
            async with AsyncQueryBatch(medium_colored, workers=2) as batch:
                handle = await batch.submit(EXAMPLE)
                return [answer async for answer in handle.stream(page_size=7)]

        assert run(main()) == serial

    def test_batch_stream_shortcut(self, small_colored):
        serial = list(prepare(small_colored, EXAMPLE).enumerate())

        async def main():
            async with AsyncQueryBatch(small_colored) as batch:
                return [a async for a in batch.stream(EXAMPLE)]

        assert run(main()) == serial

    def test_wrapping_an_existing_batch_leaves_it_open(self, small_colored):
        async def main():
            inner = QueryBatch(small_colored, workers=2)
            async with AsyncQueryBatch(inner) as batch:
                assert await batch.count(EXAMPLE) >= 0
            assert not inner.closed
            inner.close()

        run(main())

    def test_options_rejected_when_wrapping(self, small_colored):
        inner = QueryBatch(small_colored)
        with pytest.raises(TypeError):
            AsyncQueryBatch(inner, workers=2)
        inner.close()


class TestCancellation:
    def test_cancel_mid_stream_cancels_handle(self, medium_colored):
        """Cancelling the consuming task propagates to the handle, which
        releases its pool work; later access raises CancelledResultError."""

        async def main():
            async with AsyncQueryBatch(medium_colored, workers=2) as batch:
                handle = await batch.submit(EXAMPLE)
                started = asyncio.Event()

                async def consume():
                    async for _ in handle.stream(page_size=3):
                        started.set()
                        await asyncio.sleep(3600)  # park mid-stream

                task = asyncio.create_task(consume())
                await asyncio.wait_for(started.wait(), timeout=60)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                # The cancel lands once any in-flight pull retires.
                deadline = time.monotonic() + 30
                while not handle.cancelled and time.monotonic() < deadline:
                    await asyncio.sleep(0.01)
                assert handle.cancelled
                with pytest.raises(CancelledResultError):
                    await handle.all()
                with pytest.raises(CancelledResultError):
                    await handle.count()

        run(main())

    def test_abandoned_stream_cancels_handle(self, medium_colored):
        async def main():
            async with AsyncQueryBatch(medium_colored, workers=2) as batch:
                handle = await batch.submit(EXAMPLE)
                async for _ in handle.stream(page_size=2):
                    break  # abandon after one answer
                # The generator's finalizer runs on a later loop tick.
                deadline = time.monotonic() + 30
                while not handle.cancelled and time.monotonic() < deadline:
                    await asyncio.sleep(0.01)
                assert handle.cancelled

        run(main())

    def test_explicit_cancel(self, small_colored):
        async def main():
            async with AsyncQueryBatch(small_colored) as batch:
                handle = await batch.submit(EXAMPLE)
                await handle.page(0, size=3)
                await handle.cancel()
                assert handle.cancelled
                with pytest.raises(CancelledResultError):
                    await handle.page(0)

        run(main())

    def test_fully_consumed_stream_is_not_cancelled(self, small_colored):
        async def main():
            async with AsyncQueryBatch(small_colored) as batch:
                handle = await batch.submit(EXAMPLE)
                drained = [a async for a in handle.stream()]
                assert not handle.cancelled
                assert drained == await handle.all()

        run(main())


class TestStaleness:
    def test_stale_surfaces_through_awaitable(self, small_colored):
        """A dynamic update between pulls must raise StaleResultError out
        of the next ``await``, not serve pre-update answers."""

        async def main():
            async with AsyncQueryBatch(small_colored, workers=2) as batch:
                handle = await batch.submit(EXAMPLE)
                await handle.page(0, size=2)
                # Mutate the structure (bumps Structure.version).
                mutate(small_colored)
                assert handle.stale
                with pytest.raises(StaleResultError):
                    await handle.all()
                with pytest.raises(StaleResultError):
                    async for _ in handle.stream():
                        pass

        run(main())

    def test_stale_count_surfaces(self, small_colored):
        async def main():
            async with AsyncQueryBatch(small_colored) as batch:
                handle = await batch.submit(EXAMPLE)
                mutate(small_colored, color="R")
                with pytest.raises(StaleResultError):
                    await handle.count()

        run(main())
