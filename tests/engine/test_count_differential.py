"""Differential tests: ``parallel_count`` against serial ``count_answers``.

Theorem 2.5 makes ``|q(A)|`` a sum of independent per-branch counts, so
the parallel engine must return the *exact* serial integer — in every
execution mode, for every worker count, on every (structure, formula)
pair.  Any divergence is a bug in the branch splitting, the worker-side
pipeline rebuild, or the summation.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import prepare
from repro.core.counting import count_answers
from repro.engine import QueryBatch, WorkerPool, parallel_count
from repro.fo.semantics import naive_count

from strategies import (
    formulas,
    rejecting_unsupported,
    structures,
    ternary_structures,
)

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def shared_pool():
    """One long-lived pool for the whole module — warm reuse is exactly
    the regime the engine runs in, and it keeps process tests affordable."""
    with WorkerPool(2) as pool:
        yield pool


def prepare_or_reject(db, formula, order=None):
    with rejecting_unsupported():
        return prepare(db, formula, order=order)


def assert_counts_match(db, formula, pool, modes=("serial", "thread")):
    order = sorted(formula.free)
    prepared = prepare_or_reject(db, formula, order)
    serial = count_answers(prepared.pipeline)
    for mode in modes:
        for workers in (1, 2, 3, 4):
            got = parallel_count(
                prepared.pipeline, workers=workers, mode=mode, pool=pool
            )
            assert got == serial, (
                f"mode={mode}, workers={workers}: parallel count {got} "
                f"!= serial {serial}"
            )
    # And serial itself against the naive oracle, closing the loop.
    assert serial == naive_count(formula, db)


class TestBinarySignature:
    @given(
        db=structures(max_n=10),
        formula=formulas(free_count=2, max_depth=3, max_quantifiers=1),
    )
    @settings(max_examples=25, **SETTINGS)
    def test_quantified(self, db, formula, shared_pool):
        assert_counts_match(db, formula, shared_pool)

    @given(
        db=structures(max_n=12),
        formula=formulas(free_count=2, max_depth=3, max_quantifiers=0),
    )
    @settings(max_examples=25, **SETTINGS)
    def test_quantifier_free(self, db, formula, shared_pool):
        assert_counts_match(db, formula, shared_pool)

    @given(
        db=structures(max_n=8),
        formula=formulas(free_count=1, max_depth=3, max_quantifiers=3),
    )
    @settings(max_examples=10, **SETTINGS)
    def test_deep_quantifier_nesting(self, db, formula, shared_pool):
        assert_counts_match(db, formula, shared_pool)


class TestTernarySignature:
    @given(
        db=ternary_structures(max_n=10),
        formula=formulas(free_count=2, max_depth=3, max_quantifiers=0, ternary=True),
    )
    @settings(max_examples=20, **SETTINGS)
    def test_quantifier_free(self, db, formula, shared_pool):
        assert_counts_match(db, formula, shared_pool)

    @given(
        db=ternary_structures(max_n=8),
        formula=formulas(free_count=2, max_depth=2, max_quantifiers=1, ternary=True),
    )
    @settings(max_examples=10, **SETTINGS)
    def test_quantified(self, db, formula, shared_pool):
        assert_counts_match(db, formula, shared_pool)


class TestProcessMode:
    """Process tasks pickle specs and rebuild worker-side; a smaller
    Hypothesis budget plus a fixed corpus keeps the suite fast."""

    @given(
        db=structures(max_n=8),
        formula=formulas(free_count=2, max_depth=2, max_quantifiers=0),
    )
    @settings(max_examples=5, **SETTINGS)
    def test_random_pairs(self, db, formula, shared_pool):
        assert_counts_match(db, formula, shared_pool, modes=("process",))

    QUERIES = [
        "B(x) & R(y) & ~E(x,y)",
        "B(x) & R(y) & E(x,y)",
        "(B(x) | R(x)) & (B(y) | R(y)) & x != y & ~E(x,y)",
        "exists z. E(x,z) & R(z)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_corpus(self, medium_colored, text, workers, shared_pool):
        prepared = prepare(medium_colored, text)
        serial = count_answers(prepared.pipeline)
        got = parallel_count(
            prepared.pipeline, workers=workers, mode="process", pool=shared_pool
        )
        assert got == serial


class TestTrivialAndEmpty:
    def test_trivially_true(self, small_colored, shared_pool):
        prepared = prepare(small_colored, "x = x")
        serial = count_answers(prepared.pipeline)
        assert serial == small_colored.cardinality
        for mode in ("serial", "thread", "process"):
            assert (
                parallel_count(
                    prepared.pipeline, workers=2, mode=mode, pool=shared_pool
                )
                == serial
            )

    def test_empty_answer_set(self, small_colored, shared_pool):
        prepared = prepare(small_colored, "B(x) & R(x) & ~(x = x)")
        for mode in ("serial", "thread", "process"):
            assert (
                parallel_count(
                    prepared.pipeline, workers=2, mode=mode, pool=shared_pool
                )
                == 0
            )


class TestBatchCountPath:
    """QueryBatch.count() and ResultHandle.count() ride the same engine."""

    @given(
        db=structures(max_n=10),
        formula=formulas(free_count=2, max_depth=3, max_quantifiers=1),
    )
    @settings(max_examples=15, **SETTINGS)
    def test_batch_count_matches_serial(self, db, formula):
        order = sorted(formula.free)
        prepared = prepare_or_reject(db, formula, order)
        serial = count_answers(prepared.pipeline)
        with QueryBatch(db, workers=2) as batch:
            assert batch.count(formula, order=order) == serial
            assert batch.submit(formula, order=order).count() == serial

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_forced_modes_through_batch(self, medium_colored, mode):
        text = "B(x) & R(y) & ~E(x,y)"
        serial = count_answers(prepare(medium_colored, text).pipeline)
        with QueryBatch(medium_colored, workers=2, mode=mode) as batch:
            assert batch.count(text) == serial
