"""Engine caches vs. dynamic updates (insertions / deletions).

The contract: a mutation of the structure — direct, or through
``repro.core.dynamic.DynamicQuery`` sharing the same structure — must
(a) make every outstanding ResultHandle raise ``StaleResultError``
rather than serve pre-update answers, and (b) cause the next submission
to rebuild against the current state and agree with the dynamically
maintained pipeline and the naive oracle.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic import DynamicQuery
from repro.engine import QueryBatch
from repro.errors import StaleResultError
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers
from repro.fo.syntax import Var
from repro.structures.random_gen import random_colored_graph

EXAMPLE = "B(x) & R(y) & ~E(x,y)"
x, y = Var("x"), Var("y")


@pytest.fixture
def db():
    return random_colored_graph(24, max_degree=3, seed=7)


def missing_unary_fact(structure, relation="B"):
    """An element the relation does not yet hold of (a real insertion)."""
    return next(
        element
        for element in structure.domain
        if not structure.has_fact(relation, element)
    )


class TestStaleHandles:
    def test_insert_staleness(self, db):
        batch = QueryBatch(db)
        handle = batch.submit(EXAMPLE)
        handle.page(0, size=5)  # partially consumed
        db.add_fact("B", missing_unary_fact(db))
        assert handle.stale
        with pytest.raises(StaleResultError):
            handle.page(1, size=5)
        with pytest.raises(StaleResultError):
            handle.all()
        with pytest.raises(StaleResultError):
            handle.count()

    def test_delete_staleness(self, db):
        batch = QueryBatch(db)
        handle = batch.submit(EXAMPLE)
        some_edge = next(iter(db.facts("E")))
        db.remove_fact("E", *some_edge)
        with pytest.raises(StaleResultError):
            handle.all()

    def test_stream_raises_mid_iteration(self, db):
        batch = QueryBatch(db)
        handle = batch.submit(EXAMPLE)
        stream = handle.stream()
        next(stream)
        db.add_fact("B", missing_unary_fact(db))
        with pytest.raises(StaleResultError):
            next(stream)

    def test_noop_mutation_keeps_handle_fresh(self, db):
        batch = QueryBatch(db)
        handle = batch.submit(EXAMPLE)
        existing = next(iter(db.facts("B")))
        db.add_fact("B", *existing)  # already present: not a mutation
        handle.all()  # must not raise


class TestRebuildAfterUpdate:
    def test_resubmit_reflects_mutation(self, db):
        batch = QueryBatch(db)
        before = batch.submit(EXAMPLE).all()
        db.add_fact("B", missing_unary_fact(db))
        after = batch.submit(EXAMPLE).all()
        want = sorted(naive_answers(parse(EXAMPLE), db, order=(x, y)))
        assert sorted(after) == want
        assert before != after or sorted(before) == want

    def test_cache_and_templates_invalidated(self, db):
        batch = QueryBatch(db)
        first, _ = batch.prepare(EXAMPLE)
        assert batch.stats()["graph_templates"] == 1
        db.add_fact("B", missing_unary_fact(db))
        second, _ = batch.prepare(EXAMPLE)
        assert second is not first, "stale pipeline served after a mutation"
        # Old entries were dropped, not just shadowed.
        assert batch.stats()["entries"] == 1

    def test_agrees_with_dynamic_query(self):
        # DynamicQuery maintains its own pipeline in place on the same
        # structure the batch serves; both views must agree after updates.
        structure = random_colored_graph(20, max_degree=3, seed=13)
        dynamic = DynamicQuery(structure, EXAMPLE)
        batch = QueryBatch(structure)
        handle = batch.submit(EXAMPLE)
        handle.page(0)

        dynamic.insert_fact("E", 0, 5)
        dynamic.insert_fact("B", 7)
        dynamic.delete_fact("E", 0, 5)

        with pytest.raises(StaleResultError):
            handle.page(0)
        fresh = batch.submit(EXAMPLE).all()
        assert sorted(fresh) == sorted(dynamic.answers())
