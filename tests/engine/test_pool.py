"""Lifecycle tests for the long-lived worker pool.

What a service needs from its pool: lazy start (serial work costs no OS
resources), warm reuse across submissions, an idempotent ``close`` (also
via ``with``), transparent restart after a killed process worker, and —
enforced by the ``no_leaks`` fixture — no thread or process left behind.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro import prepare
from repro.engine import QueryBatch, WorkerPool, parallel_count
from repro.errors import EngineError

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


def _square(value):
    return value * value


@pytest.fixture
def no_leaks():
    """Snapshot live threads/children; fail if the test leaks either."""
    threads_before = set(threading.enumerate())
    children_before = set(multiprocessing.active_children())
    yield
    deadline = time.monotonic() + 10
    leaked_threads: list = []
    leaked_children: list = []
    while time.monotonic() < deadline:
        leaked_threads = [
            t
            for t in threading.enumerate()
            if t not in threads_before and t.is_alive()
        ]
        leaked_children = [
            p for p in multiprocessing.active_children() if p not in children_before
        ]
        if not leaked_threads and not leaked_children:
            break
        time.sleep(0.05)
    assert not leaked_children, f"leaked processes: {leaked_children}"
    assert not leaked_threads, f"leaked threads: {leaked_threads}"


class TestLazyStart:
    def test_no_executor_until_first_submit(self, no_leaks):
        with WorkerPool(2) as pool:
            stats = pool.stats()
            assert stats["thread_pool_live"] == 0
            assert stats["process_pool_live"] == 0
            pool.submit("thread", _square, 3)
            assert pool.stats()["thread_pool_live"] == 1
            assert pool.stats()["process_pool_live"] == 0

    def test_serial_batch_never_starts_a_pool(self, small_colored, no_leaks):
        with QueryBatch(small_colored) as batch:
            handle = batch.submit(EXAMPLE)
            handle.all()
            handle.count()
            stats = batch.stats()
            assert stats["pool_thread_pool_live"] == 0
            assert stats["pool_process_pool_live"] == 0

    def test_workers_validation(self):
        with pytest.raises(EngineError):
            WorkerPool(0)

    def test_unknown_mode_rejected(self, no_leaks):
        with WorkerPool(2) as pool:
            with pytest.raises(EngineError):
                pool.submit("fiber", _square, 3)
            with pytest.raises(EngineError):
                pool.executor_for("fiber")


class TestWarmReuse:
    def test_same_executor_across_submits(self, no_leaks):
        with WorkerPool(2) as pool:
            first = pool.executor_for("thread")
            assert pool.submit("thread", _square, 4).result() == 16
            assert pool.executor_for("thread") is first
            assert pool.stats()["submits"] == 1

    def test_process_workers_reused_across_submits(self, no_leaks):
        with WorkerPool(1) as pool:
            first = pool.submit("process", os.getpid).result(timeout=60)
            second = pool.submit("process", os.getpid).result(timeout=60)
            assert first == second, "warm pool must reuse its worker process"

    def test_batch_reuses_pool_across_queries(self, medium_colored, no_leaks):
        serial = list(prepare(medium_colored, EXAMPLE).enumerate())
        with QueryBatch(medium_colored, workers=2, mode="thread") as batch:
            assert batch.submit(EXAMPLE).all() == serial
            assert batch.submit("B(x) & R(y) & E(x,y)").all() is not None
            stats = batch.stats()
            assert stats["pool_thread_pool_live"] == 1
            assert stats["pool_submits"] > 0


class TestClose:
    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.submit("thread", _square, 2)
        pool.close()
        pool.close()
        assert pool.closed

    def test_context_manager_closes(self, no_leaks):
        with WorkerPool(2) as pool:
            pool.submit("thread", _square, 2)
            pool.submit("process", _square, 2).result(timeout=60)
        assert pool.closed
        with pytest.raises(EngineError):
            pool.submit("thread", _square, 2)

    def test_close_joins_all_workers(self, no_leaks):
        pool = WorkerPool(2)
        assert pool.submit("thread", _square, 5).result() == 25
        assert pool.submit("process", _square, 5).result(timeout=60) == 25
        pool.close()
        # no_leaks asserts every pool thread and child process is gone

    def test_closed_batch_rejects_submissions(self, small_colored):
        batch = QueryBatch(small_colored)
        batch.close()
        batch.close()  # idempotent
        with pytest.raises(EngineError):
            batch.submit(EXAMPLE)
        with pytest.raises(EngineError):
            batch.count(EXAMPLE)


class TestCrashRestart:
    def _kill_one_worker(self, pool):
        executor = pool.executor_for("process")
        # Ensure workers exist, then kill one hard (simulating a segfault
        # or the OOM killer).
        pool.submit("process", _square, 1).result(timeout=60)
        victim_pid = next(iter(executor._processes))
        os.kill(victim_pid, signal.SIGKILL)

    def test_restart_after_killed_worker(self, no_leaks):
        with WorkerPool(1) as pool:
            self._kill_one_worker(pool)
            deadline = time.monotonic() + 60
            recovered = False
            while time.monotonic() < deadline:
                try:
                    if pool.submit("process", _square, 6).result(timeout=60) == 36:
                        recovered = True
                        break
                except BrokenProcessPool:
                    # The in-flight future was doomed; the *next* submit
                    # replaces the broken executor.
                    continue
            assert recovered, "pool never recovered from the killed worker"
            assert pool.restarts >= 1

    def test_parallel_count_retry_after_crash(self, medium_colored, no_leaks):
        """A query-level retry after a worker crash must succeed and
        return the exact serial count, on the restarted pool."""
        prepared = prepare(medium_colored, EXAMPLE)
        from repro.core.counting import count_answers

        serial = count_answers(prepared.pipeline)
        with WorkerPool(1) as pool:
            self._kill_one_worker(pool)
            deadline = time.monotonic() + 60
            while True:
                try:
                    got = parallel_count(
                        prepared.pipeline, workers=1, mode="process", pool=pool
                    )
                    break
                except BrokenProcessPool:
                    assert time.monotonic() < deadline, "no recovery within 60s"
            assert got == serial
