"""ChunkMailbox unit tests: the SPSC ring's wire protocol.

Exercises the byte ring directly — ordering, fragment reassembly,
byte-granular wrap, backpressure/abandon, the done flag, and the
corruption guards — without involving the executor.  The streaming
integration (mailboxed work units feeding ``TransferStats``) lives in
the parallel differential and transport suites.
"""

from __future__ import annotations

import struct
import threading

import pytest

from repro.engine.mailbox import (
    DEFAULT_CAPACITY,
    MIN_CAPACITY,
    ChunkMailbox,
    MailboxAbandoned,
    mailbox_available,
    mailbox_capacity,
)
from repro.errors import EngineError

needs_shm = pytest.mark.skipif(
    not mailbox_available(), reason="shared memory unavailable"
)


@pytest.fixture
def ring():
    box = ChunkMailbox(capacity=MIN_CAPACITY, create=True)
    yield box
    box.close(unlink=True)


@needs_shm
def test_put_poll_roundtrip_preserves_order(ring):
    payloads = [bytes([index]) * (index + 1) for index in range(10)]
    for payload in payloads:
        ring.put(payload)
    ring.finish()
    assert list(ring.drain()) == payloads
    assert ring.poll() is None
    assert ring.done


@needs_shm
def test_attach_by_name_shares_the_ring(ring):
    producer = ChunkMailbox(name=ring.name, capacity=ring.capacity)
    try:
        producer.put(b"hello from the worker")
        producer.finish()
    finally:
        producer.close()
    assert ring.poll() == b"hello from the worker"
    assert ring.done


def test_attach_requires_a_name():
    if not mailbox_available():
        pytest.skip("shared memory unavailable")
    with pytest.raises(EngineError):
        ChunkMailbox()


@needs_shm
def test_oversized_payload_fragments_and_reassembles(ring):
    # Larger than capacity // 2 (one fragment) but fits the ring whole,
    # so a single-threaded put/poll still works.
    payload = bytes(range(256)) * 11  # 2816 > 4096 // 2
    ring.put(payload)
    assert ring.poll() == payload


@needs_shm
def test_payload_larger_than_the_ring_streams_through(ring):
    payload = bytes(range(256)) * 64  # 16384 = 4 * capacity
    received = []

    def consume():
        while True:
            chunk = ring.poll()
            if chunk is not None:
                received.append(chunk)
                return

    consumer = threading.Thread(target=consume)
    consumer.start()
    ring_producer = ChunkMailbox(name=ring.name, capacity=ring.capacity)
    try:
        ring_producer.put(payload)
    finally:
        ring_producer.close()
    consumer.join(timeout=30)
    assert not consumer.is_alive()
    assert received == [payload]


@needs_shm
def test_records_wrap_the_ring_byte_granularly(ring):
    # 1000-byte records never divide the 4096-byte ring: after a few
    # rounds every record straddles the boundary somewhere.
    for round_index in range(50):
        payload = bytes([round_index % 256]) * 1000
        ring.put(payload)
        assert ring.poll() == payload
    assert ring.poll() is None


@needs_shm
def test_abandon_raises_in_the_producer(ring):
    ring.abandon()
    with pytest.raises(MailboxAbandoned):
        ring.put(b"too late")


@needs_shm
def test_abandon_unblocks_a_backpressured_producer(ring):
    errors = []

    def produce():
        try:
            while True:  # fills the ring, then blocks in the wait ladder
                ring.put(b"x" * 512)
        except MailboxAbandoned as exc:
            errors.append(exc)

    producer = threading.Thread(target=produce)
    producer.start()
    ring.abandon()
    producer.join(timeout=30)
    assert not producer.is_alive()
    assert len(errors) == 1


@needs_shm
def test_truncated_fragments_fail_loudly(ring):
    ring._put_record(b"first half", more=True)
    ring.finish()
    with pytest.raises(EngineError, match="mid-chunk"):
        ring.poll()


@needs_shm
def test_corrupt_length_fails_loudly(ring):
    # Forge a record whose length exceeds the ring: a torn or reordered
    # read must raise, never allocate or silently return garbage.
    ring._copy_in(0, struct.pack("<I", ring.capacity))
    ring._write_counter(0, 4)  # head: one record header published
    with pytest.raises(EngineError, match="corrupt"):
        ring.poll()


@needs_shm
def test_capacity_is_clamped_to_the_minimum():
    box = ChunkMailbox(capacity=1, create=True)
    try:
        assert box.capacity == MIN_CAPACITY
    finally:
        box.close(unlink=True)


def test_mailbox_capacity_tracks_the_chunk_hint():
    assert mailbox_capacity(1) == MIN_CAPACITY
    assert mailbox_capacity(10**9) == DEFAULT_CAPACITY
    assert mailbox_capacity(100_000) == 800_000


def test_env_toggle_forces_the_legacy_path(monkeypatch):
    monkeypatch.setenv("REPRO_MAILBOX", "0")
    assert mailbox_available() is False
    monkeypatch.setenv("REPRO_MAILBOX", "1")
    assert isinstance(mailbox_available(), bool)
    monkeypatch.delenv("REPRO_MAILBOX")
    assert isinstance(mailbox_available(), bool)
