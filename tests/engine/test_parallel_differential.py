"""Differential tests: the parallel engine against the serial pipeline
and the naive product baseline on random (structure, formula) pairs.

The engine's contract is exact: for every query it must produce the
*same answer sequence* — set AND order — as serial
``PreparedQuery.enumerate()``, which in turn must agree as a set with
``baselines.product_enumerate``.  Any divergence, on any generated pair,
is a bug in the branch splitting, the deterministic merge, or the cache.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import prepare
from repro.core.baselines import product_enumerate
from repro.engine import QueryBatch, parallel_enumerate

from strategies import (
    formulas,
    rejecting_unsupported,
    structures,
    ternary_structures,
)

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def prepare_or_reject(db, formula, order):
    """Prepare, rejecting formulas outside the pipeline's fragment.

    The pipeline guards its clause expansion (``max_units``) with
    ``UnsupportedQueryError``; such formulas are out of scope for the
    engine-vs-serial comparison, not failures.
    """
    with rejecting_unsupported():
        return prepare(db, formula, order=order)


def assert_engine_matches(db, formula, workers=3, modes=("serial", "thread")):
    """Engine output must equal serial output exactly, and the oracle as a set."""
    order = sorted(formula.free)
    prepared = prepare_or_reject(db, formula, order)
    serial = list(prepared.enumerate())

    for mode in modes:
        parallel = list(
            parallel_enumerate(prepared.pipeline, workers=workers, mode=mode)
        )
        assert parallel == serial, (
            f"mode={mode}: parallel answers (or their order) diverge from serial"
        )

    oracle = set(product_enumerate(formula, db, order=order))
    assert set(serial) == oracle, "serial pipeline diverges from the product baseline"
    assert len(set(serial)) == len(serial), "enumeration repeated a tuple"


class TestBinarySignature:
    @given(
        db=structures(max_n=10),
        formula=formulas(free_count=2, max_depth=3, max_quantifiers=1),
    )
    @settings(max_examples=30, **SETTINGS)
    def test_quantified(self, db, formula):
        assert_engine_matches(db, formula)

    @given(
        db=structures(max_n=12),
        formula=formulas(free_count=2, max_depth=3, max_quantifiers=0),
    )
    @settings(max_examples=30, **SETTINGS)
    def test_quantifier_free(self, db, formula):
        assert_engine_matches(db, formula)

    @given(
        db=structures(max_n=8),
        formula=formulas(free_count=1, max_depth=3, max_quantifiers=3),
    )
    @settings(max_examples=15, **SETTINGS)
    def test_deep_quantifier_nesting(self, db, formula):
        """Up to three nested quantifiers (the new strategy depth)."""
        assert_engine_matches(db, formula)


class TestTernarySignature:
    @given(
        db=ternary_structures(max_n=10),
        formula=formulas(free_count=2, max_depth=3, max_quantifiers=0, ternary=True),
    )
    @settings(max_examples=25, **SETTINGS)
    def test_quantifier_free(self, db, formula):
        assert_engine_matches(db, formula)

    @given(
        db=ternary_structures(max_n=8),
        formula=formulas(free_count=2, max_depth=2, max_quantifiers=1, ternary=True),
    )
    @settings(max_examples=15, **SETTINGS)
    def test_quantified(self, db, formula):
        assert_engine_matches(db, formula)


class TestBatchDifferential:
    """The QueryBatch path (cache + shared graphs) must match too."""

    @given(
        db=structures(max_n=10),
        formula=formulas(free_count=2, max_depth=3, max_quantifiers=1),
    )
    @settings(max_examples=20, **SETTINGS)
    def test_batch_matches_serial_and_oracle(self, db, formula):
        order = sorted(formula.free)
        prepared = prepare_or_reject(db, formula, order)
        serial = list(prepared.enumerate())

        with QueryBatch(db, workers=2, mode="thread") as batch:
            first = batch.submit(formula, order=order).all()
            # Resubmission hits the pipeline cache; answers must be identical.
            second = batch.submit(formula, order=order).all()
            assert first == serial
            assert second == serial
            assert batch.stats()["hits"] >= 1

        oracle = set(product_enumerate(formula, db, order=order))
        assert set(first) == oracle


class TestProcessMode:
    """Process pools are slow to spin up; a few fixed differential cases."""

    QUERIES = [
        "B(x) & R(y) & ~E(x,y)",
        "B(x) & R(y) & E(x,y)",
        "(B(x) | R(x)) & (B(y) | R(y)) & x != y & ~E(x,y)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_process_pool_matches_serial(self, medium_colored, text):
        prepared = prepare(medium_colored, text)
        serial = list(prepared.enumerate())
        parallel = list(
            parallel_enumerate(prepared.pipeline, workers=2, mode="process")
        )
        assert parallel == serial
