"""Cross-module integration: the three operations against the oracle on
every (corpus query, structure) combination, plus random-formula fuzzing.

This is the library's strongest correctness statement: counting, testing,
and enumeration all pass through localization, separation, the colored
graph, and the skip machinery — any bug anywhere surfaces as a divergence
from the naive semantics.
"""

import pytest
from hypothesis import given, settings

from repro import prepare
from repro.errors import UnsupportedQueryError
from repro.fo.parser import parse
from repro.fo.semantics import naive_answers, naive_test
from repro.fo.syntax import Var

from strategies import (
    MAX_UNITS_FLAKY_FORMULA,
    formulas,
    rejecting_unsupported,
    structures,
)

x, y = Var("x"), Var("y")


def assert_all_operations_match(db, query, reject_unsupported=False):
    order = sorted(query.free)
    want = sorted(naive_answers(query, db, order=order))
    if reject_unsupported:
        # Fuzzing only: formulas whose clause expansion trips the
        # pipeline's max_units budget are outside the supported fragment
        # (same convention as the engine differential suites), not bugs.
        with rejecting_unsupported():
            prepared = prepare(db, query, order=order)
    else:
        prepared = prepare(db, query, order=order)

    got = sorted(prepared.enumerate(validate=True))
    assert got == want, "enumeration diverges from the oracle"
    assert len(set(got)) == len(got), "enumeration repeated a tuple"

    assert prepared.count() == len(want), "count diverges from the oracle"

    want_set = set(want)
    domain = list(db.domain)
    arity = prepared.arity
    probes = list(want_set)[:20]
    if arity == 1:
        probes += [(a,) for a in domain[:10]]
    elif arity == 2:
        probes += [(a, b) for a in domain[:5] for b in domain[:5]]
    for probe in probes:
        assert prepared.test(probe) == (probe in want_set), f"test({probe})"


class TestCorpusIntegration:
    def test_on_small_random(self, corpus_query, small_colored):
        assert_all_operations_match(small_colored, corpus_query)

    def test_on_clique(self, quantifier_free_query, clique_structure):
        assert_all_operations_match(clique_structure, quantifier_free_query)

    def test_on_ring(self, quantifier_free_query, ring_structure):
        assert_all_operations_match(ring_structure, quantifier_free_query)


class TestMaxUnitsBudget:
    """Regression for the fuzzer flake: the strategies *can* generate
    formulas whose clause expansion trips the documented ``max_units``
    budget.  Every entry point must reject them with
    :class:`UnsupportedQueryError` — which the Hypothesis suites
    ``assume()`` away — instead of crashing or hanging."""

    def test_previously_flaky_formula_is_rejected(self, small_colored):
        from repro.core.pipeline import Pipeline

        formula = parse(MAX_UNITS_FLAKY_FORMULA)
        with pytest.raises(UnsupportedQueryError, match="units"):
            Pipeline(small_colored, formula, order=sorted(formula.free))

    def test_session_front_end_rejects_it_too(self, small_colored):
        from repro import Database

        formula = parse(MAX_UNITS_FLAKY_FORMULA)
        with Database(small_colored) as db:
            with pytest.raises(UnsupportedQueryError, match="units"):
                db.query(formula, order=sorted(formula.free))

    def test_fuzzing_helper_converts_it_to_a_rejection(self, small_colored):
        # The exact path every differential suite takes: with
        # reject_unsupported the formula becomes an UnsatisfiedAssumption
        # ("draw again"), never an error or a divergence report.
        from hypothesis.errors import UnsatisfiedAssumption

        with pytest.raises(UnsatisfiedAssumption):
            assert_all_operations_match(
                small_colored,
                parse(MAX_UNITS_FLAKY_FORMULA),
                reject_unsupported=True,
            )


class TestFuzzing:
    @given(formula=formulas(free_count=2, max_depth=3, max_quantifiers=0),
           db=structures(max_n=10))
    @settings(max_examples=40, deadline=None)
    def test_random_quantifier_free(self, formula, db):
        assert_all_operations_match(db, formula, reject_unsupported=True)

    @given(formula=formulas(free_count=2, max_depth=2, max_quantifiers=1),
           db=structures(max_n=9))
    @settings(max_examples=30, deadline=None)
    def test_random_single_quantifier(self, formula, db):
        assert_all_operations_match(db, formula, reject_unsupported=True)

    @given(formula=formulas(free_count=1, max_depth=2, max_quantifiers=2),
           db=structures(max_n=8))
    @settings(max_examples=20, deadline=None)
    def test_random_two_quantifiers(self, formula, db):
        assert_all_operations_match(db, formula, reject_unsupported=True)
