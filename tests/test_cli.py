"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_workload
from repro.errors import ReproError


class TestWorkloadSpecs:
    def test_colored_defaults(self):
        db = parse_workload("colored:n=50,d=3,seed=1")
        assert db.cardinality == 50
        assert db.degree <= 3
        assert "B" in db.signature and "R" in db.signature

    def test_colored_custom_colors(self):
        db = parse_workload("colored:n=30,colors=P+Q")
        assert "P" in db.signature and "Q" in db.signature

    def test_grid(self):
        db = parse_workload("grid:rows=4,cols=5")
        assert db.cardinality == 20
        assert "Powered" in db.signature

    def test_cycle(self):
        db = parse_workload("cycle:n=12")
        assert db.degree == 2

    def test_clique(self):
        db = parse_workload("clique:clique=5,n=40")
        assert db.degree == 4

    def test_logdeg(self):
        db = parse_workload("logdeg:n=64")
        assert db.degree <= 6

    def test_unknown_workload(self):
        with pytest.raises(ReproError):
            parse_workload("mystery:n=5")

    def test_bad_option(self):
        with pytest.raises(ReproError):
            parse_workload("colored:n")


class TestCommands:
    def test_query_count_and_limit(self, capsys):
        code = main(
            [
                "query",
                "-w", "colored:n=40,d=3,seed=2",
                "-q", "B(x) & R(y) & ~E(x,y)",
                "--count",
                "--limit", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "count:" in out
        assert "(3 answers shown)" in out

    def test_query_test_probe(self, capsys):
        code = main(
            [
                "query",
                "-w", "colored:n=40,d=3,seed=2",
                "-q", "B(x) & R(y) & ~E(x,y)",
                "--test", "0,1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "test (0, 1):" in out

    def test_check_true_sentence(self, capsys):
        code = main(
            [
                "check",
                "-w", "colored:n=40,d=3,seed=2",
                "-q", "exists x. B(x) | R(x)",
            ]
        )
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_check_false_sentence(self, capsys):
        code = main(
            [
                "check",
                "-w", "colored:n=40,d=3,seed=2",
                "-q", "forall x. B(x) & R(x) & ~B(x)",
            ]
        )
        assert code == 1

    def test_explain(self, capsys):
        code = main(
            [
                "explain",
                "-w", "colored:n=30,d=3,seed=2",
                "-q", "B(x) & exists z. (R(z) & ~E(x,z))",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "derived" in out

    def test_delay(self, capsys):
        code = main(
            [
                "delay",
                "-w", "colored:n=60,d=3,seed=2",
                "-q", "B(x) & R(y) & ~E(x,y)",
                "--limit", "100",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "RAM steps/answer" in out

    def test_error_reported_cleanly(self, capsys):
        code = main(
            ["query", "-w", "mystery:n=5", "-q", "B(x)"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_tuple_component(self, capsys):
        code = main(
            [
                "query",
                "-w", "colored:n=20,d=2,seed=0",
                "-q", "B(x)",
                "--test", "zap",
            ]
        )
        assert code == 2

    def test_batch_count_and_cache(self, capsys, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "# corpus\nB(x) & R(y) & ~E(x,y)\nB(x) & R(y) & E(x,y)\n"
        )
        code = main(
            [
                "batch",
                "-w", "colored:n=40,d=3,seed=2",
                "-q", "B(x) & R(y) & ~E(x,y)",
                "--queries-file", str(queries),
                "--count",
                "--limit", "2",
                "--workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 queries" in out
        assert out.count("count=") == 3
        # The duplicated query hits the pipeline cache.
        assert "1 hits" in out

    def test_batch_without_queries_errors(self, capsys):
        code = main(["batch", "-w", "colored:n=20,d=3"])
        assert code == 2
        assert "at least one" in capsys.readouterr().err


CHANGESET = """\
# wire node 0 into the blue set and re-point an edge
{"op": "insert", "relation": "B", "elements": [0]}
{"op": "remove", "relation": "B", "elements": [0]}
{"op": "insert", "relation": "B", "elements": [1]}
{"op": "insert", "relation": "E", "elements": [1, 2]}
"""


class TestUpdateCommand:
    def test_update_applies_and_reports(self, capsys, tmp_path):
        changes = tmp_path / "changes.jsonl"
        changes.write_text(CHANGESET)
        code = main(
            [
                "update",
                "-w", "colored:n=30,d=3,seed=4",
                "--file", str(changes),
                "-q", "B(x) & R(y) & ~E(x,y)",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 op(s)" in out
        assert "effective" in out
        assert "maintained plans refreshed in one pass" in out
        assert "count" in out

    def test_update_bad_changeset_reports_line(self, capsys, tmp_path):
        changes = tmp_path / "changes.jsonl"
        changes.write_text('{"op": "frobnicate", "relation": "B", "elements": [0]}\n')
        code = main(
            ["update", "-w", "colored:n=20,d=3", "--file", str(changes)]
        )
        assert code == 2
        assert "frobnicate" in capsys.readouterr().err

    def test_update_out_of_domain_element_reports_line(self, capsys, tmp_path):
        changes = tmp_path / "changes.jsonl"
        changes.write_text(
            '{"op": "insert", "relation": "B", "elements": [999999]}\n'
        )
        code = main(
            ["update", "-w", "colored:n=20,d=3", "--file", str(changes)]
        )
        err = capsys.readouterr().err
        assert code == 2, "must be a clean CLI error, not a traceback"
        assert "line 1" in err and "domain" in err

    def test_update_missing_file_errors(self, capsys):
        code = main(
            ["update", "-w", "colored:n=20,d=3", "--file", "/nonexistent.jsonl"]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err


class TestVersionedQueries:
    def test_query_at_pre_apply_version(self, capsys, tmp_path):
        changes = tmp_path / "changes.jsonl"
        changes.write_text(CHANGESET)
        # First run with a wrong version to learn the real ones (the
        # error message lists them) — then query both sides.
        code = main(
            [
                "query", "-w", "colored:n=30,d=3,seed=4", "-q", "B(x)",
                "--count", "--apply", str(changes), "--at-version", "-1",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        versions = [
            int(tok) for tok in err.replace("[", " ").replace("]", " ")
            .replace(",", " ").split() if tok.lstrip("-").isdigit()
        ]
        old, new = versions[-2], versions[-1]

        def count_at(version):
            code = main(
                [
                    "query", "-w", "colored:n=30,d=3,seed=4", "-q", "B(x)",
                    "--count", "--apply", str(changes),
                    "--at-version", str(version),
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            return int(out.split("count: ")[1].split()[0])

        before, after = count_at(old), count_at(new)
        # The changeset nets out to inserting B(1): the pre-commit
        # snapshot must not see it, the head must (unless it was there).
        assert after in (before, before + 1)
        assert count_at(old) == before  # deterministic across runs


class TestBatchAtVersion:
    def test_batch_apply_then_query_head(self, capsys, tmp_path):
        changes = tmp_path / "changes.jsonl"
        changes.write_text(CHANGESET)
        code = main(
            [
                "batch", "-w", "colored:n=30,d=3,seed=4",
                "-q", "B(x)", "--count", "--apply", str(changes),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "applied 4 op(s)" in out
        assert "count=" in out


class TestDurableCommands:
    def test_open_creates_then_inspects(self, capsys, tmp_path):
        db = str(tmp_path / "store")
        code = main(["open", "--db", db, "-w", "colored:n=30,d=3,seed=2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "n=30" in out and "version" in out
        # Second open (no -w): inspect the existing store.
        code = main(["open", "--db", db])
        out = capsys.readouterr().out
        assert code == 0
        assert "fingerprint:" in out

    def test_query_against_durable_store(self, capsys, tmp_path):
        db = str(tmp_path / "store")
        assert main(["open", "--db", db, "-w", "colored:n=30,d=3,seed=2"]) == 0
        capsys.readouterr()
        code = main(["query", "--db", db, "-q", "B(x)", "--count"])
        out = capsys.readouterr().out
        assert code == 0
        assert "count:" in out

    def test_update_persists_into_the_store(self, capsys, tmp_path):
        db = str(tmp_path / "store")
        changes = tmp_path / "changes.jsonl"
        changes.write_text(
            '{"op": "insert", "relation": "E", "elements": [0, 9]}\n'
            '{"op": "insert", "relation": "E", "elements": [9, 0]}\n'
        )
        assert main(["open", "--db", db, "-w", "cycle:n=12"]) == 0
        assert main(["update", "--db", db, "--file", str(changes)]) == 0
        capsys.readouterr()
        code = main(["query", "--db", db, "-q", "E(x,y)", "--count"])
        out = capsys.readouterr().out
        assert code == 0
        # A 12-cycle has 24 directed edges; the changeset added 2.
        assert "count: 26" in out

    def test_checkpoint_warms_the_next_open(self, capsys, tmp_path):
        db = str(tmp_path / "store")
        assert main(["open", "--db", db, "-w", "colored:n=30,d=3,seed=2"]) == 0
        capsys.readouterr()
        code = main(["checkpoint", "--db", db, "-q", "B(x)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "warm pipelines spilled: 1" in out
        code = main(["open", "--db", db])
        out = capsys.readouterr().out
        assert code == 0
        assert "warm cached plans: 1" in out

    def test_existing_store_with_workload_errors(self, capsys, tmp_path):
        db = str(tmp_path / "store")
        assert main(["open", "--db", db, "-w", "cycle:n=10"]) == 0
        capsys.readouterr()
        code = main(["query", "--db", db, "-w", "cycle:n=10", "-q", "B(x)"])
        assert code == 2
        assert "already exists" in capsys.readouterr().err

    def test_missing_store_without_workload_errors(self, capsys, tmp_path):
        code = main(
            ["query", "--db", str(tmp_path / "nope"), "-q", "B(x)"]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_checkpoint_missing_store_errors(self, capsys, tmp_path):
        code = main(["checkpoint", "--db", str(tmp_path / "nope")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_neither_db_nor_workload_errors(self, capsys):
        code = main(["query", "-q", "B(x)"])
        assert code == 2
        assert "workload" in capsys.readouterr().err
