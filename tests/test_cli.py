"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_workload
from repro.errors import ReproError


class TestWorkloadSpecs:
    def test_colored_defaults(self):
        db = parse_workload("colored:n=50,d=3,seed=1")
        assert db.cardinality == 50
        assert db.degree <= 3
        assert "B" in db.signature and "R" in db.signature

    def test_colored_custom_colors(self):
        db = parse_workload("colored:n=30,colors=P+Q")
        assert "P" in db.signature and "Q" in db.signature

    def test_grid(self):
        db = parse_workload("grid:rows=4,cols=5")
        assert db.cardinality == 20
        assert "Powered" in db.signature

    def test_cycle(self):
        db = parse_workload("cycle:n=12")
        assert db.degree == 2

    def test_clique(self):
        db = parse_workload("clique:clique=5,n=40")
        assert db.degree == 4

    def test_logdeg(self):
        db = parse_workload("logdeg:n=64")
        assert db.degree <= 6

    def test_unknown_workload(self):
        with pytest.raises(ReproError):
            parse_workload("mystery:n=5")

    def test_bad_option(self):
        with pytest.raises(ReproError):
            parse_workload("colored:n")


class TestCommands:
    def test_query_count_and_limit(self, capsys):
        code = main(
            [
                "query",
                "-w", "colored:n=40,d=3,seed=2",
                "-q", "B(x) & R(y) & ~E(x,y)",
                "--count",
                "--limit", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "count:" in out
        assert "(3 answers shown)" in out

    def test_query_test_probe(self, capsys):
        code = main(
            [
                "query",
                "-w", "colored:n=40,d=3,seed=2",
                "-q", "B(x) & R(y) & ~E(x,y)",
                "--test", "0,1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "test (0, 1):" in out

    def test_check_true_sentence(self, capsys):
        code = main(
            [
                "check",
                "-w", "colored:n=40,d=3,seed=2",
                "-q", "exists x. B(x) | R(x)",
            ]
        )
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_check_false_sentence(self, capsys):
        code = main(
            [
                "check",
                "-w", "colored:n=40,d=3,seed=2",
                "-q", "forall x. B(x) & R(x) & ~B(x)",
            ]
        )
        assert code == 1

    def test_explain(self, capsys):
        code = main(
            [
                "explain",
                "-w", "colored:n=30,d=3,seed=2",
                "-q", "B(x) & exists z. (R(z) & ~E(x,z))",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "derived" in out

    def test_delay(self, capsys):
        code = main(
            [
                "delay",
                "-w", "colored:n=60,d=3,seed=2",
                "-q", "B(x) & R(y) & ~E(x,y)",
                "--limit", "100",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "RAM steps/answer" in out

    def test_error_reported_cleanly(self, capsys):
        code = main(
            ["query", "-w", "mystery:n=5", "-q", "B(x)"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_tuple_component(self, capsys):
        code = main(
            [
                "query",
                "-w", "colored:n=20,d=2,seed=0",
                "-q", "B(x)",
                "--test", "zap",
            ]
        )
        assert code == 2

    def test_batch_count_and_cache(self, capsys, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "# corpus\nB(x) & R(y) & ~E(x,y)\nB(x) & R(y) & E(x,y)\n"
        )
        code = main(
            [
                "batch",
                "-w", "colored:n=40,d=3,seed=2",
                "-q", "B(x) & R(y) & ~E(x,y)",
                "--queries-file", str(queries),
                "--count",
                "--limit", "2",
                "--workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 queries" in out
        assert out.count("count=") == 3
        # The duplicated query hits the pipeline cache.
        assert "1 hits" in out

    def test_batch_without_queries_errors(self, capsys):
        code = main(["batch", "-w", "colored:n=20,d=3"])
        assert code == 2
        assert "at least one" in capsys.readouterr().err
