"""The legacy facades warn — and keep working — as session shims."""

from __future__ import annotations

import asyncio
import warnings

import pytest

import repro
from repro.errors import CancelledResultError
from repro.structures.random_gen import random_colored_graph

EXAMPLE = "B(x) & R(y) & ~E(x,y)"


@pytest.fixture
def structure():
    return random_colored_graph(20, max_degree=3, seed=5)


class TestErrorAlias:
    def test_alias_warns_and_is_same_class(self):
        with pytest.warns(DeprecationWarning, match="CancelledResultError"):
            from repro.errors import ResultCancelledError
        assert ResultCancelledError is CancelledResultError

    def test_alias_via_top_level_package(self):
        with pytest.warns(DeprecationWarning):
            alias = repro.ResultCancelledError
        assert alias is CancelledResultError

    def test_alias_still_catches(self, structure):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.errors import ResultCancelledError
            from repro.session import Database

            with Database(structure) as db:
                answers = db.query(EXAMPLE).answers()
                answers.cancel()
                with pytest.raises(ResultCancelledError):
                    answers.all()

    def test_unknown_error_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            from repro import errors

            errors.NoSuchError


class TestLegacyFacadesWarn:
    def test_prepare_warns_but_works(self, structure):
        with pytest.warns(DeprecationWarning, match="prepare"):
            prepared = repro.prepare(structure, EXAMPLE)
        assert prepared.count() == len(list(prepared.enumerate()))

    def test_query_batch_warns_but_works(self, structure):
        with pytest.warns(DeprecationWarning, match="QueryBatch"):
            batch = repro.QueryBatch(structure)
        with batch:
            handle = batch.submit(EXAMPLE)
            assert handle.count() == len(handle.all())

    def test_async_query_batch_warns_but_works(self, structure):
        async def main():
            with pytest.warns(DeprecationWarning, match="AsyncQueryBatch"):
                batch = repro.AsyncQueryBatch(structure)
            async with batch:
                handle = await batch.submit(EXAMPLE)
                return await handle.count(), len(await handle.all())

        count, total = asyncio.run(main())
        assert count == total

    def test_dynamic_query_warns_but_works(self, structure):
        with pytest.warns(DeprecationWarning, match="DynamicQuery"):
            dynamic = repro.DynamicQuery(structure, EXAMPLE)
        before = dynamic.count()
        victim = next(
            e for e in structure.domain if not structure.has_fact("B", e)
        )
        dynamic.insert_fact("B", victim)
        assert dynamic.count() >= before

    def test_session_api_does_not_warn(self, structure):
        from repro.session import Database

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Database(structure) as db:
                query = db.query(EXAMPLE)
                query.count()
                query.answers().all()
                query.explain()
                db.insert_fact(
                    "B",
                    next(
                        e
                        for e in structure.domain
                        if not structure.has_fact("B", e)
                    ),
                )


class TestShimsShareImplementation:
    def test_result_handle_is_answers(self, structure):
        from repro.engine.batch import ResultHandle
        from repro.session import Answers

        assert issubclass(ResultHandle, Answers)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with repro.QueryBatch(structure) as batch:
                handle = batch.submit(EXAMPLE)
                assert isinstance(handle, Answers)

    def test_query_batch_fronts_a_database(self, structure):
        from repro.session import Database

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with repro.QueryBatch(structure) as batch:
                assert isinstance(batch.database, Database)
                assert batch.pool is batch.database.pool
                assert batch.cache is batch.database.cache

    def test_coerce_query_alias(self):
        from repro.engine.cache import coerce_query
        from repro.fo import coerce_formula

        assert coerce_query is coerce_formula
