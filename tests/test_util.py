"""Tests for repro.util: orderings, iteration helpers, timing."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.itertools2 import (
    all_tuples,
    connected_subsets,
    distinct_tuples,
    injections,
    powerset,
)
from repro.util.orderings import DomainOrder
from repro.util.timing import Stopwatch


class TestDomainOrder:
    def test_rank_by_first_appearance(self):
        order = DomainOrder(["c", "a", "b", "a"])
        assert order.rank("c") == 0
        assert order.rank("a") == 1
        assert len(order) == 3

    def test_element_inverse(self):
        order = DomainOrder([5, 3, 9])
        for element in (5, 3, 9):
            assert order.element(order.rank(element)) == element

    def test_contains(self):
        order = DomainOrder([1, 2])
        assert 1 in order and 7 not in order

    def test_lexicographic_key(self):
        order = DomainOrder(["b", "a"])
        assert order.key(("b", "a")) == (0, 1)

    def test_sorted_tuples(self):
        order = DomainOrder([2, 1, 0])
        tuples = [(0, 0), (2, 1), (1, 2)]
        assert order.sorted_tuples(tuples) == [(2, 1), (1, 2), (0, 0)]

    def test_iteration_in_order(self):
        assert list(DomainOrder([3, 1, 2])) == [3, 1, 2]


class TestPowerset:
    def test_all_subsets(self):
        subsets = list(powerset([1, 2]))
        assert subsets == [(), (1,), (2,), (1, 2)]

    def test_size_bounds(self):
        subsets = list(powerset([1, 2, 3], min_size=1, max_size=2))
        assert all(1 <= len(s) <= 2 for s in subsets)
        assert len(subsets) == 6


class TestInjections:
    def test_count(self):
        # Injections from a 2-element source into a 3-element target: 3*2.
        assert len(list(injections(2, "abc"))) == 6

    def test_injective(self):
        for mapping in injections(2, [1, 2, 3]):
            assert len(set(mapping)) == 2

    def test_empty_source(self):
        assert list(injections(0, [1, 2])) == [()]


class TestTupleGenerators:
    def test_distinct_tuples(self):
        tuples = list(distinct_tuples([1, 2, 3], 2))
        assert (1, 1) not in tuples
        assert len(tuples) == 6

    def test_all_tuples(self):
        tuples = list(all_tuples([1, 2], 2))
        assert (1, 1) in tuples
        assert len(tuples) == 4


class TestConnectedSubsets:
    @pytest.fixture
    def path_neighbors(self):
        # 0 - 1 - 2 - 3 path.
        adjacency = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
        return lambda v: adjacency[v]

    def test_contains_seed(self, path_neighbors):
        for subset in connected_subsets(0, path_neighbors, 3):
            assert 0 in subset

    def test_respects_max_size(self, path_neighbors):
        assert all(
            len(subset) <= 2
            for subset in connected_subsets(0, path_neighbors, 2)
        )

    def test_exactly_the_connected_sets(self, path_neighbors):
        got = set(connected_subsets(0, path_neighbors, 3))
        want = {
            frozenset({0}),
            frozenset({0, 1}),
            frozenset({0, 1, 2}),
        }
        assert got == want

    def test_no_duplicates(self, path_neighbors):
        subsets = list(connected_subsets(1, path_neighbors, 3))
        assert len(subsets) == len(set(subsets))

    def test_isolated_seed(self):
        assert list(connected_subsets(9, lambda v: [], 4)) == [frozenset({9})]

    @given(seed=st.integers(0, 30), max_size=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force_on_random_graphs(self, seed, max_size):
        import random
        from itertools import combinations

        rng = random.Random(seed)
        n = 7
        edges = set()
        for _ in range(8):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.add(frozenset((u, v)))
        adjacency = {v: [] for v in range(n)}
        for edge in edges:
            u, v = tuple(edge)
            adjacency[u].append(v)
            adjacency[v].append(u)

        def connected(vertices):
            vertices = set(vertices)
            seen = {min(vertices)}
            frontier = [min(vertices)]
            while frontier:
                current = frontier.pop()
                for other in adjacency[current]:
                    if other in vertices and other not in seen:
                        seen.add(other)
                        frontier.append(other)
            return seen == vertices

        got = set(connected_subsets(0, lambda v: adjacency[v], max_size))
        want = {
            frozenset(combo)
            for size in range(1, max_size + 1)
            for combo in combinations(range(n), size)
            if 0 in combo and connected(combo)
        }
        assert got == want


class TestStopwatch:
    def test_laps_accumulate(self):
        watch = Stopwatch().start()
        watch.lap()
        watch.lap()
        assert len(watch.laps) == 2
        assert watch.total == pytest.approx(sum(watch.laps))

    def test_lap_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().lap()

    def test_elapsed_monotone(self):
        watch = Stopwatch().start()
        first = watch.elapsed()
        second = watch.elapsed()
        assert second >= first

    def test_percentile(self):
        watch = Stopwatch()
        watch.laps = [1.0, 2.0, 3.0, 4.0]
        assert watch.percentile(0) == 1.0
        assert watch.percentile(100) == 4.0
        assert watch.max_lap == 4.0

    def test_percentile_empty(self):
        assert Stopwatch().percentile(50) == 0.0
