"""Registry lifecycle: naming, ownership, per-tenant write locks."""

from __future__ import annotations

import pytest

from repro.errors import ServeError, UnknownDatabaseError
from repro.serve import DatabaseRegistry
from repro.session import Database
from repro.structures.random_gen import random_colored_graph


@pytest.fixture
def structure():
    return random_colored_graph(30, seed=5).copy()


class TestRegistry:
    def test_create_get_names(self, structure):
        registry = DatabaseRegistry()
        entry = registry.create("alpha", structure)
        assert registry.get("alpha") is entry
        assert registry.names() == ["alpha"]
        assert "alpha" in registry and len(registry) == 1
        registry.close_all()
        assert entry.db.closed

    def test_unknown_name_is_404(self):
        registry = DatabaseRegistry()
        with pytest.raises(UnknownDatabaseError) as info:
            registry.get("ghost")
        assert info.value.status == 404

    def test_duplicate_name_refused(self, structure):
        registry = DatabaseRegistry()
        registry.create("a", structure)
        with pytest.raises(ServeError) as info:
            registry.create("a", structure.copy())
        assert info.value.status == 409
        registry.close_all()

    @pytest.mark.parametrize(
        "name", ["", "a b", "a/b", "x" * 65, "semi;colon"]
    )
    def test_bad_names_refused(self, structure, name):
        registry = DatabaseRegistry()
        with pytest.raises(ServeError) as info:
            registry.create(name, structure)
        assert info.value.status == 400

    def test_unowned_database_survives_close_all(self, structure):
        registry = DatabaseRegistry()
        db = Database(structure)
        registry.add("keep", db, close_on_shutdown=False)
        registry.close_all()
        assert not db.closed
        db.close()

    def test_remove(self, structure):
        registry = DatabaseRegistry()
        entry = registry.create("gone", structure)
        registry.remove("gone")
        assert entry.db.closed
        with pytest.raises(UnknownDatabaseError):
            registry.get("gone")

    def test_durable_open(self, structure, tmp_path):
        registry = DatabaseRegistry()
        Database.open(tmp_path / "store", structure=structure).close()
        entry = registry.open("d", tmp_path / "store")
        assert entry.db.durable
        assert entry.db.stats()["wal_records"] == 0
        registry.close_all()
