"""Unit tests for the hand-rolled HTTP/1.1 + WebSocket framing."""

from __future__ import annotations

import asyncio
import io

import pytest

from repro.errors import WireError
from repro.serve import wire


def parse_request(raw: bytes, max_body: int = 1 << 20):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await wire.read_request(reader, max_body)

    return asyncio.run(run())


class TestHttpParsing:
    def test_simple_get(self):
        req = parse_request(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/healthz"
        assert req.headers["host"] == "x"
        assert req.body == b""
        assert req.keep_alive

    def test_query_string_and_escapes(self):
        req = parse_request(b"GET /db/a%20b/stats?x=1&y=two HTTP/1.1\r\n\r\n")
        assert req.path == "/db/a b/stats"
        assert req.query == {"x": "1", "y": "two"}

    def test_post_body(self):
        req = parse_request(
            b"POST /db/d/query HTTP/1.1\r\n"
            b"Content-Length: 17\r\n\r\n"
            b'{"query": "B(x)"}'
        )
        assert req.json() == {"query": "B(x)"}

    def test_clean_eof_returns_none(self):
        assert parse_request(b"") is None

    def test_truncated_head_raises(self):
        with pytest.raises(WireError):
            parse_request(b"GET / HTTP/1.1\r\nHost")

    def test_malformed_request_line(self):
        with pytest.raises(WireError):
            parse_request(b"NONSENSE\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(WireError):
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_oversized_body_is_413(self):
        with pytest.raises(WireError) as info:
            parse_request(
                b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n",
                max_body=10,
            )
        assert info.value.status == 413

    def test_websocket_upgrade_detection(self):
        req = parse_request(
            b"GET /db/d/stream HTTP/1.1\r\n"
            b"Connection: keep-alive, Upgrade\r\n"
            b"Upgrade: websocket\r\n"
            b"Sec-WebSocket-Key: abc\r\n\r\n"
        )
        assert req.wants_websocket

    def test_render_response_round_trip(self):
        raw = wire.render_response(200, b'{"ok":true}')
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 11" in raw
        assert raw.endswith(b'{"ok":true}')


class TestWebSocketHandshake:
    def test_rfc6455_accept_vector(self):
        # The worked example from RFC 6455 section 1.3.
        assert (
            wire.websocket_accept("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_handshake_response(self):
        req = parse_request(
            b"GET /db/d/stream HTTP/1.1\r\n"
            b"Connection: Upgrade\r\nUpgrade: websocket\r\n"
            b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n"
        )
        raw = wire.handshake_response(req)
        assert raw.startswith(b"HTTP/1.1 101 ")
        assert b"Sec-WebSocket-Accept: s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" in raw

    def test_handshake_without_key_raises(self):
        req = parse_request(
            b"GET /s HTTP/1.1\r\nConnection: Upgrade\r\n"
            b"Upgrade: websocket\r\n\r\n"
        )
        with pytest.raises(WireError):
            wire.handshake_response(req)


def async_read_frame(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await wire.read_frame(reader)

    return asyncio.run(run())


class TestFrames:
    @pytest.mark.parametrize("mask", [False, True])
    @pytest.mark.parametrize(
        "payload",
        [b"", b"x", b"hello world", b"a" * 126, b"b" * 70000],
    )
    def test_round_trip_async(self, payload, mask):
        raw = wire.encode_frame(wire.OP_BINARY, payload, mask=mask)
        opcode, decoded = async_read_frame(raw)
        assert opcode == wire.OP_BINARY
        assert decoded == payload

    @pytest.mark.parametrize("mask", [False, True])
    def test_round_trip_sync(self, mask):
        payload = bytes(range(256)) * 3
        raw = wire.encode_frame(wire.OP_TEXT, payload, mask=mask)
        opcode, decoded = wire.read_frame_sync(io.BytesIO(raw))
        assert opcode == wire.OP_TEXT
        assert decoded == payload

    def test_clean_eof(self):
        assert async_read_frame(b"") is None
        assert wire.read_frame_sync(io.BytesIO(b"")) is None

    def test_fragmented_frame_refused(self):
        # FIN bit clear.
        raw = bytes([0x01, 0x01]) + b"x"
        with pytest.raises(WireError):
            async_read_frame(raw)

    def test_truncated_frame(self):
        raw = wire.encode_frame(wire.OP_BINARY, b"full payload")[:-3]
        with pytest.raises(WireError):
            async_read_frame(raw)

    def test_oversized_payload_refused(self):
        raw = wire.encode_frame(wire.OP_BINARY, b"z" * 2048)

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await wire.read_frame(reader, max_payload=1024)

        with pytest.raises(WireError):
            asyncio.run(run())

    def test_masking_is_involutive(self):
        payload = b"the quick brown fox"
        mask = b"\x01\x02\x03\x04"
        once = wire._apply_mask(payload, mask)
        assert once != payload
        assert wire._apply_mask(once, mask) == payload
