"""WebSocket streaming cursors: snapshot pinning under concurrent
writes, columnar passthrough, and pin drainage (the PR's acceptance
scenario)."""

from __future__ import annotations

import json
import multiprocessing
import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve import DatabaseRegistry, ServeClient, serve_in_thread
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

QUERY = "B(x) & R(y) & ~E(x,y)"


@pytest.fixture
def no_leaks():
    """Snapshot live threads/children; fail if the test leaks either."""
    threads_before = set(threading.enumerate())
    children_before = set(multiprocessing.active_children())
    yield
    deadline = time.monotonic() + 10
    leaked_threads: list = []
    leaked_children: list = []
    while time.monotonic() < deadline:
        leaked_threads = [
            t
            for t in threading.enumerate()
            if t not in threads_before and t.is_alive()
        ]
        leaked_children = [
            p
            for p in multiprocessing.active_children()
            if p not in children_before
        ]
        if not leaked_threads and not leaked_children:
            break
        time.sleep(0.05)
    assert not leaked_children, f"leaked processes: {leaked_children}"
    assert not leaked_threads, f"leaked threads: {leaked_threads}"


@pytest.fixture
def db():
    database = Database(random_colored_graph(80, seed=29).copy())
    yield database
    database.close()


@pytest.fixture
def server(db):
    registry = DatabaseRegistry()
    registry.add("main", db, close_on_shutdown=False)
    handle = serve_in_thread(registry, cursor_timeout=None)
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with ServeClient("127.0.0.1", server.port) as c:
        yield c


def wait_for_pins(db, want: int = 0, timeout: float = 5.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pinned = db.stats()["pinned_versions"]
        if pinned == want:
            return pinned
        time.sleep(0.01)
    return db.stats()["pinned_versions"]


class TestAcceptanceScenario:
    def test_cursor_pinned_across_commit(self, no_leaks):
        """The headline guarantee: a cursor opened before a commit
        streams pages byte-identical to pre-commit enumeration while a
        post-commit HTTP query sees the new facts; every pin drains.

        The result set is sized well past the kernel's socket buffering
        so the bounded queue genuinely stalls the producer: the commit
        is guaranteed to land while most of the cursor's pages are
        still unproduced — served afterwards from the pinned version.
        """
        db = Database(random_colored_graph(600, seed=29).copy())
        registry = DatabaseRegistry()
        registry.add("main", db, close_on_shutdown=False)
        handle = serve_in_thread(registry, cursor_timeout=None, queue_pages=2)
        try:
            client = ServeClient("127.0.0.1", handle.port)
            expected = db.query(QUERY).answers().all()
            assert len(expected) > 50_000  # enough to stall the pump
            pre_commit_version = db.version
            with client.stream("main") as ws:
                ack = ws.open(QUERY, page_size=100)
                assert ack["version"] == pre_commit_version
                pages = ws.pages()
                first = next(pages)
                assert first == expected[:100]

                # A writer commits while the cursor is mid-stream; the
                # backpressured cursor is still open and pinned, so the
                # commit forks the head copy-on-write.
                assert handle.server.cursors.count() == 1
                assert db.stats()["pinned_versions"] >= 1
                result = client.apply(
                    "main",
                    '{"op":"insert","relation":"B","elements":[1]}\n'
                    '{"op":"insert","relation":"R","elements":[0]}\n',
                )
                assert result["version_after"] > pre_commit_version
                assert result["forked"] is True

                # The post-commit HTTP query sees the new facts...
                post_count = client.count("main", QUERY)
                assert post_count == db.query(QUERY).count()
                assert post_count != len(expected)

                # ...while the pinned cursor streams the old version,
                # byte-identical to pre-commit enumeration.
                streamed = list(first)
                for page in pages:
                    streamed.extend(page)
                assert streamed == expected

            client.close()
            assert wait_for_pins(db, 0) == 0, "pins leaked after drain"
        finally:
            handle.stop()
            db.close()

    def test_concurrent_cursors_with_writer(self, no_leaks, db, server):
        """N cursors paginate while a writer task commits changesets:
        each cursor stays byte-identical to the enumeration at its own
        open version, and all pins drain at close."""
        n_cursors = 4
        commits = 3
        baseline = ServeClient("127.0.0.1", server.port)
        streams, snapshots = [], []
        try:
            for index in range(n_cursors):
                ws = baseline.stream("main")
                ws.open(QUERY, page_size=3)
                streams.append(ws)
                snapshots.append(db.query(QUERY).answers().all())
                # Interleave commits between opens so cursors pin
                # *different* versions.
                if index < commits:
                    baseline.apply(
                        "main",
                        json.dumps(
                            {
                                "op": "insert",
                                "relation": "B",
                                "elements": [index],
                            }
                        )
                        + "\n"
                        + json.dumps(
                            {
                                "op": "insert",
                                "relation": "R",
                                "elements": [index + 1],
                            }
                        ),
                    )

            errors: list = []

            def drain(ws, expected, results, slot):
                try:
                    results[slot] = ws.rows()
                except Exception as error:  # noqa: BLE001 - test harness
                    errors.append(error)

            results: dict = {}
            threads = [
                threading.Thread(
                    target=drain, args=(ws, snap, results, i)
                )
                for i, (ws, snap) in enumerate(zip(streams, snapshots))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors, errors
            for i, snap in enumerate(snapshots):
                assert results[i] == snap, f"cursor {i} diverged"
        finally:
            for ws in streams:
                ws.close()
            baseline.close()
        assert wait_for_pins(db, 0) == 0, "pins leaked after close"

    def test_explicit_close_releases_pin(self, no_leaks, db, client):
        with client.stream("main") as ws:
            ws.open(QUERY, page_size=2)
            pages = ws.pages()
            next(pages)
            client.apply(
                "main", '{"op":"insert","relation":"B","elements":[7]}'
            )
            ws.close_cursor()  # mid-stream close must be clean
        assert wait_for_pins(db, 0) == 0

    def test_connection_drop_releases_pin(self, no_leaks, db, client):
        ws = client.stream("main")
        ws.open(QUERY, page_size=2)
        next(ws.pages())
        client.apply(
            "main", '{"op":"insert","relation":"R","elements":[9]}'
        )
        ws.close()  # drop the socket without a close action
        assert wait_for_pins(db, 0) == 0


class TestColumnarWire:
    def test_columnar_passthrough_and_decode(self, no_leaks):
        """Columnar cursors forward encoded chunks end-to-end: the
        server decodes zero enumeration rows (TransferStats) and the
        client-side decode is equal to in-process answers.

        Sized so the stream backpressures: when the first chunk reaches
        the client, hundreds more are still queued server-side, so the
        live cursor can be inspected without racing its own drain.
        """
        db = Database(random_colored_graph(1500, seed=31).copy())
        registry = DatabaseRegistry()
        registry.add("main", db, close_on_shutdown=False)
        handle = serve_in_thread(registry, cursor_timeout=None, queue_pages=2)
        try:
            client = ServeClient("127.0.0.1", handle.port)
            expected = db.query(QUERY).answers().all()
            assert len(expected) > 200_000
            with client.stream("main") as ws:
                ack = ws.open(QUERY, wire="columnar", chunk_rows=4096)
                assert ack["wire"] == "columnar"
                assert ack["arity"] == 2
                assert ack["chunk_rows"] == 4096
                pages = ws.pages()
                first = next(pages)
                assert first == expected[:4096]
                # While the cursor is live, inspect the server-side
                # handle: chunks crossed, zero rows decoded in the
                # server process — the chunks went worker -> socket.
                cursor = handle.server.cursors.get(ack["cursor"])
                stats = cursor.encoded.transport_stats
                assert stats.chunks >= 1
                assert stats.rows == 0, "server decoded enumeration rows"
                rows = list(first)
                for page in pages:
                    rows.extend(page)
            assert rows == expected
            client.close()
            assert wait_for_pins(db, 0) == 0
        finally:
            handle.stop()
            db.close()

    def test_columnar_downgrades_for_select(self, db, client):
        statement = "SELECT x WHERE B(x) ORDER BY x"
        expected = db.query(statement).all()
        with client.stream("main") as ws:
            ack = ws.open(statement, wire="columnar")
            assert ack["wire"] == "rows"  # downgraded, reported honestly
            assert ws.rows() == expected
        assert wait_for_pins(db, 0) == 0

    def test_columnar_downgrades_for_limit(self, db, client):
        expected = db.query(QUERY).answers().all()[:4]
        with client.stream("main") as ws:
            ack = ws.open(QUERY, wire="columnar", limit=4)
            assert ack["wire"] == "rows"
            assert ws.rows() == expected
        assert wait_for_pins(db, 0) == 0


class TestStreamProtocol:
    def test_select_over_websocket(self, db, client):
        statement = f"SELECT y, x WHERE {QUERY}"
        expected = db.query(statement).all()
        with client.stream("main") as ws:
            ack = ws.open(statement, page_size=4)
            assert ack["columns"] == ["y", "x"]
            assert ws.rows() == expected

    def test_bad_query_is_error_event(self, client):
        with client.stream("main") as ws:
            with pytest.raises(ServeError) as info:
                ws.open("B(x")
            assert info.value.status == 400

    def test_unknown_action_is_error_event(self, client):
        with client.stream("main") as ws:
            ws._send_json({"action": "mystery"})
            event = ws._next_event()
            assert event["event"] == "error"

    def test_unknown_database_refuses_upgrade(self, client, server):
        with pytest.raises(ServeError) as info:
            client.stream("ghost")
        assert info.value.status == 404

    def test_ping_action(self, client):
        with client.stream("main") as ws:
            ws._send_json({"action": "ping"})
            assert ws._next_event() == {"event": "pong"}

    def test_limit_over_websocket(self, db, client):
        expected = db.query(QUERY).answers().all()[:3]
        with client.stream("main") as ws:
            ws.open(QUERY, limit=3, page_size=2)
            assert ws.rows() == expected


class TestServerShutdownWithCursors:
    def test_shutdown_drains_open_cursors(self, db, no_leaks):
        registry = DatabaseRegistry()
        registry.add("main", db, close_on_shutdown=False)
        handle = serve_in_thread(registry, cursor_timeout=None)
        client = ServeClient("127.0.0.1", handle.port)
        # An HTTP cursor is pull-driven, so it is deterministically
        # still open (and pinned) when shutdown begins.
        cursor = client.open_cursor("main", QUERY, page_size=2)
        cursor.next_page()
        client.apply(
            "main", '{"op":"insert","relation":"B","elements":[3]}'
        )
        assert db.stats()["pinned_versions"] >= 1
        handle.stop()  # graceful shutdown with a live pinned cursor
        client.close()
        assert wait_for_pins(db, 0) == 0, "shutdown leaked pins"


class TestCursorReaper:
    def test_idle_cursor_is_reaped(self, db, no_leaks):
        registry = DatabaseRegistry()
        registry.add("main", db, close_on_shutdown=False)
        handle = serve_in_thread(registry, cursor_timeout=0.3)
        try:
            client = ServeClient("127.0.0.1", handle.port)
            cursor = client.open_cursor("main", QUERY, page_size=2)
            cursor.next_page()
            client.apply(
                "main", '{"op":"insert","relation":"R","elements":[5]}'
            )
            assert db.stats()["pinned_versions"] >= 1
            # Idle past the timeout: the reaper must close the cursor
            # and release its pin without any client action.
            assert wait_for_pins(db, 0, timeout=10) == 0, "reaper missed"
            assert handle.server.cursors.count() == 0
            with pytest.raises(ServeError) as info:
                cursor.next_page()  # the reaped cursor is gone
            assert info.value.status in (404, 500)
            client.close()
        finally:
            handle.stop()
