"""HTTP endpoint integration tests against an in-process server."""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve import DatabaseRegistry, ServeClient, serve_in_thread
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

QUERY = "B(x) & R(y) & ~E(x,y)"


@pytest.fixture
def no_leaks():
    """Snapshot live threads/children; fail if the test leaks either."""
    threads_before = set(threading.enumerate())
    children_before = set(multiprocessing.active_children())
    yield
    deadline = time.monotonic() + 10
    leaked_threads: list = []
    leaked_children: list = []
    while time.monotonic() < deadline:
        leaked_threads = [
            t
            for t in threading.enumerate()
            if t not in threads_before and t.is_alive()
        ]
        leaked_children = [
            p
            for p in multiprocessing.active_children()
            if p not in children_before
        ]
        if not leaked_threads and not leaked_children:
            break
        time.sleep(0.05)
    assert not leaked_children, f"leaked processes: {leaked_children}"
    assert not leaked_threads, f"leaked threads: {leaked_threads}"


@pytest.fixture
def db():
    database = Database(random_colored_graph(80, seed=11).copy())
    yield database
    database.close()


@pytest.fixture
def server(db):
    registry = DatabaseRegistry()
    registry.add("main", db, close_on_shutdown=False)
    handle = serve_in_thread(registry, cursor_timeout=None)
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with ServeClient("127.0.0.1", server.port) as c:
        yield c


class TestHttpEndpoints:
    def test_health_and_dbs(self, client):
        assert client.health()["ok"] is True
        assert client.databases() == ["main"]

    def test_query_matches_in_process(self, db, client):
        expected = db.query(QUERY).answers().all()
        assert client.rows("main", QUERY) == expected
        assert client.count("main", QUERY) == len(expected)

    def test_query_limit(self, db, client):
        expected = db.query(QUERY).answers().all()
        assert client.rows("main", QUERY, limit=5) == expected[:5]

    def test_select_statement(self, db, client):
        statement = f"SELECT y WHERE {QUERY} ORDER BY y LIMIT 7"
        expected = db.query(statement).all()
        payload = client.query("main", statement)
        assert payload["columns"] == ["y"]
        rows = [tuple(row) for row in payload["rows"]]
        assert rows == expected

    def test_http_cursor_pages_and_drains_pin(self, db, client):
        expected = db.query(QUERY).answers().all()
        cursor = client.open_cursor("main", QUERY, page_size=7)
        assert cursor.columns == ("x", "y")
        rows = cursor.rows()
        assert rows == expected
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if db.stats()["pinned_versions"] == 0:
                break
            time.sleep(0.01)
        assert db.stats()["pinned_versions"] == 0

    def test_http_cursor_explicit_close_releases_pin(self, db, client):
        cursor = client.open_cursor("main", QUERY, page_size=3)
        cursor.next_page()
        assert db.stats()["pinned_versions"] >= 1
        cursor.close()
        assert db.stats()["pinned_versions"] == 0
        assert client.stats("main")["open_cursors"] == 0

    def test_apply_then_query_sees_new_facts(self, db, client):
        version = db.version
        result = client.apply(
            "main",
            '{"op":"insert","relation":"B","elements":[0]}\n'
            '{"op":"insert","relation":"R","elements":[1]}\n',
        )
        assert result["version_after"] > version
        assert db.version == result["version_after"]
        assert client.count("main", "B(x)") == db.query("B(x)").count()

    def test_stats_payload(self, client):
        stats = client.stats("main")
        assert stats["name"] == "main"
        assert stats["open_cursors"] == 0
        assert "pinned_versions" in stats and "version" in stats

    def test_unknown_database_404(self, client):
        with pytest.raises(ServeError) as info:
            client.rows("ghost", QUERY)
        assert info.value.status == 404

    def test_unknown_cursor_404(self, client):
        with pytest.raises(ServeError) as info:
            client._request("POST", "/db/main/cursor/c999/next", b"")
        assert info.value.status == 404

    def test_bad_query_400(self, client):
        with pytest.raises(ServeError) as info:
            client.rows("main", "B(x")
        assert info.value.status == 400

    def test_bad_body_400(self, client):
        with pytest.raises(ServeError) as info:
            client._request("POST", "/db/main/query", b"not json")
        assert info.value.status == 400

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeError) as info:
            client._request("GET", "/nope")
        assert info.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServeError) as info:
            client._request("POST", "/healthz", b"")
        assert info.value.status == 405

    def test_checkpoint_on_memory_database_400(self, client):
        with pytest.raises(ServeError) as info:
            client.checkpoint("main")
        assert info.value.status == 400


class TestApplyHardening:
    def test_bad_jsonl_line_number_in_400(self, client):
        with pytest.raises(ServeError) as info:
            client.apply(
                "main",
                '{"op":"insert","relation":"B","elements":[0]}\n'
                "{broken\n",
            )
        assert info.value.status == 400
        assert "line 2" in str(info.value)

    def test_non_utf8_body_400(self, client):
        with pytest.raises(ServeError) as info:
            client._request("POST", "/db/main/apply", b"\xff\xfe{}")
        assert info.value.status == 400
        assert "UTF-8" in str(info.value)

    def test_oversized_record_400(self, server, db):
        # A dedicated server with a tiny record limit.
        with ServeClient("127.0.0.1", server.port) as probe:
            assert probe.health()["ok"]
        registry = DatabaseRegistry()
        registry.add("tiny", db, close_on_shutdown=False)
        handle = serve_in_thread(registry, max_record_bytes=64)
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                big = (
                    '{"op":"insert","relation":"E","elements":[0,1],'
                    '"pad":"' + "x" * 200 + '"}'
                )
                with pytest.raises(ServeError) as info:
                    client.apply("tiny", big)
                assert info.value.status == 400
                assert "line 1" in str(info.value)
                assert "limit 64" in str(info.value)
        finally:
            handle.stop()


class TestDurableServing:
    def test_checkpoint_endpoint_and_wal_stats(self, tmp_path, no_leaks):
        db = Database.open(
            tmp_path / "store",
            structure=random_colored_graph(40, seed=3).copy(),
        )
        registry = DatabaseRegistry()
        registry.add("d", db)  # registry owns it now
        handle = serve_in_thread(registry, checkpoint_on_shutdown=True)
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                client.apply(
                    "d", '{"op":"insert","relation":"E","elements":[0,1]}'
                )
                stats = client.stats("d")
                assert stats["wal_records"] == 1
                assert stats["wal_bytes"] > 0
                result = client.checkpoint("d")
                assert result["wal_records_retired"] == 1
                assert result["wal_bytes_retired"] == stats["wal_bytes"]
                assert client.stats("d")["wal_records"] == 0
        finally:
            handle.stop()
        assert db.closed

    def test_shutdown_checkpoints_durable_store(self, tmp_path, no_leaks):
        db = Database.open(
            tmp_path / "store",
            structure=random_colored_graph(40, seed=4).copy(),
        )
        registry = DatabaseRegistry()
        registry.add("d", db)
        handle = serve_in_thread(registry)
        with ServeClient("127.0.0.1", handle.port) as client:
            client.apply(
                "d", '{"op":"insert","relation":"E","elements":[0,2]}'
            )
        handle.stop()
        assert db.closed
        reopened = Database.open(tmp_path / "store")
        try:
            # The shutdown checkpoint rotated the WAL.
            assert reopened.stats()["wal_records"] == 0
            assert reopened.structure.has_fact("E", 0, 2)
        finally:
            reopened.close()


class TestShutdown:
    def test_stop_refuses_new_requests(self, db, no_leaks):
        registry = DatabaseRegistry()
        registry.add("main", db, close_on_shutdown=False)
        handle = serve_in_thread(registry)
        with ServeClient("127.0.0.1", handle.port) as client:
            assert client.health()["ok"]
        handle.stop()
        with pytest.raises(ServeError):
            with ServeClient("127.0.0.1", handle.port, timeout=2) as client:
                client.health()

    def test_threaded_server_leaves_no_threads(self, db, no_leaks):
        registry = DatabaseRegistry()
        registry.add("main", db, close_on_shutdown=False)
        handle = serve_in_thread(registry)
        with ServeClient("127.0.0.1", handle.port) as client:
            client.rows("main", QUERY)
        handle.stop()
