"""Tests for the top-level ``repro`` package surface."""

import pytest

import repro
from repro import Q, Signature, Structure, Var, model_check, parse, prepare


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_all_matches_what_actually_imports(self):
        """``__all__`` is exactly the public surface: every listed name
        resolves (eager or lazy), nothing is listed twice, and every
        public module-level attribute is listed."""
        assert len(repro.__all__) == len(set(repro.__all__)), "duplicate export"
        resolved = {name: getattr(repro, name) for name in repro.__all__}
        assert all(value is not None for value in resolved.values())
        # Lazy exports must also all be listed in __all__.
        for lazy_name in repro._LAZY_EXPORTS:
            assert lazy_name in repro.__all__, f"{lazy_name} missing from __all__"
        public_attributes = {
            name
            for name, value in vars(repro).items()
            if not name.startswith("_")
            and not isinstance(value, type(repro))  # sub-modules aren't API
        }
        undeclared = public_attributes - set(repro.__all__)
        assert not undeclared, f"public names missing from __all__: {undeclared}"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_dynamic_query_lazy_import(self):
        from repro.core.dynamic import DynamicQuery

        assert repro.DynamicQuery is DynamicQuery

    def test_session_exports_lazy_import(self):
        from repro.session import Answers, Database, Query, QueryPlan

        assert repro.Database is Database
        assert repro.Query is Query
        assert repro.Answers is Answers
        assert repro.QueryPlan is QueryPlan

    def test_session_package_all_resolves(self):
        import repro.session

        for name in repro.session.__all__:
            assert getattr(repro.session, name) is not None

    def test_engine_package_all_resolves(self):
        import repro.engine

        for name in repro.engine.__all__:
            assert getattr(repro.engine, name) is not None

    def test_py_typed_marker_ships(self):
        import pathlib

        package_dir = pathlib.Path(repro.__file__).parent
        assert (package_dir / "py.typed").is_file()


class TestTopLevelHelpers:
    @pytest.fixture
    def db(self):
        structure = Structure(Signature.of(E=2, B=1, R=1), range(4))
        structure.add_fact("B", 0)
        structure.add_fact("R", 2)
        structure.add_fact("E", 0, 2)
        structure.add_fact("E", 2, 0)
        return structure

    def test_prepare_roundtrip(self, db):
        prepared = prepare(db, "B(x) & R(y) & ~E(x,y)")
        assert prepared.count() == 0  # the only blue-red pair is an edge
        assert not prepared.test((0, 2))

    def test_model_check_accepts_text(self, db):
        assert model_check("exists x. B(x)", db)
        assert not model_check("forall x. B(x)", db)

    def test_builder_and_parser_agree(self, db):
        x, y = Q.vars("x", "y")
        built = Q.B(x) & Q.R(y) & ~Q.E(x, y)
        assert built == parse("B(x) & R(y) & ~E(x,y)")

    def test_docstring_quickstart_runs(self, db):
        # The module docstring's example, executed literally.
        from repro import Database

        with Database(db) as session:
            query = session.query("B(x) & R(y) & ~E(x,y)")
            assert query.count() == len(list(query.answers()))
            session.insert_fact("E", 0, 2)
            assert query.count() == len(list(query.answers()))
