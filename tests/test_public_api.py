"""Tests for the top-level ``repro`` package surface."""

import pytest

import repro
from repro import Q, Signature, Structure, Var, model_check, parse, prepare


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_dynamic_query_lazy_import(self):
        from repro.core.dynamic import DynamicQuery

        assert repro.DynamicQuery is DynamicQuery


class TestTopLevelHelpers:
    @pytest.fixture
    def db(self):
        structure = Structure(Signature.of(E=2, B=1, R=1), range(4))
        structure.add_fact("B", 0)
        structure.add_fact("R", 2)
        structure.add_fact("E", 0, 2)
        structure.add_fact("E", 2, 0)
        return structure

    def test_prepare_roundtrip(self, db):
        prepared = prepare(db, "B(x) & R(y) & ~E(x,y)")
        assert prepared.count() == 0  # the only blue-red pair is an edge
        assert not prepared.test((0, 2))

    def test_model_check_accepts_text(self, db):
        assert model_check("exists x. B(x)", db)
        assert not model_check("forall x. B(x)", db)

    def test_builder_and_parser_agree(self, db):
        x, y = Q.vars("x", "y")
        built = Q.B(x) & Q.R(y) & ~Q.E(x, y)
        assert built == parse("B(x) & R(y) & ~E(x,y)")

    def test_docstring_quickstart_runs(self, db):
        # The module docstring's example, executed literally.
        query = parse("B(x) & R(y) & ~E(x,y)")
        prepared = prepare(db, query)
        assert prepared.count() == len(list(prepared.enumerate()))
