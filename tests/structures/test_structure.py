"""Unit tests for relational structures and their Gaifman graphs."""

import pytest

from repro.errors import SignatureError
from repro.structures.signature import Signature
from repro.structures.structure import Structure


@pytest.fixture
def sig():
    return Signature.of(E=2, B=1)


@pytest.fixture
def path(sig):
    """A path 0 - 1 - 2 - 3 with 0 blue."""
    db = Structure(sig, range(4))
    for u, v in [(0, 1), (1, 2), (2, 3)]:
        db.add_fact("E", u, v)
    db.add_fact("B", 0)
    return db


class TestConstruction:
    def test_empty_domain_rejected(self, sig):
        with pytest.raises(ValueError):
            Structure(sig, [])

    def test_duplicate_domain_elements_collapse(self, sig):
        db = Structure(sig, [1, 1, 2])
        assert db.cardinality == 2

    def test_relations_kwarg(self, sig):
        db = Structure(sig, range(3), relations={"E": [(0, 1)], "B": [(2,)]})
        assert db.has_fact("E", 0, 1)
        assert db.has_fact("B", 2)

    def test_add_fact_arity_check(self, sig):
        db = Structure(sig, range(3))
        with pytest.raises(SignatureError):
            db.add_fact("E", 0)

    def test_add_fact_unknown_relation(self, sig):
        db = Structure(sig, range(3))
        with pytest.raises(SignatureError):
            db.add_fact("F", 0, 1)

    def test_add_fact_element_outside_domain(self, sig):
        db = Structure(sig, range(3))
        with pytest.raises(ValueError):
            db.add_fact("E", 0, 99)

    def test_remove_fact(self, path):
        path.remove_fact("E", 0, 1)
        assert not path.has_fact("E", 0, 1)
        # Removing again is a no-op.
        path.remove_fact("E", 0, 1)

    def test_domain_order_is_insertion_order(self, sig):
        db = Structure(sig, [3, 1, 2])
        assert list(db.domain) == [3, 1, 2]
        assert db.order.rank(3) == 0


class TestSizes:
    def test_cardinality(self, path):
        assert path.cardinality == 4

    def test_size_formula(self, path):
        # |sigma| + |dom| + sum |R| * ar(R) = 2 + 4 + 3*2 + 1*1
        assert path.size == 2 + 4 + 6 + 1

    def test_repr_mentions_cardinality(self, path):
        assert "|A|=4" in repr(path)


class TestGaifman:
    def test_neighbors_of_path(self, path):
        assert path.neighbors(0) == frozenset({1})
        assert path.neighbors(1) == frozenset({0, 2})

    def test_degree_of_path(self, path):
        assert path.degree == 2

    def test_unary_facts_do_not_create_edges(self, sig):
        db = Structure(sig, range(2))
        db.add_fact("B", 0)
        assert db.degree == 0

    def test_self_loops_do_not_create_edges(self, sig):
        db = Structure(sig, range(2))
        db.add_fact("E", 0, 0)
        assert db.neighbors(0) == frozenset()

    def test_higher_arity_creates_clique(self):
        db = Structure(Signature.of(T=3), range(4))
        db.add_fact("T", 0, 1, 2)
        assert db.neighbors(0) == frozenset({1, 2})
        assert db.neighbors(1) == frozenset({0, 2})
        assert db.degree == 2

    def test_mutation_invalidates_degree(self, path):
        assert path.degree == 2
        path.add_fact("E", 0, 2)
        # Node 2 is now adjacent to 0, 1 and 3.
        assert path.degree == 3


class TestDerived:
    def test_restrict_signature(self, path):
        reduced = path.restrict_signature(["B"])
        assert "E" not in reduced.signature
        assert reduced.has_fact("B", 0)
        assert reduced.degree == 0  # no binary facts left

    def test_induced_substructure(self, path):
        sub = path.induced_substructure([0, 1, 3])
        assert sub.cardinality == 3
        assert sub.has_fact("E", 0, 1)
        assert not sub.has_fact("E", 2, 3)  # 2 was dropped
        assert sub.has_fact("B", 0)

    def test_induced_substructure_unknown_element(self, path):
        with pytest.raises(ValueError):
            path.induced_substructure([0, 99])

    def test_induced_preserves_domain_order(self, path):
        sub = path.induced_substructure([3, 0])
        assert list(sub.domain) == [0, 3]

    def test_copy_is_independent(self, path):
        clone = path.copy()
        clone.add_fact("E", 0, 3)
        assert not path.has_fact("E", 0, 3)

    def test_iter_facts_deterministic(self, path):
        facts = list(path.iter_facts())
        assert facts == list(path.iter_facts())
        assert ("B", (0,)) in facts
