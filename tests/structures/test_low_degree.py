"""Tests for low-degree class descriptors (Section 2.3)."""

import pytest

from repro.structures.low_degree import (
    bounded_degree_class,
    effective_epsilon_budget,
    explicit_degree_check,
    log_degree_class,
)
from repro.structures.random_gen import padded_clique, random_graph


class TestBoundedDegreeClass:
    def test_threshold_is_computable(self):
        cls = bounded_degree_class(4)
        # degree 4 <= n^0.5 needs n >= 16.
        assert cls.threshold(0.5) == 16

    def test_admits_small_structures_unconditionally(self):
        cls = bounded_degree_class(4)
        db = random_graph(8, max_degree=4, seed=0)
        assert cls.admits(db, 0.5)

    def test_admits_large_bounded_degree(self):
        cls = bounded_degree_class(3)
        db = random_graph(100, max_degree=3, seed=0)
        assert cls.admits(db, 0.5)

    def test_rejects_high_degree(self):
        cls = bounded_degree_class(3)
        # A padded clique of size 12 has degree 11 > 40^0.5.
        db = padded_clique(12, 40)
        assert not cls.admits(db, 0.5)
        assert "degree" in cls.violation(db, 0.5)

    def test_violation_none_when_admitted(self):
        cls = bounded_degree_class(3)
        db = random_graph(100, max_degree=3, seed=0)
        assert cls.violation(db, 0.5) is None

    def test_delta_must_be_positive(self):
        with pytest.raises(ValueError):
            bounded_degree_class(3).threshold(0)


class TestLogDegreeClass:
    def test_threshold_grows_as_delta_shrinks(self):
        cls = log_degree_class()
        assert cls.threshold(0.1) >= cls.threshold(0.5)

    def test_log_degree_structures_admitted(self):
        cls = log_degree_class()
        db = random_graph(256, max_degree=8, seed=1)  # 8 = log2(256)
        # Above the threshold for delta = 0.5: degree 8 <= 256^0.5 = 16.
        assert cls.admits(db, 0.5)


class TestHelpers:
    def test_explicit_degree_check(self):
        db = random_graph(100, max_degree=3, seed=2)
        assert explicit_degree_check(db, 0.5)
        clique = padded_clique(12, 40)
        assert not explicit_degree_check(clique, 0.5)

    def test_effective_epsilon_budget(self):
        cls = bounded_degree_class(2)
        # An algorithm with degree exponent 4 and eps 0.5 needs
        # delta = 0.125, i.e. n >= 2^8.
        assert effective_epsilon_budget(cls, 0.5, 4) == 256

    def test_effective_epsilon_budget_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            effective_epsilon_budget(bounded_degree_class(2), 0.0, 4)
