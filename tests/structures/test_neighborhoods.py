"""Tests for the neighborhood index (Lemma 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.gaifman_graph import ball
from repro.structures.neighborhoods import NeighborhoodIndex
from repro.structures.random_gen import random_colored_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure


@pytest.fixture
def star():
    """A star: center 0 with leaves 1..4; leaf 1 is blue."""
    db = Structure(Signature.of(E=2, B=1), range(5))
    for leaf in range(1, 5):
        db.add_fact("E", 0, leaf)
    db.add_fact("B", 1)
    return db


class TestBalls:
    def test_negative_radius_rejected(self, star):
        with pytest.raises(ValueError):
            NeighborhoodIndex(star, -1)

    def test_radius_zero(self, star):
        index = NeighborhoodIndex(star, 0)
        assert index.ball(0) == frozenset({0})

    def test_radius_one_from_center(self, star):
        index = NeighborhoodIndex(star, 1)
        assert index.ball(0) == frozenset(range(5))

    def test_radius_one_from_leaf(self, star):
        index = NeighborhoodIndex(star, 1)
        assert index.ball(1) == frozenset({0, 1})

    def test_radius_two_from_leaf_covers_star(self, star):
        index = NeighborhoodIndex(star, 2)
        assert index.ball(1) == frozenset(range(5))

    def test_ball_of_tuple(self, star):
        index = NeighborhoodIndex(star, 1)
        assert index.ball_of_tuple((1, 2)) == frozenset({0, 1, 2})

    def test_within(self, star):
        index = NeighborhoodIndex(star, 1)
        assert index.within(1, 0)
        assert not index.within(1, 2)

    @given(seed=st.integers(0, 60), radius=st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_matches_direct_bfs(self, seed, radius):
        db = random_colored_graph(15, max_degree=3, seed=seed)
        index = NeighborhoodIndex(db, radius)
        for anchor in list(db.domain)[:5]:
            assert index.ball(anchor) == frozenset(ball(db, anchor, radius))


class TestReduct:
    def test_reduct_ignores_other_relations(self, star):
        # Balls computed in the reduct to {B} see no edges at all.
        index = NeighborhoodIndex(star, 2, relation_names=["B"])
        assert index.ball(0) == frozenset({0})

    def test_reduct_with_edges(self, star):
        index = NeighborhoodIndex(star, 1, relation_names=["E"])
        assert index.ball(0) == frozenset(range(5))


class TestInducedNeighborhoods:
    def test_neighborhood_is_induced(self, star):
        index = NeighborhoodIndex(star, 1)
        sub = index.neighborhood(1)
        assert sub.cardinality == 2
        assert sub.has_fact("E", 0, 1)
        assert sub.has_fact("B", 1)

    def test_neighborhood_cached(self, star):
        index = NeighborhoodIndex(star, 1)
        assert index.neighborhood(1) is index.neighborhood(1)

    def test_neighborhood_of_tuple(self, star):
        index = NeighborhoodIndex(star, 1)
        sub = index.neighborhood_of_tuple((1, 2))
        assert set(sub.domain) == {0, 1, 2}

    def test_max_ball_size(self, star):
        index = NeighborhoodIndex(star, 1)
        assert index.max_ball_size() == 5
