"""Differential suite for the rolling (incremental) content fingerprint.

The contract: after ANY stream of effective/no-op inserts and removals,
the O(1)-maintained rolling hash equals the O(||A||) from-scratch
recompute (:func:`repro.structures.serialize.fingerprint_full`) — and
two structures with equal content hash identically regardless of the
update path that produced them.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.session import Database
from repro.structures import Signature, Structure
from repro.structures.serialize import fingerprint, fingerprint_full

SIG = Signature.of(E=2, B=1, T=3)
ARITIES = {"E": 2, "B": 1, "T": 3}
DOMAIN = 18


def fresh(n: int = DOMAIN) -> Structure:
    return Structure(SIG, range(n))


def apply_ops(structure: Structure, ops) -> None:
    for insert, relation, fact in ops:
        if insert:
            structure.add_fact(relation, *fact)
        else:
            structure.remove_fact(relation, *fact)


@st.composite
def update_op(draw):
    relation = draw(st.sampled_from(sorted(ARITIES)))
    fact = tuple(
        draw(st.integers(0, DOMAIN - 1)) for _ in range(ARITIES[relation])
    )
    return (draw(st.booleans()), relation, fact)


operations = st.lists(update_op(), max_size=60)


class TestRollingEqualsFull:
    def test_1000_mixed_updates(self):
        """The acceptance gate: >=1000 mixed inserts/removals, rolling ==
        full recompute throughout (checked periodically) and at the end."""
        structure = fresh()
        # Initialize the rolling accumulator BEFORE the stream, so every
        # update exercises the O(1) maintenance path.
        assert fingerprint(structure) == fingerprint_full(structure)
        rng = random.Random(0xF1A9)
        for step in range(1200):
            relation = rng.choice(sorted(ARITIES))
            fact = tuple(
                rng.randrange(DOMAIN) for _ in range(ARITIES[relation])
            )
            if rng.random() < 0.55:
                structure.add_fact(relation, *fact)
            else:
                structure.remove_fact(relation, *fact)
            if step % 97 == 0:
                assert fingerprint(structure) == fingerprint_full(structure)
        assert fingerprint(structure) == fingerprint_full(structure)
        # The final state also matches a structure built from scratch in
        # a different insertion order.
        rebuilt = fresh()
        facts = [
            (name, fact)
            for name in SIG.names()
            for fact in structure.facts(name)
        ]
        rng.shuffle(facts)
        for name, fact in facts:
            rebuilt.add_fact(name, *fact)
        assert fingerprint(rebuilt) == fingerprint(structure)

    def test_noop_updates_keep_hash(self):
        structure = fresh()
        structure.add_fact("E", 0, 1)
        before = fingerprint(structure)
        structure.add_fact("E", 0, 1)      # duplicate insert: no-op
        structure.remove_fact("E", 3, 4)   # absent removal: no-op
        assert fingerprint(structure) == before

    def test_insert_then_remove_restores_hash(self):
        structure = fresh()
        before = fingerprint(structure)
        structure.add_fact("T", 1, 2, 3)
        assert fingerprint(structure) != before
        structure.remove_fact("T", 1, 2, 3)
        assert fingerprint(structure) == before

    def test_lazy_initialization_after_updates(self):
        """Fingerprinting only after a burst of updates still agrees."""
        structure = fresh()
        structure.add_fact("E", 0, 1)
        structure.add_fact("B", 5)
        structure.remove_fact("E", 0, 1)
        assert fingerprint(structure) == fingerprint_full(structure)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ops=operations)
    def test_randomized_streams(self, ops):
        streamed = fresh()
        fingerprint(streamed)  # arm the rolling accumulator up front
        apply_ops(streamed, ops)
        assert fingerprint(streamed) == fingerprint_full(streamed)
        # Equal content from a fresh build (set semantics, any order).
        rebuilt = fresh()
        for name in SIG.names():
            for fact in streamed.facts(name):
                rebuilt.add_fact(name, *fact)
        assert fingerprint(rebuilt) == fingerprint(streamed)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ops=operations)
    def test_rolling_never_armed_matches_armed(self, ops):
        """Same stream, one structure fingerprinted from the start and one
        only at the end: identical hashes."""
        armed, cold = fresh(), fresh()
        fingerprint(armed)
        apply_ops(armed, ops)
        apply_ops(cold, ops)
        assert fingerprint(armed) == fingerprint(cold)


class TestSessionIntegration:
    def test_database_updates_ride_the_rolling_hash(self):
        structure = Structure(Signature.of(E=2, B=1, R=1), range(12))
        for i in range(11):
            structure.add_fact("E", i, i + 1)
            structure.add_fact("E", i + 1, i)
        structure.add_fact("B", 0)
        structure.add_fact("R", 5)
        with Database(structure) as db:
            rng = random.Random(3)
            for _ in range(50):
                node = rng.randrange(12)
                if rng.random() < 0.5:
                    db.insert_fact("B", node)
                else:
                    db.remove_fact("B", node)
            assert db.structure_fingerprint == fingerprint_full(structure)

    def test_derived_structures_fingerprint_consistently(self, tiny_graph=None):
        structure = fresh()
        structure.add_fact("E", 0, 1)
        fingerprint(structure)  # arm
        clone = structure.copy()
        assert fingerprint(clone) == fingerprint(structure)
        restricted = structure.restrict_signature(["E"])
        assert fingerprint(restricted) == fingerprint_full(restricted)
        induced = structure.induced_substructure(range(5))
        assert fingerprint(induced) == fingerprint_full(induced)
