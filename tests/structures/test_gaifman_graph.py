"""Tests for Gaifman-graph distance and ball computations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.gaifman_graph import (
    ball,
    ball_of_set,
    bounded_distance,
    degree_histogram,
    degree_profile,
    distances_from,
    tuple_is_connected,
    within_distance,
)
from repro.structures.random_gen import cycle_graph, random_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure


@pytest.fixture
def path6():
    db = Structure(Signature.of(E=2), range(6))
    for u in range(5):
        db.add_fact("E", u, u + 1)
    return db


class TestBoundedDistance:
    def test_zero_distance(self, path6):
        assert bounded_distance(path6, 2, 2, 0) == 0

    def test_adjacent(self, path6):
        assert bounded_distance(path6, 0, 1, 5) == 1

    def test_path_distance(self, path6):
        assert bounded_distance(path6, 0, 4, 5) == 4

    def test_beyond_bound_is_none(self, path6):
        assert bounded_distance(path6, 0, 4, 3) is None

    def test_disconnected_is_none(self):
        db = Structure(Signature.of(E=2), range(4))
        db.add_fact("E", 0, 1)
        assert bounded_distance(db, 0, 3, 10) is None

    def test_within_distance(self, path6):
        assert within_distance(path6, 0, 3, 3)
        assert not within_distance(path6, 0, 3, 2)

    def test_symmetric(self, path6):
        assert bounded_distance(path6, 1, 4, 9) == bounded_distance(path6, 4, 1, 9)


class TestBalls:
    def test_radius_zero(self, path6):
        assert ball(path6, 2, 0) == {2}

    def test_radius_one(self, path6):
        assert ball(path6, 2, 1) == {1, 2, 3}

    def test_radius_covers_all(self, path6):
        assert ball(path6, 0, 5) == set(range(6))

    def test_ball_of_set_is_union(self, path6):
        assert ball_of_set(path6, [0, 5], 1) == {0, 1, 4, 5}

    def test_distances_from(self, path6):
        distances = distances_from(path6, 0, 3)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3}

    @given(seed=st.integers(0, 100), radius=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_ball_monotone_in_radius(self, seed, radius):
        db = random_graph(12, max_degree=3, seed=seed)
        anchor = db.domain[0]
        assert ball(db, anchor, radius) <= ball(db, anchor, radius + 1)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_ball_matches_distances(self, seed):
        db = random_graph(12, max_degree=3, seed=seed)
        anchor = db.domain[0]
        by_ball = ball(db, anchor, 2)
        by_distance = {
            other
            for other in db.domain
            if bounded_distance(db, anchor, other, 2) is not None
        }
        assert by_ball == by_distance


class TestTupleConnected:
    def test_empty_tuple(self, path6):
        assert tuple_is_connected(path6, (), 1)

    def test_singleton(self, path6):
        assert tuple_is_connected(path6, (3,), 1)

    def test_adjacent_pair(self, path6):
        assert tuple_is_connected(path6, (0, 1), 1)

    def test_far_pair_not_connected_at_radius_one(self, path6):
        assert not tuple_is_connected(path6, (0, 5), 1)

    def test_far_pair_connected_at_larger_radius(self, path6):
        assert tuple_is_connected(path6, (0, 5), 5)

    def test_chain_through_middle(self, path6):
        # 0 and 4 are far apart, but 2 links them at radius 2.
        assert tuple_is_connected(path6, (0, 4, 2), 2)

    def test_repeated_elements(self, path6):
        assert tuple_is_connected(path6, (3, 3), 1)


class TestDegreeStats:
    def test_histogram_of_cycle(self):
        db = cycle_graph(8)
        assert degree_histogram(db) == {2: 8}

    def test_profile(self, path6):
        maximum, average = degree_profile(path6)
        assert maximum == 2
        assert average == pytest.approx((1 + 2 + 2 + 2 + 2 + 1) / 6)
