"""Unit tests for relational signatures."""

import pytest

from repro.errors import SignatureError
from repro.structures.signature import RelationSymbol, Signature


class TestRelationSymbol:
    def test_str(self):
        assert str(RelationSymbol("E", 2)) == "E/2"

    def test_arity_must_be_positive(self):
        with pytest.raises(SignatureError):
            RelationSymbol("E", 0)

    def test_name_must_be_nonempty(self):
        with pytest.raises(SignatureError):
            RelationSymbol("", 1)

    def test_equality_and_hash(self):
        assert RelationSymbol("E", 2) == RelationSymbol("E", 2)
        assert hash(RelationSymbol("E", 2)) == hash(RelationSymbol("E", 2))
        assert RelationSymbol("E", 2) != RelationSymbol("E", 3)


class TestSignature:
    def test_of_constructor(self):
        sig = Signature.of(E=2, B=1)
        assert len(sig) == 2
        assert sig.arity("E") == 2
        assert sig.arity("B") == 1

    def test_mapping_constructor(self):
        sig = Signature({"T": 3})
        assert sig.arity("T") == 3

    def test_iteration_is_sorted_by_name(self):
        sig = Signature.of(Z=1, A=2, M=1)
        assert [symbol.name for symbol in sig] == ["A", "M", "Z"]

    def test_contains(self):
        sig = Signature.of(E=2)
        assert "E" in sig
        assert "F" not in sig

    def test_unknown_symbol_raises(self):
        sig = Signature.of(E=2)
        with pytest.raises(SignatureError):
            sig.symbol("F")

    def test_conflicting_arities_raise(self):
        with pytest.raises(SignatureError):
            Signature([RelationSymbol("E", 2), RelationSymbol("E", 3)])

    def test_duplicate_consistent_symbols_collapse(self):
        sig = Signature([RelationSymbol("E", 2), RelationSymbol("E", 2)])
        assert len(sig) == 1

    def test_max_arity(self):
        assert Signature.of(E=2, T=3, B=1).max_arity == 3
        assert Signature([]).max_arity == 0

    def test_restrict(self):
        sig = Signature.of(E=2, B=1, R=1)
        restricted = sig.restrict(["E", "B"])
        assert "E" in restricted and "B" in restricted and "R" not in restricted

    def test_restrict_ignores_unknown_names(self):
        sig = Signature.of(E=2)
        assert len(sig.restrict(["E", "nope"])) == 1

    def test_extend(self):
        extended = Signature.of(E=2).extend({"B": 1})
        assert "B" in extended and "E" in extended

    def test_extend_conflict_raises(self):
        with pytest.raises(SignatureError):
            Signature.of(E=2).extend({"E": 3})

    def test_is_binary(self):
        assert Signature.of(E=2, B=1).is_binary()
        assert not Signature.of(T=3).is_binary()

    def test_equality_and_hash(self):
        assert Signature.of(E=2, B=1) == Signature.of(B=1, E=2)
        assert hash(Signature.of(E=2)) == hash(Signature.of(E=2))

    def test_names(self):
        assert Signature.of(E=2, B=1).names() == ("B", "E")
