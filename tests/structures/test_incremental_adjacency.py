"""Property tests: incremental Gaifman-adjacency maintenance.

``Structure.add_fact`` / ``remove_fact`` patch the adjacency and the
edge-support counts in place; these tests assert the invariant that the
incremental state always equals a from-scratch rebuild — under random
update sequences, overlapping facts (edges witnessed by several facts),
and higher-arity relations.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.random_gen import random_colored_graph
from repro.structures.signature import Signature
from repro.structures.structure import Structure


def rebuilt_adjacency(structure: Structure):
    """Ground truth: recompute adjacency from the raw facts."""
    adjacency = {element: set() for element in structure.domain}
    for name in structure.relation_names():
        for fact in structure.facts(name):
            distinct = set(fact)
            for left in distinct:
                for right in distinct:
                    if left != right:
                        adjacency[left].add(right)
    return adjacency


def assert_adjacency_consistent(structure: Structure):
    want = rebuilt_adjacency(structure)
    for element in structure.domain:
        assert set(structure.neighbors(element)) == want[element]


class TestOverlappingFacts:
    def test_edge_survives_while_any_witness_remains(self):
        db = Structure(Signature.of(E=2, F=2), range(3))
        db.add_fact("E", 0, 1)
        assert 1 in db.neighbors(0)
        db.add_fact("F", 0, 1)      # second witness for the same edge
        db.remove_fact("E", 0, 1)
        assert 1 in db.neighbors(0)  # F still witnesses it
        db.remove_fact("F", 0, 1)
        assert 1 not in db.neighbors(0)

    def test_symmetric_facts_are_two_witnesses(self):
        db = Structure(Signature.of(E=2), range(3))
        db.add_fact("E", 0, 1)
        db.add_fact("E", 1, 0)
        db.remove_fact("E", 0, 1)
        assert 1 in db.neighbors(0)
        db.remove_fact("E", 1, 0)
        assert 1 not in db.neighbors(0)

    def test_ternary_fact_clique_removal(self):
        db = Structure(Signature.of(T=3, E=2), range(4))
        db.add_fact("T", 0, 1, 2)
        db.add_fact("E", 0, 1)
        db.remove_fact("T", 0, 1, 2)
        # The E-fact still witnesses 0-1; 1-2 and 0-2 are gone.
        assert db.neighbors(0) == {1}
        assert db.neighbors(2) == set()

    def test_repeated_elements_in_fact(self):
        db = Structure(Signature.of(T=3), range(3))
        db.add_fact("T", 0, 0, 1)
        assert db.neighbors(0) == {1}
        db.remove_fact("T", 0, 0, 1)
        assert db.neighbors(0) == set()


class TestRandomWalks:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_mixed_updates_match_rebuild(self, seed):
        rng = random.Random(seed)
        db = random_colored_graph(12, max_degree=3, seed=seed)
        db.degree  # force an initial build so updates go incremental
        domain = list(db.domain)
        for _ in range(30):
            a, b = rng.choice(domain), rng.choice(domain)
            roll = rng.random()
            if roll < 0.4:
                db.add_fact("E", a, b)
            elif roll < 0.8:
                db.remove_fact("E", a, b)
            elif roll < 0.9:
                db.add_fact("B", a)
            else:
                db.remove_fact("B", a)
        assert_adjacency_consistent(db)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_ternary_updates_match_rebuild(self, seed):
        rng = random.Random(seed)
        db = Structure(Signature.of(T=3), range(8))
        db.degree
        for _ in range(25):
            fact = tuple(rng.randrange(8) for _ in range(3))
            if rng.random() < 0.6:
                db.add_fact("T", *fact)
            else:
                db.remove_fact("T", *fact)
        assert_adjacency_consistent(db)

    def test_updates_before_first_build_are_fine(self):
        """Mutations while caches are dirty defer to the next rebuild."""
        db = Structure(Signature.of(E=2), range(4))
        db.add_fact("E", 0, 1)
        db.add_fact("E", 1, 2)
        db.remove_fact("E", 0, 1)
        assert db.neighbors(1) == {2}
        assert_adjacency_consistent(db)

    def test_degree_tracks_updates(self):
        db = Structure(Signature.of(E=2), range(4))
        assert db.degree == 0
        db.add_fact("E", 0, 1)
        db.add_fact("E", 0, 2)
        db.add_fact("E", 0, 3)
        assert db.degree == 3
        db.remove_fact("E", 0, 2)
        assert db.degree == 2
