"""Copy-on-write forks and frozen version pinning on :class:`Structure`.

The substrate of snapshot isolation: ``fork()`` must be O(#relations)
cheap, share fact storage until either side writes, continue the version
lineage, and keep the rolling fingerprint exact; ``freeze()`` must turn
every mutation into :class:`FrozenStructureError` while read paths keep
working.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrozenStructureError
from repro.structures.random_gen import random_colored_graph
from repro.structures.serialize import fingerprint, fingerprint_full
from repro.structures.signature import Signature
from repro.structures.structure import Structure


@pytest.fixture
def base():
    return random_colored_graph(20, max_degree=3, seed=31).copy()


class TestFreeze:
    def test_frozen_rejects_mutations(self, base):
        base.freeze()
        assert base.frozen
        with pytest.raises(FrozenStructureError):
            base.add_fact("B", 0)
        with pytest.raises(FrozenStructureError):
            base.remove_fact("B", 0)

    def test_frozen_reads_keep_working(self, base):
        before_facts = base.facts("E")
        before_degree = base.degree
        base.freeze()
        assert base.facts("E") == before_facts
        assert base.degree == before_degree
        assert base.neighbors(base.domain[0]) is not None
        assert fingerprint(base) == fingerprint_full(base)

    def test_copy_of_frozen_is_mutable(self, base):
        base.freeze()
        clone = base.copy()
        clone.add_fact("B", clone.domain[0])  # no raise


class TestFork:
    def test_fork_shares_until_write(self, base):
        fork = base.fork()
        # Same set objects pre-write (the whole point of COW).
        assert fork._relations["E"] is base._relations["E"]
        element = next(
            e for e in base.domain if not base.has_fact("B", e)
        )
        fork.add_fact("B", element)
        assert fork._relations["B"] is not base._relations["B"]
        assert fork._relations["E"] is base._relations["E"], (
            "untouched relations stay shared"
        )
        assert fork.has_fact("B", element)
        assert not base.has_fact("B", element)

    def test_parent_write_does_not_leak_into_fork(self, base):
        fork = base.fork()
        element = next(e for e in base.domain if not base.has_fact("R", e))
        base.add_fact("R", element)
        assert not fork.has_fact("R", element)

    def test_version_lineage_continues(self, base):
        v = base.version
        fork = base.fork()
        assert fork.version == v
        fork.add_fact("B", next(
            e for e in base.domain if not base.has_fact("B", e)
        ))
        assert fork.version == v + 1

    def test_fork_fingerprint_matches_full_recompute(self, base):
        fingerprint(base)  # initialize the rolling accumulator
        fork = base.fork()
        element = next(e for e in base.domain if not base.has_fact("B", e))
        fork.add_fact("B", element)
        assert fingerprint(fork) == fingerprint_full(fork)
        assert fingerprint(base) == fingerprint_full(base)
        assert fingerprint(fork) != fingerprint(base)

    def test_fork_adjacency_independent(self, base):
        left, right = base.domain[0], base.domain[-1]
        fork = base.fork()
        if not base.has_fact("E", left, right):
            fork.add_fact("E", left, right)
            assert right in fork.neighbors(left)
            assert (
                right in base.neighbors(left)
            ) == base.has_fact("E", right, left)

    def test_fork_of_frozen_parent(self, base):
        base.freeze()
        fork = base.fork()
        fork.add_fact("B", next(
            e for e in base.domain if not base.has_fact("B", e)
        ))
        assert not base.frozen or fork.frozen is False

    def test_chained_forks(self, base):
        first = base.fork()
        element = next(e for e in base.domain if not base.has_fact("B", e))
        first.add_fact("B", element)
        second = first.fork()
        other = next(
            e
            for e in base.domain
            if not first.has_fact("R", e)
        )
        second.add_fact("R", other)
        assert second.has_fact("B", element)
        assert not second.has_fact("R", other) or second.has_fact("R", other)
        assert first.has_fact("B", element)
        assert not first.has_fact("R", other)
        assert not base.has_fact("B", element)


@given(seed=st.integers(0, 50), flips=st.integers(1, 12))
@settings(max_examples=25, deadline=None)
def test_fork_differential_vs_copy(seed, flips):
    """A COW fork mutated arbitrarily must equal a deep copy mutated the
    same way — fact sets, fingerprints, and Gaifman adjacency."""
    import random

    base = random_colored_graph(14, max_degree=3, seed=seed)
    fingerprint(base)
    fork = base.fork()
    deep = base.copy()
    rng = random.Random(seed)
    domain = list(base.domain)
    for _ in range(flips):
        relation = rng.choice(["E", "B", "R"])
        if relation == "E":
            fact = (rng.choice(domain), rng.choice(domain))
        else:
            fact = (rng.choice(domain),)
        if rng.random() < 0.5:
            fork.add_fact(relation, *fact)
            deep.add_fact(relation, *fact)
        else:
            fork.remove_fact(relation, *fact)
            deep.remove_fact(relation, *fact)
    for name in base.relation_names():
        assert fork.facts(name) == deep.facts(name)
    assert fingerprint(fork) == fingerprint_full(deep)
    assert {
        e: set(fork.neighbors(e)) for e in domain
    } == {e: set(deep.neighbors(e)) for e in domain}
