"""Tests for the plain-text structure format."""

import pytest

from repro.errors import ReproError
from repro.structures.random_gen import random_colored_graph, random_structure
from repro.structures.serialize import dumps, load_file, loads, save_file
from repro.structures.signature import Signature
from repro.structures.structure import Structure


@pytest.fixture
def db():
    structure = Structure(Signature.of(E=2, B=1), range(4))
    structure.add_fact("E", 0, 1)
    structure.add_fact("E", 2, 3)
    structure.add_fact("B", 0)
    return structure


class TestRoundTrip:
    def test_basic(self, db):
        restored = loads(dumps(db))
        assert restored.signature == db.signature
        assert list(restored.domain) == list(db.domain)
        for name in db.relation_names():
            assert restored.facts(name) == db.facts(name)

    def test_random_colored_graph(self):
        db = random_colored_graph(25, max_degree=3, seed=9)
        restored = loads(dumps(db))
        assert restored.facts("E") == db.facts("E")
        assert restored.facts("B") == db.facts("B")
        assert restored.degree == db.degree

    def test_ternary(self):
        db = random_structure(Signature.of(T=3), 10, seed=4)
        restored = loads(dumps(db))
        assert restored.facts("T") == db.facts("T")

    def test_string_elements(self):
        db = Structure(Signature.of(E=2), ["alice", "bob"])
        db.add_fact("E", "alice", "bob")
        restored = loads(dumps(db))
        assert restored.has_fact("E", "alice", "bob")

    def test_file_roundtrip(self, db, tmp_path):
        path = tmp_path / "db.txt"
        save_file(db, path)
        restored = load_file(path)
        assert restored.facts("E") == db.facts("E")

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# a comment\n"
            "signature E/2\n"
            "\n"
            "domain 0 1\n"
            "# another\n"
            "E 0 1\n"
        )
        restored = loads(text)
        assert restored.has_fact("E", 0, 1)

    def test_facts_before_domain_line_are_deferred(self):
        text = "signature E/2\nE 0 1\ndomain 0 1\n"
        assert loads(text).has_fact("E", 0, 1)


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(ReproError):
            loads("E 0 1\n")

    def test_domain_before_signature(self):
        with pytest.raises(ReproError):
            loads("domain 0 1\nsignature E/2\n")

    def test_bad_signature_entry(self):
        with pytest.raises(ReproError):
            loads("signature E/two\ndomain 0\n")

    def test_unknown_relation(self):
        with pytest.raises(ReproError):
            loads("signature E/2\ndomain 0 1\nF 0 1\n")

    def test_unserializable_element(self):
        db = Structure(Signature.of(B=1), ["has space"])
        with pytest.raises(ReproError):
            dumps(db)


class TestLineageDirectives:
    def test_round_trip(self):
        db = random_colored_graph(15, max_degree=3, seed=3)
        db.add_fact("B", next(e for e in db.domain if not db.has_fact("B", e)))
        version, generation = db.version, db.generation
        text = dumps(db)
        assert f"#! version {version}" in text
        assert f"#! generation {generation}" in text
        restored = loads(text)
        assert restored.version == version
        assert restored.generation == generation

    def test_lineage_is_authoritative_over_the_recount(self):
        # copy() resets the version counter without clearing facts, so
        # the persisted version can be *below* the fact count a loader
        # re-adds; the directive must win either way.
        db = random_colored_graph(15, max_degree=3, seed=3).copy()
        assert db.version == 0
        restored = loads(dumps(db))
        assert restored.version == 0
        assert restored.facts("E") == db.facts("E")

    def test_forked_generation_round_trips(self):
        db = random_colored_graph(10, max_degree=2, seed=5)
        fork = db.fork()
        assert fork.generation == db.generation + 1
        restored = loads(dumps(fork))
        assert restored.generation == fork.generation

    def test_pre_directive_files_still_load(self, db):
        # Files written before the lineage directives existed have no
        # "#!" lines: they load with the natural re-counted lineage.
        text = "\n".join(
            line for line in dumps(db).splitlines()
            if not line.startswith("#!")
        ) + "\n"
        restored = loads(text)
        assert restored.facts("E") == db.facts("E")
        assert restored.generation == 0

    def test_unknown_directives_are_skipped(self, db):
        text = dumps(db).replace(
            "#! version", "#! flavor vanilla\n#! version"
        )
        restored = loads(text)
        assert restored.version == db.version
        assert restored.facts("E") == db.facts("E")
