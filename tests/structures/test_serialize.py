"""Tests for the plain-text structure format."""

import pytest

from repro.errors import ReproError
from repro.structures.random_gen import random_colored_graph, random_structure
from repro.structures.serialize import dumps, load_file, loads, save_file
from repro.structures.signature import Signature
from repro.structures.structure import Structure


@pytest.fixture
def db():
    structure = Structure(Signature.of(E=2, B=1), range(4))
    structure.add_fact("E", 0, 1)
    structure.add_fact("E", 2, 3)
    structure.add_fact("B", 0)
    return structure


class TestRoundTrip:
    def test_basic(self, db):
        restored = loads(dumps(db))
        assert restored.signature == db.signature
        assert list(restored.domain) == list(db.domain)
        for name in db.relation_names():
            assert restored.facts(name) == db.facts(name)

    def test_random_colored_graph(self):
        db = random_colored_graph(25, max_degree=3, seed=9)
        restored = loads(dumps(db))
        assert restored.facts("E") == db.facts("E")
        assert restored.facts("B") == db.facts("B")
        assert restored.degree == db.degree

    def test_ternary(self):
        db = random_structure(Signature.of(T=3), 10, seed=4)
        restored = loads(dumps(db))
        assert restored.facts("T") == db.facts("T")

    def test_string_elements(self):
        db = Structure(Signature.of(E=2), ["alice", "bob"])
        db.add_fact("E", "alice", "bob")
        restored = loads(dumps(db))
        assert restored.has_fact("E", "alice", "bob")

    def test_file_roundtrip(self, db, tmp_path):
        path = tmp_path / "db.txt"
        save_file(db, path)
        restored = load_file(path)
        assert restored.facts("E") == db.facts("E")

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# a comment\n"
            "signature E/2\n"
            "\n"
            "domain 0 1\n"
            "# another\n"
            "E 0 1\n"
        )
        restored = loads(text)
        assert restored.has_fact("E", 0, 1)

    def test_facts_before_domain_line_are_deferred(self):
        text = "signature E/2\nE 0 1\ndomain 0 1\n"
        assert loads(text).has_fact("E", 0, 1)


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(ReproError):
            loads("E 0 1\n")

    def test_domain_before_signature(self):
        with pytest.raises(ReproError):
            loads("domain 0 1\nsignature E/2\n")

    def test_bad_signature_entry(self):
        with pytest.raises(ReproError):
            loads("signature E/two\ndomain 0\n")

    def test_unknown_relation(self):
        with pytest.raises(ReproError):
            loads("signature E/2\ndomain 0 1\nF 0 1\n")

    def test_unserializable_element(self):
        db = Structure(Signature.of(B=1), ["has space"])
        with pytest.raises(ReproError):
            dumps(db)
