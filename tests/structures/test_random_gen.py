"""Tests for the workload generators: determinism and degree budgets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.random_gen import (
    cycle_graph,
    degree_bounded,
    degree_log,
    degree_power,
    grid_graph,
    low_degree_graph,
    padded_clique,
    random_bipartite,
    random_colored_graph,
    random_graph,
    random_structure,
)
from repro.structures.signature import Signature


class TestDegreeSchedules:
    def test_bounded(self):
        assert degree_bounded(4)(10) == 4
        assert degree_bounded(4)(10_000) == 4

    def test_log(self):
        schedule = degree_log()
        assert schedule(2) == 2  # floor
        assert schedule(1024) == 10

    def test_log_power(self):
        assert degree_log(power=2.0)(1024) == 100

    def test_power(self):
        assert degree_power(0.5)(100) == 10
        assert degree_power(0.5, floor=4)(4) == 4


class TestRandomGraph:
    @given(seed=st.integers(0, 50), degree=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_degree_budget_respected(self, seed, degree):
        db = random_graph(40, max_degree=degree, seed=seed)
        assert db.degree <= degree

    def test_deterministic(self):
        a = random_graph(30, max_degree=3, seed=9)
        b = random_graph(30, max_degree=3, seed=9)
        assert a.facts("E") == b.facts("E")

    def test_different_seeds_differ(self):
        a = random_graph(30, max_degree=3, seed=1)
        b = random_graph(30, max_degree=3, seed=2)
        assert a.facts("E") != b.facts("E")

    def test_symmetric_edges(self):
        db = random_graph(20, max_degree=3, seed=0, symmetric=True)
        for u, v in db.facts("E"):
            assert db.has_fact("E", v, u)

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            random_graph(0)


class TestColoredGraph:
    def test_has_colors(self):
        db = random_colored_graph(40, max_degree=3, seed=0)
        assert "B" in db.signature and "R" in db.signature
        blues = db.facts("B")
        reds = db.facts("R")
        assert blues and reds

    def test_color_probability_extremes(self):
        all_colored = random_colored_graph(
            20, max_degree=2, color_probability=1.0, seed=0
        )
        assert len(all_colored.facts("B")) == 20
        none_colored = random_colored_graph(
            20, max_degree=2, color_probability=0.0, seed=0
        )
        assert not none_colored.facts("B")

    def test_custom_colors(self):
        db = random_colored_graph(20, colors=("P", "Q", "S"), seed=0)
        assert {"P", "Q", "S"} <= set(db.signature.names())

    def test_low_degree_graph_uses_schedule(self):
        db = low_degree_graph(64, degree_schedule=degree_log(), seed=0)
        assert db.degree <= 6  # log2(64)


class TestSpecialShapes:
    def test_padded_clique_degree(self):
        db = padded_clique(5, 30)
        assert db.degree == 4
        # Padding elements are isolated.
        assert db.neighbors(29) == frozenset()

    def test_padded_clique_validates(self):
        with pytest.raises(ValueError):
            padded_clique(10, 5)

    def test_cycle_is_2_regular(self):
        db = cycle_graph(12)
        assert db.degree == 2

    def test_grid_degree_at_most_4(self):
        db = grid_graph(5, 5)
        assert db.degree <= 4
        assert db.cardinality == 25

    def test_bipartite_sides_marked(self):
        db = random_bipartite(10, 12, max_degree=3, seed=0)
        assert len(db.facts("L")) == 10
        assert len(db.facts("R")) == 12
        assert db.degree <= 3
        # Edges only cross sides.
        lefts = {fact[0] for fact in db.facts("L")}
        for u, v in db.facts("E"):
            assert (u in lefts) != (v in lefts)


class TestRandomStructure:
    @given(seed=st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_degree_budget(self, seed):
        sig = Signature.of(T=3, B=1)
        db = random_structure(sig, 25, max_degree=4, seed=seed)
        assert db.degree <= 4

    def test_deterministic(self):
        sig = Signature.of(T=3)
        a = random_structure(sig, 20, seed=5)
        b = random_structure(sig, 20, seed=5)
        assert a.facts("T") == b.facts("T")
