"""The LIMIT-k fusion contract: a pushed limit *stops* enumeration.

Observable evidence, not timing: in process mode the columnar
transport's :class:`~repro.engine.transport.TransferStats` counts every
row the parent actually decoded, so ``LIMIT k`` must touch at most
``k`` plus one chunk's worth of rows — never the full answer set.
Compiler-level checks pin *when* the pushdown applies (a reordering
stage in between forfeits it).
"""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.qlang import compile_select, parse_select
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

# ~60x60 candidate pairs per color split: thousands of answers, so a
# truncation-instead-of-early-stop bug is unmissable in the stats.
GRAPH = random_colored_graph(120, max_degree=4, seed=3)
STATEMENT = "SELECT x, y WHERE B(x) & R(y) & ~E(x,y) LIMIT {k}"


class TestPushdown:
    def test_limit_alone_is_pushed(self):
        with Database(GRAPH) as db:
            compiled = db.query(STATEMENT.format(k=10))
            stages = {s.name: s.detail for s in compiled.explain().stages}
            assert "pushed into enumeration" in stages["limit"]

    @pytest.mark.parametrize(
        "text",
        [
            "SELECT x, y WHERE B(x) & R(y) ORDER BY y LIMIT 10",
            "SELECT x, COUNT(*) WHERE B(x) & R(y) GROUP BY x LIMIT 10",
        ],
    )
    def test_reordering_stage_forfeits_pushdown(self, text):
        with Database(GRAPH) as db:
            compiled = db.query(text)
            stages = {s.name: s.detail for s in compiled.explain().stages}
            assert "applied after" in stages["limit"]


class TestProcessModeTouchesOnlyAPrefix:
    @pytest.mark.parametrize("k", [1, 10, 64])
    def test_decoded_rows_bounded_by_k_plus_one_chunk(self, k):
        chunk_rows = 32
        with Database(GRAPH, workers=2) as db:
            select = parse_select(STATEMENT.format(k=k))
            compiled = compile_select(
                select, db, backend="process", chunk_rows=chunk_rows
            )
            rows = compiled.all()
            assert len(rows) == k
            stats = compiled.transport_stats
            assert compiled.backend_used == "process"
            assert stats is not None and stats.rows >= k
            assert stats.rows <= k + chunk_rows, (
                f"LIMIT {k} decoded {stats.rows} rows "
                f"(chunk_rows={chunk_rows}): enumeration did not stop"
            )

    def test_full_run_decodes_everything(self):
        # Control: without LIMIT the same statement decodes the whole
        # answer set, proving the bound above is not vacuous.
        with Database(GRAPH, workers=2) as db:
            select = parse_select(
                "SELECT x, y WHERE B(x) & R(y) & ~E(x,y)"
            )
            compiled = compile_select(
                select, db, backend="process", chunk_rows=32
            )
            rows = compiled.all()
            assert len(rows) > 1000
            assert compiled.transport_stats.rows == len(rows)


class TestCompilerValidation:
    @pytest.mark.parametrize(
        "text, match",
        [
            ("SELECT z WHERE B(x)", "not a free variable"),
            ("SELECT x WHERE B(x) GROUP BY y", "GROUP BY variable"),
            ("SELECT x, y WHERE E(x,y) GROUP BY x", "must appear in"),
            ("SELECT x, COUNT(*) WHERE B(x)", "requires GROUP BY"),
            ("SELECT COUNT(*) WHERE B(x) ORDER BY x", "ORDER BY"),
            ("SELECT x WHERE B(x) ORDER BY w", "not a free variable"),
            (
                "SELECT x, COUNT(*) WHERE E(x,y) GROUP BY x ORDER BY y",
                "not an output column",
            ),
        ],
    )
    def test_rejects(self, text, match):
        with Database(GRAPH) as db:
            with pytest.raises(QueryError, match=match):
                db.query(text)
