"""qlang grammar: fixed cases, error cases, and the print/parse
round-trip property mirroring the FO layer's ``parse(str(f)) == f``."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.fo.parser import parse as parse_formula
from repro.qlang import OrderKey, SelectQuery, is_select, parse_select

from tests.strategies import formulas


class TestDetection:
    def test_select_keyword_is_detected(self):
        assert is_select("SELECT x WHERE B(x)")
        assert is_select("  select x, y where E(x,y)")
        assert is_select("SeLeCt COUNT(*) WHERE B(x)")

    def test_relation_named_select_is_not_a_statement(self):
        # `select(...)` is a plain FO relation atom, not the keyword.
        assert not is_select("select(x, y) & B(x)")
        assert not is_select("select (x) | R(x)")

    def test_plain_formulas_are_not_statements(self):
        assert not is_select("B(x) & R(y) & ~E(x,y)")
        assert not is_select("exists y. E(x,y)")


class TestGrammar:
    def test_minimal(self):
        ast = parse_select("SELECT x WHERE B(x)")
        assert ast == SelectQuery(
            columns=("x",), where=parse_formula("B(x)")
        )

    def test_all_clauses(self):
        ast = parse_select(
            "SELECT x, y WHERE B(x) & E(x,y) "
            "ORDER BY y DESC, x ASC LIMIT 12"
        )
        assert ast.columns == ("x", "y")
        assert ast.order_by == (OrderKey("y", True), OrderKey("x", False))
        assert ast.limit == 12

    def test_count_star(self):
        ast = parse_select("SELECT COUNT(*) WHERE exists y. E(x,y)")
        assert ast.count and ast.columns == ()
        assert ast.output_columns == ("count",)

    def test_group_by_with_count(self):
        ast = parse_select(
            "SELECT x, COUNT(*) WHERE E(x,y) GROUP BY x"
        )
        assert ast.count and ast.columns == ("x",)
        assert ast.group_by == ("x",)
        assert ast.output_columns == ("x", "count")

    def test_where_takes_the_full_fo_grammar(self):
        ast = parse_select(
            "SELECT x WHERE forall z in N2(x). (~B(z) | dist(x,z) <= 1)"
        )
        assert ast.where == parse_formula(
            "forall z in N2(x). (~B(z) | dist(x,z) <= 1)"
        )

    @pytest.mark.parametrize(
        "bad, match",
        [
            ("SELECT x", "WHERE"),
            ("SELECT WHERE B(x)", "SELECT list"),
            ("SELECT x WHERE", "empty WHERE"),
            ("SELECT x WHERE B(x) LIMIT", "LIMIT requires"),
            ("SELECT x WHERE B(x) LIMIT -1", "non-negative"),
            ("SELECT x WHERE B(x) LIMIT two", "non-negative"),
            ("SELECT COUNT(*), x WHERE B(x)", "last SELECT entry"),
            ("SELECT COUNT(*), COUNT(*) WHERE B(x)", "last SELECT entry"),
            ("SELECT x WHERE B(x) ORDER BY x SIDEWAYS", "ASC or DESC"),
            ("SELECT x WHERE B(x) LIMIT 3 ORDER BY x", "out of order"),
            ("SELECT x WHERE B(x) ORDER BY x GROUP BY x", "out of order"),
            ("SELECT 1+1 WHERE B(x)", "variable names"),
            ("B(x) & R(y)", "SELECT keyword"),
        ],
    )
    def test_rejects(self, bad, match):
        with pytest.raises(ParseError, match=match):
            parse_select(bad)

    def test_bare_count_with_group_by_rejected(self):
        with pytest.raises(ParseError, match="SELECT list"):
            parse_select("SELECT COUNT(*) WHERE E(x,y) GROUP BY x")


@st.composite
def select_asts(draw):
    """A random well-formed SelectQuery AST (grammar-level, not
    necessarily compilable — the round-trip is a parser property)."""
    where = draw(formulas(free_count=draw(st.integers(1, 2))))
    free_names = sorted(var.name for var in where.free)
    count = draw(st.booleans())
    if not free_names or (count and draw(st.booleans())):
        # Constant-folded WHERE (no free variables) or an explicit
        # draw: bare COUNT(*) — no columns, no GROUP BY.
        # Bare COUNT(*): no columns, no GROUP BY (parser rejects that).
        return SelectQuery(
            columns=(),
            where=where,
            count=True,
            limit=draw(st.none() | st.integers(0, 50)),
        )
    columns = tuple(
        draw(
            st.lists(
                st.sampled_from(free_names), min_size=1, max_size=3
            )
        )
    )
    group_by = ()
    if draw(st.booleans()):
        group_by = tuple(
            draw(
                st.lists(
                    st.sampled_from(free_names),
                    min_size=1,
                    max_size=len(free_names),
                    unique=True,
                )
            )
        )
    order_by = tuple(
        OrderKey(name, descending)
        for name, descending in draw(
            st.lists(
                st.tuples(st.sampled_from(free_names), st.booleans()),
                max_size=2,
            )
        )
    )
    return SelectQuery(
        columns=columns,
        where=where,
        count=count,
        group_by=group_by,
        order_by=order_by,
        limit=draw(st.none() | st.integers(0, 50)),
    )


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(ast=select_asts())
    def test_parse_print_round_trip(self, ast):
        assert parse_select(str(ast)) == ast

    def test_canonical_text_is_stable(self):
        text = "SELECT x, COUNT(*) WHERE (E(x, y)) GROUP BY x LIMIT 3"
        ast = parse_select(text)
        assert str(parse_select(str(ast))) == str(ast)
