"""Differential suite: compiled qlang output vs a naive Python oracle.

The oracle enumerates the WHERE formula *unfused* — full answer set,
no projection pushdown, no row budget, no counting fast path — and
composes every stage in plain Python: project by position, group with a
dict in first-seen order, sort with the same stable multi-pass rule,
slice the limit.  The compiled path must be byte-identical on the
serial, thread, AND process backends (the merge contract extends
through every qlang stage).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.qlang import compile_select, parse_select
from repro.session import Database
from repro.structures.random_gen import random_colored_graph

from tests.strategies import (
    rejecting_unsupported,
    supported_inputs,
)

BACKENDS = ["serial", "thread", "process"]


def oracle_rows(db, select):
    """Compose the statement naively over the full answer set."""
    free_names = sorted(var.name for var in select.where.free)
    if select.count and not select.columns:
        rows = [
            (db.query(select.where, order=free_names or None, backend="serial")
             .answers().all().__len__(),)
        ]
        return rows[: select.limit] if select.limit is not None else rows
    # Mirror the compiler's carried-prefix order so un-sorted output
    # order is comparable; the *stages* below are all plain Python.
    if select.group_by:
        carried = list(dict.fromkeys(select.group_by))
    else:
        carried = list(
            dict.fromkeys(
                list(select.columns)
                + [key.column for key in select.order_by]
            )
        )
    order = carried + [n for n in free_names if n not in carried]
    full = db.query(select.where, order=order, backend="serial").answers().all()
    rows = [tuple(row[: len(carried)]) for row in full]
    if select.group_by:
        counts = {}
        for row in rows:
            counts[row] = counts.get(row, 0) + 1
        positions = [carried.index(c) for c in select.columns]
        if select.count:
            rows = [
                tuple(key[p] for p in positions) + (n,)
                for key, n in counts.items()
            ]
        else:
            rows = [tuple(key[p] for p in positions) for key in counts]
        columns = list(select.output_columns)
    else:
        columns = carried
    for key in reversed(select.order_by):
        index = columns.index(key.column)
        rows.sort(key=lambda row: row[index], reverse=key.descending)
    if select.limit is not None:
        rows = rows[: select.limit]
    if not select.group_by:
        positions = [carried.index(c) for c in select.columns]
        rows = [tuple(row[p] for p in positions) for row in rows]
    return rows


@pytest.fixture(scope="module")
def graph():
    return random_colored_graph(40, max_degree=4, seed=11)


STATEMENTS = [
    "SELECT x, y WHERE B(x) & R(y) & ~E(x,y)",
    "SELECT y, x WHERE B(x) & R(y) & ~E(x,y)",
    "SELECT y WHERE B(x) & R(y) & ~E(x,y) LIMIT 7",
    "SELECT x, y WHERE B(x) & R(y) & ~E(x,y) LIMIT 0",
    "SELECT COUNT(*) WHERE B(x) & R(y) & ~E(x,y)",
    "SELECT x, COUNT(*) WHERE B(x) & R(y) & ~E(x,y) GROUP BY x",
    "SELECT x WHERE B(x) & R(y) GROUP BY x",
    "SELECT x, COUNT(*) WHERE E(x,y) GROUP BY x ORDER BY count DESC, x LIMIT 5",
    "SELECT x, y WHERE B(x) & R(y) & ~E(x,y) ORDER BY y DESC, x LIMIT 6",
    "SELECT y WHERE B(x) & R(y) & ~E(x,y) ORDER BY x DESC",
    "SELECT x WHERE B(x) & exists z. (E(x,z) & R(z))",
    "SELECT x, y WHERE E(x,y) & exists z. (E(y,z) & ~E(x,z)) LIMIT 9",
]


class TestFixedCorpus:
    @pytest.mark.parametrize("text", STATEMENTS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_matches_oracle(self, graph, text, backend):
        with Database(graph, workers=2) as db:
            select = parse_select(text)
            compiled = compile_select(select, db, backend=backend)
            assert compiled.all() == oracle_rows(db, select)

    @pytest.mark.parametrize("text", STATEMENTS)
    def test_count_matches_oracle_cardinality(self, graph, text):
        with Database(graph) as db:
            select = parse_select(text)
            compiled = compile_select(select, db)
            rows = oracle_rows(db, select)
            if select.count and not select.columns:
                assert compiled.count() == (rows[0][0] if rows else 0)
            else:
                assert compiled.count() == len(rows)


class TestTernary:
    def test_ternary_statement_all_backends(self):
        from repro.structures.random_gen import random_structure

        from tests.strategies import TERNARY_SIGNATURE

        db_struct = random_structure(
            TERNARY_SIGNATURE, 12, max_degree=3, seed=23
        )
        text = "SELECT x, y WHERE T(x, y, y) | (B(x) & R(y)) LIMIT 8"
        with Database(db_struct, workers=2) as db:
            select = parse_select(text)
            expected = None
            for backend in BACKENDS:
                with rejecting_unsupported():
                    compiled = compile_select(select, db, backend=backend)
                rows = compiled.all()
                assert rows == oracle_rows(db, select)
                if expected is None:
                    expected = rows
                assert rows == expected


def select_variants(free_names):
    """Grammar-valid, compiler-valid statement variants over columns."""
    return st.one_of(
        st.just({"columns": list(free_names)}),
        st.just({"columns": list(reversed(free_names))}),
        st.just({"columns": free_names[:1], "limit": 5}),
        st.just({"columns": [], "count": True}),
        st.just(
            {"columns": free_names[:1], "count": True,
             "group_by": free_names[:1]}
        ),
        st.just(
            {"columns": list(free_names),
             "order_by": [(free_names[-1], True)], "limit": 4}
        ),
    )


class TestHypothesisDifferential:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.filter_too_much,
        ],
    )
    @given(
        pair=supported_inputs(
            free_count=2, max_depth=2, max_quantifiers=2, max_n=9
        ),
        data=st.data(),
    )
    def test_random_statements_match_oracle(self, pair, data):
        from repro.qlang.ast import OrderKey, SelectQuery

        structure, formula = pair
        free_names = sorted(var.name for var in formula.free)
        if not free_names:
            variant = {"columns": [], "count": True}
        else:
            variant = data.draw(select_variants(free_names))
        select = SelectQuery(
            columns=tuple(variant.get("columns", ())),
            where=formula,
            count=variant.get("count", False),
            group_by=tuple(variant.get("group_by", ())),
            order_by=tuple(
                OrderKey(name, desc)
                for name, desc in variant.get("order_by", ())
            ),
            limit=variant.get("limit"),
        )
        with Database(structure) as db:
            with rejecting_unsupported():
                compiled = compile_select(select, db, backend="serial")
                rows = compiled.all()
            assert rows == oracle_rows(db, select)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.filter_too_much,
        ],
    )
    @given(
        pair=supported_inputs(
            free_count=2,
            max_depth=2,
            max_quantifiers=2,
            ternary=True,
            max_n=8,
        )
    )
    def test_ternary_nested_quantifiers_match_oracle(self, pair):
        from repro.qlang.ast import SelectQuery

        structure, formula = pair
        free_names = sorted(var.name for var in formula.free)
        select = SelectQuery(
            columns=tuple(free_names),
            where=formula,
            count=not free_names,
            limit=20,
        )
        with Database(structure) as db:
            with rejecting_unsupported():
                compiled = compile_select(select, db, backend="serial")
                rows = compiled.all()
            assert rows == oracle_rows(db, select)
