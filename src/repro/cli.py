"""Command-line interface.

Examples::

    python -m repro query   -w colored:n=2000,d=4,seed=1 \\
                            -q "B(x) & R(y) & ~E(x,y)" --count --limit 5
    python -m repro query   -w colored:n=2000,d=4,seed=1 --limit 10 \\
                            -q "SELECT y WHERE B(x) & R(y) & ~E(x,y) ORDER BY y LIMIT 10"
    python -m repro query   -w grid:rows=20,cols=20 \\
                            -q "Powered(x)" --count
    python -m repro check   -w colored:n=5000,d=3 \\
                            -q "exists x. exists y. dist(x,y) > 3 & B(x) & B(y)"
    python -m repro explain -w colored:n=500,d=3 \\
                            -q "B(x) & exists z. (R(z) & ~E(x,z))"
    python -m repro delay   -w colored:n=4000,d=4 \\
                            -q "B(x) & R(y) & ~E(x,y)" --limit 50000
    python -m repro update  -w colored:n=2000,d=4 --file changes.jsonl \\
                            -q "B(x) & R(y) & ~E(x,y)"
    python -m repro query   -w colored:n=2000,d=4 -q "B(x)" --count \\
                            --apply changes.jsonl --at-version 0
    python -m repro open    --db ./mydb -w colored:n=2000,d=4,seed=1
    python -m repro update  --db ./mydb --file changes.jsonl -q "B(x)"
    python -m repro query   --db ./mydb -q "B(x)" --count
    python -m repro checkpoint --db ./mydb
    python -m repro follow  --db ./mydb --once -q "B(x)"
    python -m repro follow  --host 127.0.0.1 --port 8642 --name default

Workload specs are ``name:key=value,...``:

* ``colored`` — random colored graph (keys: n, d, seed, colors as ``B+R+G``)
* ``grid``    — rows x cols grid with Powered/Faulty colors
* ``cycle``   — a 2-regular ring with B/R colors
* ``clique``  — padded clique (keys: clique, n, seed)
* ``logdeg``  — random colored graph with degree ~ log2(n)
* ``file``    — load a serialized structure (``file:path=db.txt``)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict

from repro.core.model_checking import model_check
from repro.errors import ReproError
from repro.fo.parser import parse
from repro.qlang import CompiledQuery
from repro.session import Database
from repro.storage.cost_model import CostMeter
from repro.structures.random_gen import (
    cycle_graph,
    degree_log,
    grid_graph,
    padded_clique,
    random_colored_graph,
)
from repro.structures.structure import Structure


def parse_workload(spec: str) -> Structure:
    """Build a structure from a ``name:key=value,...`` spec."""
    name, _, args_text = spec.partition(":")
    options: Dict[str, str] = {}
    if args_text:
        for chunk in args_text.split(","):
            key, _, value = chunk.partition("=")
            if not value:
                raise ReproError(f"bad workload option {chunk!r} (need key=value)")
            options[key.strip()] = value.strip()

    def get_int(key: str, default: int) -> int:
        return int(options.get(key, default))

    if name == "colored":
        colors = tuple(options.get("colors", "B+R").split("+"))
        return random_colored_graph(
            get_int("n", 1000),
            max_degree=get_int("d", 4),
            colors=colors,
            seed=get_int("seed", 0),
        )
    if name == "logdeg":
        n = get_int("n", 1000)
        return random_colored_graph(
            n, max_degree=degree_log()(n), seed=get_int("seed", 0)
        )
    if name == "grid":
        return grid_graph(
            get_int("rows", 16),
            get_int("cols", 16),
            colors=("Powered", "Faulty"),
            seed=get_int("seed", 0),
        )
    if name == "cycle":
        return cycle_graph(get_int("n", 100), colors=("B", "R"), seed=get_int("seed", 0))
    if name == "clique":
        return padded_clique(
            get_int("clique", 8),
            get_int("n", 1000),
            colors=("B", "R"),
            seed=get_int("seed", 0),
        )
    if name == "file":
        path = options.get("path")
        if not path:
            raise ReproError("file workload needs path=<file>")
        from repro.structures.serialize import load_file

        try:
            return load_file(path)
        except OSError as error:
            raise ReproError(f"cannot read {path!r}: {error}") from None
    raise ReproError(
        f"unknown workload {name!r}; choose from colored, logdeg, grid, "
        "cycle, clique, file"
    )


def _load_changeset(path: str, structure: Structure):
    from repro.session import load_changeset_jsonl

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return load_changeset_jsonl(handle, structure=structure)
    except OSError as error:
        raise ReproError(f"cannot read {path!r}: {error}") from None


def _open_session(args: argparse.Namespace, **options) -> Database:
    """Build the session from ``--db`` (durable) or ``-w`` (in-memory).

    * ``--db`` pointing at an existing store: open it — snapshot load +
      WAL replay + warm pipeline reload.  ``-w`` must be omitted (the
      store already defines the data).
    * ``--db`` pointing at a fresh path: ``-w`` seeds the store.
    * no ``--db``: the classic in-memory session from ``-w``.
    """
    from repro.storage.wal import DurableStore

    db_path = getattr(args, "db", None)
    workload = getattr(args, "workload", None)
    if db_path is None:
        if workload is None:
            raise ReproError("need -w/--workload (or --db with a durable store)")
        return Database(parse_workload(workload), **options)
    if DurableStore(db_path).exists():
        if workload is not None:
            raise ReproError(
                f"database {db_path!r} already exists; drop -w/--workload "
                "(the store defines the data)"
            )
        return Database.open(db_path, **options)
    if workload is None:
        raise ReproError(
            f"database {db_path!r} does not exist; pass -w/--workload to "
            "create it"
        )
    return Database.open(db_path, structure=parse_workload(workload), **options)


def _resolve_view(session: Database, args: argparse.Namespace):
    """Apply ``--apply`` (one atomic transaction) and resolve
    ``--at-version`` to the pre-commit snapshot or the live head.

    With ``--apply`` the pre-commit state is snapshotted first, so
    ``--at-version <old>`` queries the database as it was before the
    changeset committed while ``--at-version <new>`` (or no flag)
    queries the head.
    """
    snapshot = None
    apply_path = getattr(args, "apply", None)
    at_version = getattr(args, "at_version", None)
    if apply_path:
        if at_version is not None:
            snapshot = session.snapshot()
        changeset = _load_changeset(apply_path, session.structure)
        result = session.apply(changeset)
        print(
            f"applied {result.ops_submitted} op(s), "
            f"{result.ops_effective} effective; version "
            f"{result.version_before} -> {result.version_after}"
            + (" (forked: old version stays pinned)" if result.forked else "")
        )
    if at_version is None:
        return session
    views = {session.version: session}
    if snapshot is not None:
        views[snapshot.version] = snapshot
    view = views.get(at_version)
    if view is None:
        raise ReproError(
            f"--at-version {at_version} is not available; "
            f"choose from {sorted(views)}"
        )
    return view


def _parse_tuple(text: str, structure: Structure):
    components = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        # Domain elements of the builtin workloads are ints or (r, c) pairs.
        try:
            components.append(int(chunk))
        except ValueError:
            raise ReproError(f"cannot parse tuple component {chunk!r}") from None
    return tuple(components)


def cmd_query(args: argparse.Namespace) -> int:
    """Count / test / enumerate one query through a Database session."""
    if getattr(args, "shards", 0):
        return _run_sharded_query(args)
    # One Database per invocation: cache, graph templates, and (if the
    # backend goes parallel) the worker pool all come from this session.
    with _open_session(args, eps=args.eps, workers=args.workers) as session:
        db = session.structure
        view = _resolve_view(session, args)
        started = time.perf_counter()
        query = view.query(
            args.query,
            backend=args.backend,
            chunk_rows=getattr(args, "chunk_rows", None),
            transport=getattr(args, "transport", None),
        )
        preprocessing = time.perf_counter() - started
        print(
            f"workload: n={db.cardinality}, degree={db.degree}; "
            f"preprocessing {preprocessing:.3f}s"
        )
        compiled = isinstance(query, CompiledQuery)
        if args.count:
            print(f"count: {query.count()}")
        for probe in args.test or []:
            if compiled:
                raise ReproError(
                    "--test applies to raw FO queries; a SELECT "
                    "statement has no membership test"
                )
            candidate = _parse_tuple(probe, db)
            print(f"test {candidate}: {query.test(candidate)}")
        if args.limit:
            shown = 0
            if compiled:
                # The compiled stream already early-stops on a pushed
                # LIMIT; abandoning it releases the inner handle.
                for row in query.stream():
                    print("  " + ", ".join(str(c) for c in row))
                    shown += 1
                    if shown >= args.limit:
                        break
            else:
                answers = query.answers()
                for answer in answers:
                    print(
                        "  " + ", ".join(str(c) for c in answer)
                    )
                    shown += 1
                    if shown >= args.limit:
                        answers.cancel()
                        break
            print(f"({shown} answers shown)")
        if args.explain:
            # Printed after execution so the plan carries the observed
            # runtime transfer layout (chunks/bytes per work unit) next
            # to the cost-model estimates.
            print(query.explain().describe())
    return 0


def _run_sharded_query(args: argparse.Namespace) -> int:
    """``query --shards N``: scatter-gather over a region-sharded DB."""
    from repro.shard import ShardedDatabase

    if getattr(args, "db", None) is not None:
        raise ReproError("--shards runs in-memory; drop --db")
    workload = getattr(args, "workload", None)
    if workload is None:
        raise ReproError("--shards needs -w/--workload")
    structure = parse_workload(workload)
    started = time.perf_counter()
    with ShardedDatabase(
        structure,
        shards=args.shards,
        eps=args.eps,
        workers=args.workers,
        gather=getattr(args, "gather", "stream") or "stream",
    ) as sdb:
        query = sdb.query(args.query)
        preprocessing = time.perf_counter() - started
        layout = sdb.layout
        print(
            f"workload: n={structure.cardinality}, degree={structure.degree}; "
            f"preprocessing {preprocessing:.3f}s"
        )
        print(
            f"shards: {len(layout)} {list(layout.sizes())} "
            f"({layout.components} components)"
        )
        if args.count:
            print(f"count: {query.count()}")
        for probe in args.test or []:
            candidate = _parse_tuple(probe, structure)
            print(f"test {candidate}: {query.test(candidate)}")
        if args.limit:
            shown = 0
            answers = query.answers()
            for answer in answers:
                print("  " + ", ".join(str(c) for c in answer))
                shown += 1
                if shown >= args.limit:
                    answers.cancel()
                    break
            print(f"({shown} answers shown)")
        if args.explain:
            report = query.explain()
            print(f"gather: {report['gather']} (sharded: {report['sharded']})")
            if report["shard_blockers"]:
                for blocker in report["shard_blockers"]:
                    print(f"  blocker: {blocker}")
            runtime = report.get("runtime")
            if runtime:
                print(
                    f"runtime: {runtime['chunks']} chunk(s), "
                    f"{runtime['rows']} rows received"
                )
                for label, entry in sorted(
                    (runtime.get("sources") or {}).items()
                ):
                    print(
                        f"  {label}: rows={entry['rows']}, "
                        f"chunks={entry['chunks']}"
                    )
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    """Submit many queries against one workload via a Database session."""
    queries = list(args.query or [])
    if args.queries_file:
        try:
            with open(args.queries_file, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line and not line.startswith("#"):
                        queries.append(line)
        except OSError as error:
            raise ReproError(
                f"cannot read {args.queries_file!r}: {error}"
            ) from None
    if not queries:
        raise ReproError("batch needs at least one -q/--query or --queries-file")
    # The session owns a long-lived worker pool (lazily started, reused by
    # every query below); the context manager shuts it down at the end —
    # pool lifecycle and stats come from one place for `query` and `batch`.
    with _open_session(args, eps=args.eps, workers=args.workers) as session:
        db = session.structure
        view = _resolve_view(session, args)
        print(f"workload: n={db.cardinality}, degree={db.degree}; "
              f"{len(queries)} queries")
        started = time.perf_counter()
        for text in queries:
            query = view.query(text, backend=args.mode)
            line = f"[{text}]"
            if args.count:
                # Parallel per-branch counting over the session pool (the
                # result is exactly the serial count_answers integer).
                line += f"  count={query.count()}"
            print(line)
            if args.limit:
                shown = 0
                if isinstance(query, CompiledQuery):
                    for row in query.stream():
                        print("  " + ", ".join(str(c) for c in row))
                        shown += 1
                        if shown >= args.limit:
                            break
                else:
                    answers = query.answers()
                    for answer in answers:
                        print("  " + ", ".join(str(c) for c in answer))
                        shown += 1
                        if shown >= args.limit:
                            answers.cancel()
                            break
        elapsed = time.perf_counter() - started
        stats = session.stats()
        print(
            f"batch done in {elapsed:.3f}s; pipeline cache "
            f"{stats['hits']} hits / {stats['misses']} misses, "
            f"{stats['graph_templates']} shared graph template(s); "
            f"pool: {stats['pool_submits']} submit(s), "
            f"{stats['pool_restarts']} restart(s)"
        )
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    """Apply a JSONL changeset in one atomic transaction.

    ``-q`` queries (repeatable) are prepared *before* the commit — so
    their cached plans are what the batch maintenance refreshes — and
    re-counted afterwards, showing the update's effect.
    """
    with _open_session(args, eps=args.eps, workers=args.workers) as session:
        db = session.structure
        print(f"workload: n={db.cardinality}, degree={db.degree}")
        warmed = []
        for text in args.query or []:
            query = session.query(text)
            warmed.append((text, query, query.count()))
        changeset = _load_changeset(args.file, session.structure)
        started = time.perf_counter()
        result = session.apply(changeset)
        elapsed = time.perf_counter() - started
        print(
            f"changeset: {result.ops_submitted} op(s), "
            f"{result.ops_effective} effective"
        )
        print(
            f"version: {result.version_before} -> {result.version_after}; "
            f"fingerprint {result.fingerprint_before[:12]}... -> "
            f"{result.fingerprint_after[:12]}..."
        )
        print(
            f"maintained plans refreshed in one pass: "
            f"{result.maintained_plans}; forked: {result.forked}"
        )
        rate = (
            f" ({result.ops_effective / elapsed:.0f} facts/s)"
            if elapsed > 0 and result.ops_effective
            else ""
        )
        print(f"commit took {elapsed:.3f}s{rate}")
        for text, query, before in warmed:
            print(f"[{text}]  count {before} -> {query.count()}")
    return 0


def cmd_open(args: argparse.Namespace) -> int:
    """Create a durable database (from ``-w``) or inspect an existing one."""
    started = time.perf_counter()
    with _open_session(args, eps=args.eps, workers=args.workers) as session:
        elapsed = time.perf_counter() - started
        structure = session.structure
        stats = session.stats()
        print(f"database: {args.db}")
        print(
            f"structure: n={structure.cardinality}, degree={structure.degree}; "
            f"version {session.version}, generation {structure.generation}"
        )
        print(f"fingerprint: {session.structure_fingerprint[:16]}...")
        print(
            f"warm cached plans: {stats['entries']}; "
            f"opened in {elapsed:.3f}s"
        )
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Rotate the WAL of an existing store into a fresh snapshot."""
    from repro.storage.wal import DurableStore

    if not DurableStore(args.db).exists():
        raise ReproError(f"database {args.db!r} does not exist")
    with Database.open(args.db, eps=args.eps, workers=args.workers) as session:
        started = time.perf_counter()
        # Warm the requested plans first so the rotation spills them and
        # the next open() serves their first query with no preprocessing.
        for text in args.query or []:
            session.query(text)
        result = session.checkpoint()
        elapsed = time.perf_counter() - started
        print(
            f"checkpointed {args.db} at version {result.version} "
            f"(generation {result.generation}) in {elapsed:.3f}s"
        )
        print(
            f"warm pipelines spilled: {result.warm_entries}; "
            f"WAL records retired: {result.wal_records_retired} "
            f"({result.wal_bytes_retired} bytes)"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve databases over HTTP + WebSocket until interrupted."""
    import asyncio

    from repro.serve import DatabaseRegistry, QueryServer

    registry = DatabaseRegistry()
    if args.db:
        registry.open(args.name, args.db, workers=args.workers)
        origin = f"durable store {args.db}"
    elif args.workload:
        registry.create(
            args.name,
            parse_workload(args.workload),
            eps=args.eps,
            workers=args.workers,
        )
        origin = f"workload {args.workload}"
    else:
        raise ReproError("serve needs --db or -w/--workload")

    async def run() -> None:
        server = QueryServer(
            registry,
            host=args.host,
            port=args.port,
            cursor_timeout=args.cursor_timeout,
        )
        await server.start()
        print(
            f"serving {args.name!r} ({origin}) on "
            f"http://{args.host}:{server.port} — Ctrl-C to stop"
        )
        stop = asyncio.Event()
        try:
            await stop.wait()
        finally:
            # KeyboardInterrupt lands here: drain cursors, checkpoint
            # durable stores, close the databases.
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shut down")
    return 0


def cmd_follow(args: argparse.Namespace) -> int:
    """Tail a leader as a read replica and answer queries against it.

    ``--db`` follows a shared durable-store directory read-only;
    ``--host``/``--port``/``--name`` follow a served leader over the
    replication endpoints.  ``--once`` catches up and exits (after
    printing the ``-q`` counts); otherwise the follower keeps tailing
    and reports every version change until interrupted.
    """
    from repro.replication import DirectorySource, FollowerDatabase, ServeSource
    from repro.serve import ServeClient

    if bool(args.db) == bool(args.url_name):
        raise ReproError("follow needs exactly one of --db or --name")
    if args.db:
        source = DirectorySource(args.db)
    else:
        client = ServeClient(args.host, args.port, timeout=args.timeout)
        source = ServeSource(client, args.url_name, wait=args.interval)
    follower = FollowerDatabase(
        source, max_lag=args.max_lag, eps=args.eps, workers=args.workers
    )
    try:
        started = time.perf_counter()
        applied = follower.catch_up()
        elapsed = time.perf_counter() - started
        print(
            f"following {source.describe()}: caught up to version "
            f"{follower.version} ({applied} record(s) replayed, "
            f"{follower.stats()['reseeds']} reseed(s)) in {elapsed:.3f}s"
        )
        for text in args.query or []:
            print(f"[{text}]  count={follower.count(text)}")
        if args.once:
            return 0
        follower.start_tailing(interval=args.interval)
        print("tailing — Ctrl-C to stop")
        last_seen = follower.version
        try:
            while True:
                time.sleep(args.interval)
                version = follower.version
                if version != last_seen:
                    last_seen = version
                    line = f"version {version} (lag {follower.lag})"
                    for text in args.query or []:
                        line += f"; [{text}] count={follower.count(text)}"
                    print(line)
                error = follower.stats()["last_error"]
                if error:
                    print(f"tail error (retrying): {error}", file=sys.stderr)
        except KeyboardInterrupt:
            print("stopped")
        return 0
    finally:
        follower.close()


def cmd_check(args: argparse.Namespace) -> int:
    db = parse_workload(args.workload)
    sentence = parse(args.query)
    started = time.perf_counter()
    verdict = model_check(sentence, db)
    elapsed = time.perf_counter() - started
    print(f"A |= {args.query}  ->  {verdict}   ({elapsed:.3f}s)")
    return 0 if verdict else 1


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.core.api import preprocessing_report

    db = parse_workload(args.workload)
    with Database(db, eps=args.eps) as session:
        query = session.query(args.query)
        print(preprocessing_report(query.pipeline))
        print(query.explain().describe())
    return 0


def cmd_delay(args: argparse.Namespace) -> int:
    from repro.core.enumeration import enumerate_answers

    db = parse_workload(args.workload)
    meter = CostMeter()
    produced = 0
    with Database(db, eps=args.eps) as session:
        query = session.query(args.query)
        started = time.perf_counter()
        # Metered serial enumeration: the same primitive the session's
        # serial backend drives, instrumented with RAM-step marks.
        for _ in enumerate_answers(query.pipeline, meter=meter):
            meter.mark()
            produced += 1
            if args.limit and produced >= args.limit:
                break
        elapsed = time.perf_counter() - started
    deltas = meter.deltas() or [0]
    print(f"answers: {produced}")
    if produced:
        print(f"wall time/answer: {elapsed / produced * 1e6:.2f} us")
    print(f"RAM steps/answer: max {max(deltas)}, mean {sum(deltas)/len(deltas):.1f}")
    return 0


def _add_version_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--apply",
        metavar="changeset.jsonl",
        default=None,
        help="apply this JSONL changeset (one transaction) before querying",
    )
    parser.add_argument(
        "--at-version",
        dest="at_version",
        type=int,
        default=None,
        help="query a pinned version: the pre---apply snapshot's version "
        "or the head's (default: head)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constant-delay FO query evaluation over low-degree databases",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, require_workload=True):
        p.add_argument(
            "-w", "--workload", required=require_workload, help="workload spec"
        )
        p.add_argument(
            "-q", "--query", required=True,
            help="FO query text, or a qlang SELECT statement",
        )
        p.add_argument("--eps", type=float, default=0.5)

    def add_db_flag(p):
        p.add_argument(
            "--db",
            metavar="PATH",
            default=None,
            help="durable database directory (snapshot + WAL); an existing "
            "store replaces -w, a fresh path is created from -w",
        )

    query_parser = sub.add_parser(
        "query", help="count / test / enumerate through a Database session"
    )
    common(query_parser, require_workload=False)
    add_db_flag(query_parser)
    query_parser.add_argument("--count", action="store_true")
    query_parser.add_argument(
        "--test", action="append", metavar="a,b", help="tuple to test (repeatable)"
    )
    query_parser.add_argument("--limit", type=int, default=0, help="answers to print")
    query_parser.add_argument(
        "--backend",
        choices=["auto", "serial", "thread", "process"],
        default=None,
        help="force an execution backend (default: cost-model heuristic)",
    )
    query_parser.add_argument(
        "--workers", type=int, default=None, help="pool size (default: cores)"
    )
    query_parser.add_argument(
        "--explain",
        action="store_true",
        help="print the chosen plan (branches, shards, backend, transport, costs)",
    )
    query_parser.add_argument(
        "--chunk-rows",
        dest="chunk_rows",
        type=int,
        default=None,
        help="answers per process-transport chunk (default: cost model)",
    )
    query_parser.add_argument(
        "--transport",
        choices=["columnar", "pickle"],
        default=None,
        help="process-mode answer transport (default: columnar)",
    )
    query_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run scatter-gather over N region shards (repro.shard)",
    )
    query_parser.add_argument(
        "--gather",
        choices=["stream", "engine"],
        default="stream",
        help="gather strategy with --shards (default: stream)",
    )
    _add_version_flags(query_parser)
    query_parser.set_defaults(handler=cmd_query)

    batch_parser = sub.add_parser(
        "batch", help="run many queries through the parallel batch engine"
    )
    batch_parser.add_argument(
        "-w", "--workload", required=False, help="workload spec"
    )
    add_db_flag(batch_parser)
    batch_parser.add_argument(
        "-q", "--query", action="append",
        help="FO query text or qlang SELECT statement (repeatable)",
    )
    batch_parser.add_argument(
        "--queries-file", help="file with one query per line ('#' comments)"
    )
    batch_parser.add_argument("--eps", type=float, default=0.5)
    batch_parser.add_argument(
        "--workers", type=int, default=None, help="pool size (default: cores)"
    )
    batch_parser.add_argument(
        "--mode",
        choices=["auto", "serial", "thread", "process"],
        default=None,
        help="force an execution backend (default: cost-model heuristic)",
    )
    batch_parser.add_argument("--count", action="store_true")
    batch_parser.add_argument(
        "--limit", type=int, default=0, help="answers to print per query"
    )
    _add_version_flags(batch_parser)
    batch_parser.set_defaults(handler=cmd_batch)

    update_parser = sub.add_parser(
        "update", help="apply a JSONL changeset in one atomic transaction"
    )
    update_parser.add_argument(
        "-w", "--workload", required=False, help="workload spec"
    )
    add_db_flag(update_parser)
    update_parser.add_argument(
        "--file",
        required=True,
        help='changeset JSONL: {"op": "insert", "relation": "E", "elements": [0, 1]}',
    )
    update_parser.add_argument(
        "-q",
        "--query",
        action="append",
        help="query to warm before the commit and re-count after (repeatable)",
    )
    update_parser.add_argument("--eps", type=float, default=0.5)
    update_parser.add_argument(
        "--workers", type=int, default=None, help="pool size (default: cores)"
    )
    update_parser.set_defaults(handler=cmd_update)

    open_parser = sub.add_parser(
        "open",
        help="create a durable database from a workload, or inspect one",
    )
    open_parser.add_argument("--db", metavar="PATH", required=True)
    open_parser.add_argument(
        "-w",
        "--workload",
        required=False,
        help="workload spec seeding a fresh store (omit for existing stores)",
    )
    open_parser.add_argument("--eps", type=float, default=0.5)
    open_parser.add_argument("--workers", type=int, default=None)
    open_parser.set_defaults(handler=cmd_open)

    checkpoint_parser = sub.add_parser(
        "checkpoint",
        help="rotate a durable database's WAL into a fresh snapshot",
    )
    checkpoint_parser.add_argument("--db", metavar="PATH", required=True)
    checkpoint_parser.add_argument(
        "-q",
        "--query",
        action="append",
        help="query to warm before the rotation so its pipeline is "
        "spilled for the next open (repeatable)",
    )
    checkpoint_parser.add_argument("--eps", type=float, default=0.5)
    checkpoint_parser.add_argument("--workers", type=int, default=None)
    checkpoint_parser.set_defaults(handler=cmd_checkpoint)

    serve_parser = sub.add_parser(
        "serve",
        help="serve a database over HTTP + WebSocket",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8642)
    serve_parser.add_argument(
        "--name",
        default="default",
        help="registry name clients address the database by",
    )
    serve_parser.add_argument(
        "--db", metavar="PATH", help="durable store to open and serve"
    )
    serve_parser.add_argument(
        "-w", "--workload", help="workload spec for an in-memory database"
    )
    serve_parser.add_argument(
        "--cursor-timeout",
        type=float,
        default=300.0,
        help="idle seconds before an abandoned cursor's pin is reaped",
    )
    serve_parser.add_argument("--eps", type=float, default=0.5)
    serve_parser.add_argument("--workers", type=int, default=None)
    serve_parser.set_defaults(handler=cmd_serve)

    follow_parser = sub.add_parser(
        "follow",
        help="tail a leader as a read replica (shared store or serve tier)",
    )
    follow_parser.add_argument(
        "--db",
        metavar="PATH",
        default=None,
        help="leader's durable store directory (shared-filesystem topology)",
    )
    follow_parser.add_argument("--host", default="127.0.0.1")
    follow_parser.add_argument("--port", type=int, default=8642)
    follow_parser.add_argument(
        "--name",
        dest="url_name",
        default=None,
        help="served database name to follow (service-tier topology)",
    )
    follow_parser.add_argument(
        "-q",
        "--query",
        action="append",
        help="query to count after catch-up (and on every version change)",
    )
    follow_parser.add_argument(
        "--max-lag",
        dest="max_lag",
        type=int,
        default=None,
        help="refuse reads when more than this many versions behind",
    )
    follow_parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="tail poll interval in seconds (also the serve long-poll wait)",
    )
    follow_parser.add_argument(
        "--timeout", type=float, default=30.0, help="serve request timeout"
    )
    follow_parser.add_argument(
        "--once", action="store_true", help="catch up, report, and exit"
    )
    follow_parser.add_argument("--eps", type=float, default=0.5)
    follow_parser.add_argument("--workers", type=int, default=None)
    follow_parser.set_defaults(handler=cmd_follow)

    check_parser = sub.add_parser("check", help="model-check a sentence")
    common(check_parser)
    check_parser.set_defaults(handler=cmd_check)

    explain_parser = sub.add_parser("explain", help="preprocessing report")
    common(explain_parser)
    explain_parser.set_defaults(handler=cmd_explain)

    delay_parser = sub.add_parser("delay", help="measure enumeration delay")
    common(delay_parser)
    delay_parser.add_argument("--limit", type=int, default=0)
    delay_parser.set_defaults(handler=cmd_delay)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
