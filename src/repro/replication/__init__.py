"""WAL-shipped replication: followers that tail a leader's log.

Two topologies over one replay engine:

* **Shared directory** — the follower tails the leader's durable store
  directory read-only (:class:`DirectorySource`); nothing but a
  filesystem between them.
* **Service tier** — the follower tails a served leader over
  ``GET /db/{name}/wal?from=V`` long-polls (:class:`ServeSource`), with
  snapshot re-seed over ``GET /db/{name}/snapshot`` and every request on
  the shared retry/backoff + circuit-breaker policy.

Either way, shipped records replay through the ordinary
maintained-commit path, so the follower's cached pipelines stay warm
and a follower read at version V is byte-identical to the leader at V.
See :mod:`repro.replication.follower` for the lag/refusal contract and
:mod:`repro.replication.faults` for the crash-point and wire-fault
test instruments.
"""

from repro.replication.faults import (
    CRASH_POINTS,
    FlakyProxy,
    InjectedCrash,
    crash_point,
    inject,
)
from repro.replication.follower import (
    DirectorySource,
    FollowerDatabase,
    ServeSource,
    WalSource,
)

__all__ = [
    "CRASH_POINTS",
    "DirectorySource",
    "FlakyProxy",
    "FollowerDatabase",
    "InjectedCrash",
    "ServeSource",
    "WalSource",
    "crash_point",
    "inject",
]
