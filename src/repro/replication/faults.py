"""Fault injection for the replication stack.

Two complementary instruments:

* The process-level **crash points** (re-exported from
  :mod:`repro.util.faults`): named places in the WAL append, checkpoint,
  shipment, and follower replay paths where a test can make the process
  "die" — ``wal.append.before`` / ``wal.append.torn`` /
  ``wal.append.after-sync``, ``checkpoint.after-snapshot`` /
  ``checkpoint.after-manifest`` / ``checkpoint.done``, ``ship.batch``,
  ``follower.apply.before`` / ``follower.apply.after``.

* :class:`FlakyProxy` — a wire-level TCP fault proxy that sits between
  a :class:`~repro.serve.ServeClient` (or follower) and a leader
  server, and drops, delays, or truncates bytes on command.  Crash
  points simulate the *process* dying; the proxy simulates the
  *network* dying — half-shipped batches, connections cut mid-response,
  refused reconnects — which is exactly what the retry/backoff layer
  and the follower's resume logic must survive.

The proxy's fault plan is plain mutable attributes, so a test can run
healthy traffic, flip ``drop_after_bytes`` mid-run, watch the client
reconnect through its retry policy, then heal the link and assert
convergence.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Optional, Set

from repro.util.faults import (  # noqa: F401 — re-exported test surface
    FaultPlan,
    InjectedCrash,
    crash_point,
    inject,
    is_armed,
)

__all__ = [
    "CRASH_POINTS",
    "FaultPlan",
    "FlakyProxy",
    "InjectedCrash",
    "crash_point",
    "inject",
    "is_armed",
]

# The named crash points the storage/session/replication layers expose,
# in pipeline order.  Fault-matrix tests iterate this list so a newly
# added point cannot be forgotten silently.
CRASH_POINTS = (
    "wal.append.before",
    "wal.append.torn",
    "wal.append.after-sync",
    "checkpoint.after-snapshot",
    "checkpoint.after-manifest",
    "checkpoint.done",
    "ship.batch",
    "follower.apply.before",
    "follower.apply.after",
)

_CHUNK = 4096


class FlakyProxy:
    """A TCP relay with switchable wire faults.

    ::

        proxy = FlakyProxy("127.0.0.1", leader_port).start()
        client = ServeClient("127.0.0.1", proxy.port)
        proxy.drop_after_bytes = 100   # cut every connection after 100
        ...                            # upstream bytes reach the client
        proxy.drop_after_bytes = None  # heal
        proxy.stop()

    Fault knobs (all live-mutable, applied per connection):

    * ``refuse`` — accept then immediately close new connections
      (connection-refused-ish behavior without releasing the port).
    * ``drop_after_bytes`` — kill the connection once this many
      upstream→client bytes have been relayed on it.  Mid-response cuts
      produce exactly the truncated HTTP bodies / torn WAL shipments
      the follower must survive.
    * ``delay`` — seconds to sleep before relaying each upstream chunk
      (latency injection; pairs with client deadlines).
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 host: str = "127.0.0.1"):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self.refuse = False
        self.drop_after_bytes: Optional[int] = None
        self.delay: float = 0.0
        self.connections = 0
        self.dropped = 0
        self.bytes_relayed = 0
        self._lock = threading.Lock()
        self._sockets: Set[socket.socket] = set()
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self.port: Optional[int] = None

    def start(self) -> "FlakyProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._thread = threading.Thread(
            target=self._accept_loop, name="repro-flaky-proxy", daemon=True
        )
        self._thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            if self._stop.is_set():
                client.close()
                return
            self.connections += 1
            if self.refuse:
                client.close()
                continue
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=5.0
                )
            except OSError:
                client.close()
                continue
            self._track(client)
            self._track(upstream)
            budget = [self.drop_after_bytes]  # shared by both pump threads
            threading.Thread(
                target=self._pump, args=(client, upstream, budget, False),
                daemon=True,
            ).start()
            threading.Thread(
                target=self._pump, args=(upstream, client, budget, True),
                daemon=True,
            ).start()

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._sockets.add(sock)

    def _kill(self, *socks: socket.socket) -> None:
        for sock in socks:
            with self._lock:
                self._sockets.discard(sock)
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _pump(self, src: socket.socket, dst: socket.socket,
              budget: list, metered: bool) -> None:
        """Relay ``src`` → ``dst``; the upstream→client direction is the
        metered one (faults target what the *client* observes)."""
        try:
            while not self._stop.is_set():
                try:
                    data = src.recv(_CHUNK)
                except OSError:
                    break
                if not data:
                    break
                if metered:
                    if self.delay > 0:
                        time.sleep(self.delay)
                    limit = budget[0]
                    if limit is not None:
                        if limit <= 0:
                            self.dropped += 1
                            break
                        if len(data) > limit:
                            data = data[:limit]  # a torn final chunk
                            budget[0] = 0
                        else:
                            budget[0] = limit - len(data)
                    self.bytes_relayed += len(data)
                try:
                    dst.sendall(data)
                except OSError:
                    break
                if metered and budget[0] == 0:
                    self.dropped += 1
                    break
        finally:
            self._kill(src, dst)

    def kill_connections(self) -> None:
        """Hard-close every live relayed connection right now."""
        with self._lock:
            socks, self._sockets = set(self._sockets), set()
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.kill_connections()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "FlakyProxy":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
