"""WAL-shipped replication: a read-only follower that tails a leader.

A :class:`FollowerDatabase` owns an in-memory
:class:`repro.session.Database` seeded from the leader's snapshot and
kept current by replaying shipped write-ahead-log records through the
ordinary maintained-commit path — the same one-pass batch maintenance a
local commit pays — so the follower's cached pipelines stay warm across
catch-up and a repeated query is a cache hit, not a rebuild.  Reads
(queries, snapshots) behave exactly like a local session: a follower
read at version V is byte-identical to the leader at version V, because
both states are the same commit prefix applied to the same snapshot.

Two feed implementations:

* :class:`DirectorySource` — tail a leader's :class:`DurableStore`
  directory over a shared filesystem.  Strictly read-only: it never
  truncates a torn tail (that may be the leader's in-flight append).
* :class:`ServeSource` — tail a leader served by :mod:`repro.serve`
  over ``GET /db/{name}/wal?from=V`` (long-poll) with snapshot re-seed
  via ``GET /db/{name}/snapshot``.  All requests ride the client's
  retry/backoff policy; transient failures surface as
  :class:`~repro.errors.ServeConnectionError` only after it gives up.

The lag contract: ``lag = leader_version - follower_version`` as of the
last shipment (a follower that has never reached its leader reports the
lag it last observed).  ``max_lag=N`` refuses reads more than N versions
stale with a structured :class:`~repro.errors.ReplicaLagError` instead
of silently serving old data; ``max_lag=None`` (default) serves reads at
any staleness but always *reports* it via :meth:`FollowerDatabase.stats`
and ``query(...).explain()``.

Failure handling is convergence-first: a mid-batch failure (crash,
truncated shipment, injected fault) leaves the follower at the last
fully-applied record — records are idempotent by version interval, so
the next :meth:`catch_up` resumes exactly there.  A leader checkpoint
that retired the segments a follower still needed flags ``reseed`` and
the follower re-seeds from the current snapshot.  The background tailer
(:meth:`start_tailing`) wraps every cycle in the retry policy and keeps
serving (increasingly stale, explicitly-lagged) reads while the leader
is away.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.errors import (
    EngineError,
    ReplicaLagError,
    ReplicationError,
    ServeConnectionError,
)
from repro.session import Database
from repro.storage.wal import DurableStore, WalRecord
from repro.structures.serialize import loads as load_structure
from repro.util.faults import crash_point
from repro.util.retry import CircuitBreaker, RetryPolicy, call_with_retry

__all__ = [
    "DirectorySource",
    "FollowerDatabase",
    "ServeSource",
    "WalSource",
]


class WalSource:
    """One leader feed: shipments of raw WAL lines + snapshot re-seed.

    ``shipment(after_version, limit)`` returns the leader's batch dict
    (``leader_version`` / ``base_version`` / ``reseed`` / ``more`` /
    ``records`` as raw CRC-framed WAL lines) — the exact shape of
    :meth:`repro.session.Database.wal_shipment`, so every transport
    preserves the framing end-to-end and the follower re-validates each
    record before applying it.
    """

    def shipment(self, after_version: int, limit: int = 512) -> dict:
        raise NotImplementedError

    def fetch_snapshot(self):
        """A fresh :class:`Structure` at the leader's snapshot base
        (with its version/generation lineage restored)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def close(self) -> None:
        pass


class DirectorySource(WalSource):
    """Tail a leader's durable store directory (shared filesystem).

    Every access is read-only — :meth:`DurableStore.records_since` and
    :meth:`DurableStore.load_snapshot` never truncate, never write —
    so a live leader appending to the same directory is safe.
    """

    def __init__(self, path):
        self._store = DurableStore(path)

    def _check(self) -> None:
        if not self._store.exists():
            raise ReplicationError(
                f"no durable store at {self._store.path!r} to follow"
            )

    def shipment(self, after_version: int, limit: int = 512) -> dict:
        self._check()
        crash_point("ship.batch")
        base_version = self._store.manifest_version()
        records, more = self._store.records_since(after_version, limit=limit)
        if records:
            reseed = records[0].version_before > after_version
            leader_version = records[-1].version_after
        else:
            reseed = after_version < base_version
            leader_version = max(base_version, after_version)
        return {
            "leader_version": leader_version,
            "base_version": base_version,
            "reseed": reseed,
            "more": more,
            "records": [r.to_line().rstrip("\n") for r in records],
        }

    def fetch_snapshot(self):
        self._check()
        structure, _manifest = self._store.load_snapshot()
        return structure

    def describe(self) -> str:
        return f"directory {self._store.path}"


class ServeSource(WalSource):
    """Tail a leader through the :mod:`repro.serve` service tier.

    ``wait`` enables server-side long-polling: a shipment request with
    no new records parks on the leader until a commit lands (or the wait
    expires), so an idle follower costs one open request instead of a
    busy poll.  The :class:`~repro.serve.ServeClient` already routes
    every request through the shared retry policy; by default the source
    owns its client and closes it.
    """

    def __init__(self, client, db: str, wait: Optional[float] = None,
                 own_client: bool = True):
        self._client = client
        self._db = db
        self._wait = wait
        self._own_client = own_client

    def shipment(self, after_version: int, limit: int = 512) -> dict:
        return self._client.wal(
            self._db, after_version, limit=limit, wait=self._wait
        )

    def fetch_snapshot(self):
        payload = self._client.snapshot(self._db)
        try:
            structure = load_structure(payload["structure"])
        except (KeyError, TypeError) as error:
            raise ReplicationError(
                f"malformed snapshot payload from the leader: {error!r}"
            ) from None
        fingerprint = payload.get("fingerprint")
        if fingerprint and structure.content_fingerprint() != fingerprint:
            raise ReplicationError(
                "snapshot fingerprint mismatch: the structure decoded "
                "from the leader's snapshot does not hash to the "
                "fingerprint it advertised"
            )
        return structure

    def describe(self) -> str:
        return (
            f"serve http://{self._client.host}:{self._client.port}"
            f"/db/{self._db}"
        )

    def close(self) -> None:
        if self._own_client:
            self._client.close()


class _FollowerQuery:
    """A :class:`~repro.session.Query` proxy stamping the replica role
    and observed lag into :meth:`explain`."""

    __slots__ = ("_inner", "_lag")

    def __init__(self, inner, lag: int):
        self._inner = inner
        self._lag = lag

    def explain(self):
        from dataclasses import replace

        plan = self._inner.explain()
        try:
            return replace(plan, role="follower", lag=self._lag)
        except TypeError:  # a plan type without the replication fields
            return plan

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"Follower{self._inner!r}"


class FollowerDatabase:
    """A read-only replica that tails a leader's write-ahead log.

    Quick start::

        from repro.replication import DirectorySource, FollowerDatabase

        follower = FollowerDatabase(DirectorySource("/path/to/leader"))
        follower.catch_up()                      # replay to the leader's head
        follower.query("B(x) & R(y)").count()    # a local, warm read
        follower.start_tailing(interval=0.25)    # keep following in the
        ...                                      # background, with retry
        follower.close()

    Writes are refused (:class:`~repro.errors.ReplicationError`): the
    replication stream is the only writer, which is what keeps follower
    reads byte-identical to the leader at the same version.
    """

    def __init__(
        self,
        source: WalSource,
        max_lag: Optional[int] = None,
        batch_limit: int = 512,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        **db_options,
    ):
        if batch_limit < 1:
            raise ReplicationError(
                f"batch_limit must be >= 1, got {batch_limit}"
            )
        self._source = source
        self._max_lag = max_lag
        self._batch_limit = batch_limit
        self._retry = retry or RetryPolicy(
            attempts=5, base_delay=0.05, max_delay=1.0
        )
        self._breaker = breaker or CircuitBreaker(threshold=8, reset_after=1.0)
        self._db_options = db_options
        self._lock = threading.RLock()
        self._closed = False
        self._leader_version = 0
        self._records_applied = 0
        self._reseeds = 0
        self._last_error: Optional[str] = None
        self._last_caught_up: Optional[float] = None
        # Superseded inner sessions (pre-reseed) stay open until close():
        # snapshots and answer handles issued against them keep their
        # pinned reads; the swap only redirects *new* reads.
        self._retired: List[Database] = []
        self._tail_thread: Optional[threading.Thread] = None
        self._tail_stop = threading.Event()
        self._db: Optional[Database] = None
        with self._lock:
            self._reseed_locked()

    # -- the replication stream ----------------------------------------

    def _reseed_locked(self) -> None:
        """(Re-)build the inner session from the leader's snapshot."""
        structure = self._source.fetch_snapshot()
        structure._write_guard = None
        db = Database(structure, **self._db_options)
        if self._db is not None:
            self._retired.append(self._db)
            self._reseeds += 1
        self._db = db
        self._leader_version = max(self._leader_version, db.version)

    def catch_up(self, max_batches: Optional[int] = None) -> int:
        """Pull and replay shipments until the leader has no more.

        Returns the number of records applied.  Safe to call at any
        time, from any state: applied records are skipped by version
        interval, a gap at the batch head triggers a snapshot re-seed,
        and a failure mid-batch leaves the follower at the last
        fully-applied record (the next call resumes there).
        """
        applied = 0
        batches = 0
        with self._lock:
            self._check_open()
            while True:
                shipment = self._source.shipment(
                    self._db.version, limit=self._batch_limit
                )
                self._observe(shipment)
                if shipment.get("reseed"):
                    self._reseed_locked()
                    batches += 1
                    if max_batches is not None and batches >= max_batches:
                        break
                    continue
                applied += self._apply_locked(shipment.get("records", ()))
                batches += 1
                if not shipment.get("more"):
                    break
                if max_batches is not None and batches >= max_batches:
                    break
            self._last_caught_up = time.monotonic()
            self._last_error = None
        return applied

    def _observe(self, shipment: dict) -> None:
        leader = shipment.get("leader_version")
        if isinstance(leader, int):
            self._leader_version = max(self._leader_version, leader)

    def _apply_locked(self, lines) -> int:
        applied = 0
        db = self._db
        for line in lines:
            crash_point("follower.apply.before")
            record = WalRecord.from_line(line + "\n")
            if record is None:
                raise ReplicationError(
                    "the leader shipped a corrupt write-ahead-log record "
                    "(CRC/framing check failed); refusing to apply it"
                )
            if record.version_after <= db.version:
                continue  # replay overlap (duplicate shipment) — idempotent
            if record.version_before != db.version:
                raise ReplicationError(
                    f"replication gap: the next shipped record expects "
                    f"version {record.version_before}, but this follower "
                    f"is at {db.version}"
                )
            db._commit(list(record.ops), log=False)
            if db.version != record.version_after:
                raise ReplicationError(
                    f"replication replay diverged: a commit landed at "
                    f"version {db.version} where the leader recorded "
                    f"{record.version_after}"
                )
            if record.generation != db.structure.generation:
                db._restore_generation(record.generation)
            applied += 1
            self._records_applied += 1
            crash_point("follower.apply.after")
        return applied

    # -- background tailing --------------------------------------------

    def start_tailing(self, interval: float = 0.5) -> None:
        """Keep :meth:`catch_up` running on a daemon thread.

        Each cycle runs under the retry policy + circuit breaker;
        failures (leader down, transient corruption) are recorded in
        :meth:`stats` and the follower keeps serving explicitly-lagged
        reads until the leader is back.
        """
        with self._lock:
            self._check_open()
            if self._tail_thread is not None:
                return
            self._tail_stop.clear()
            thread = threading.Thread(
                target=self._tail_loop,
                args=(max(0.01, interval),),
                name="repro-follower-tail",
                daemon=True,
            )
            self._tail_thread = thread
        thread.start()

    def _tail_loop(self, interval: float) -> None:
        while not self._tail_stop.wait(interval):
            try:
                call_with_retry(
                    self.catch_up,
                    self._retry,
                    retry_on=(ServeConnectionError, ReplicationError, OSError),
                    breaker=self._breaker,
                    describe="follower catch-up",
                )
            except EngineError:
                return  # the follower was closed under the tailer
            except Exception as error:
                with self._lock:
                    self._last_error = f"{type(error).__name__}: {error}"

    def stop_tailing(self) -> None:
        with self._lock:
            thread, self._tail_thread = self._tail_thread, None
        if thread is not None:
            self._tail_stop.set()
            thread.join(timeout=10)

    @property
    def tailing(self) -> bool:
        with self._lock:
            return self._tail_thread is not None

    # -- the read surface ----------------------------------------------

    @property
    def version(self) -> int:
        with self._lock:
            self._check_open()
            return self._db.version

    @property
    def leader_version(self) -> int:
        with self._lock:
            return self._leader_version

    @property
    def lag(self) -> int:
        """Versions behind the leader, as of the last shipment seen."""
        with self._lock:
            self._check_open()
            return max(0, self._leader_version - self._db.version)

    @property
    def structure_fingerprint(self) -> str:
        with self._lock:
            self._check_open()
            return self._db.structure_fingerprint

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this FollowerDatabase is closed")

    def _check_lag_locked(self) -> int:
        lag = max(0, self._leader_version - self._db.version)
        if self._max_lag is not None and lag > self._max_lag:
            raise ReplicaLagError(
                f"replica is {lag} version(s) behind the leader "
                f"(max_lag={self._max_lag}); catch up before reading",
                lag=lag,
                version=self._db.version,
                leader_version=self._leader_version,
            )
        return lag

    def query(self, query, **options):
        """A read at the follower's current version (lag-guarded)."""
        with self._lock:
            self._check_open()
            lag = self._check_lag_locked()
            db = self._db
        return _FollowerQuery(db.query(query, **options), lag)

    def count(self, query, **options) -> int:
        return self.query(query, **options).count()

    def test(self, query, candidate, **options) -> bool:
        return self.query(query, **options).test(candidate)

    def snapshot(self):
        """A version-pinned read view (see :meth:`Database.snapshot`).

        Pinned against the *current* inner session; replication replay
        overlapping the pin takes the ordinary copy-on-write fork path,
        so the snapshot keeps reading its version byte-identically while
        the follower streams ahead.
        """
        with self._lock:
            self._check_open()
            self._check_lag_locked()
            return self._db.snapshot()

    # -- writes are not a thing here -----------------------------------

    def insert_fact(self, *args, **kwargs):
        raise ReplicationError(
            "this database is a replication follower; writes go to the "
            "leader (the WAL stream is this replica's only writer)"
        )

    remove_fact = insert_fact
    apply = insert_fact
    transaction = insert_fact
    checkpoint = insert_fact

    # -- observability --------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            self._check_open()
            stats = self._db.stats()
            stats["role"] = "follower"
            stats["lag"] = max(0, self._leader_version - self._db.version)
            stats["leader_version"] = self._leader_version
            stats["version"] = self._db.version
            stats["max_lag"] = self._max_lag
            stats["records_applied"] = self._records_applied
            stats["reseeds"] = self._reseeds
            stats["tailing"] = self._tail_thread is not None
            stats["source"] = self._source.describe()
            stats["last_error"] = self._last_error
            stats.update(
                {
                    f"breaker_{key}": value
                    for key, value in self._breaker.stats().items()
                }
            )
            return stats

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self.stop_tailing()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            retired, self._retired = self._retired, []
            db, self._db = self._db, None
        for old in retired:
            old.close()
        if db is not None:
            db.close()
        self._source.close()

    def __enter__(self) -> "FollowerDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        if self._closed:
            return f"FollowerDatabase({state})"
        return (
            f"FollowerDatabase(version={self._db.version}, "
            f"leader={self._leader_version}, lag={self.lag}, {state})"
        )
