"""Exception hierarchy for the library."""


class ReproError(Exception):
    """Base class for all library errors."""


class SignatureError(ReproError):
    """A relation symbol is unknown or used with the wrong arity."""


class QueryError(ReproError):
    """A query is malformed (unbound variables, bad syntax, ...)."""


class ParseError(QueryError):
    """The textual query could not be parsed."""


class UnsupportedQueryError(QueryError):
    """The query falls outside the fragment the pipeline supports.

    The paper's reduction is fully general but its constants are
    non-elementary in the query size (see the paper's conclusion); this
    implementation refuses queries whose structure-assisted localization
    would explode rather than silently hanging.
    """


class EvaluationError(ReproError):
    """An internal invariant was violated during evaluation."""
