"""Exception hierarchy for the library."""


class ReproError(Exception):
    """Base class for all library errors."""


class SignatureError(ReproError):
    """A relation symbol is unknown or used with the wrong arity."""


class QueryError(ReproError):
    """A query is malformed (unbound variables, bad syntax, ...)."""


class ParseError(QueryError):
    """The textual query could not be parsed."""


class UnsupportedQueryError(QueryError):
    """The query falls outside the fragment the pipeline supports.

    The paper's reduction is fully general but its constants are
    non-elementary in the query size (see the paper's conclusion); this
    implementation refuses queries whose structure-assisted localization
    would explode rather than silently hanging.
    """


class EvaluationError(ReproError):
    """An internal invariant was violated during evaluation."""


class FrozenStructureError(ReproError):
    """A mutation was attempted on a frozen snapshot structure.

    Commits that overlap live snapshots or answer handles freeze the old
    structure head (its facts back pinned reads forever) and move the
    database to a copy-on-write fork; mutate through the session —
    ``db.transaction()`` / ``db.apply()`` / ``db.insert_fact()`` — not
    through a retained reference to a superseded head.
    """


class GuardedStructureError(ReproError):
    """A session-owned structure was mutated directly.

    A :class:`repro.session.Database` coordinates every write with its
    pinned readers and maintained pipelines; calling ``add_fact`` /
    ``remove_fact`` on the structure behind the session's back would
    silently desynchronize them.  Mutate through the session instead:
    ``db.transaction()`` / ``db.apply()`` / ``db.insert_fact()`` /
    ``db.remove_fact()``.
    """


class DurabilityError(ReproError):
    """The durable store (snapshot + WAL) is corrupt or unusable.

    Raised when a restore finds an inconsistent manifest, a WAL record
    chain with gaps, or a snapshot whose fingerprint disagrees with the
    manifest — and when a live append to the write-ahead log fails, in
    which case the in-memory database stays correct but is no longer
    durable until :meth:`repro.session.Database.checkpoint` succeeds.
    """


class EngineError(ReproError):
    """The batch query engine was misused or hit an internal failure."""


class TransactionError(EngineError):
    """A session transaction was misused.

    Raised for writes on a committed/rolled-back transaction, commits of
    an already-finished transaction, or malformed changeset operations;
    the buffered changes are discarded and the database is untouched.
    """


class StaleResultError(EngineError):
    """A result handle outlived a mutation of its underlying structure.

    Answers computed before the mutation no longer describe the database;
    the engine refuses to serve them.  Re-submit the query to get a handle
    against the current state.
    """


class RetentionLimitError(EngineError):
    """Too many superseded database versions are still pinned.

    Every commit that overlaps a live pin forks the structure and retains
    the superseded head for its readers; ``Database(retention_budget=N)``
    bounds how many superseded versions may be alive at once.  Consume,
    cancel, or close the outstanding snapshots / answer handles — or
    raise the budget — before committing again.
    """


class CancelledResultError(EngineError):
    """The result handle was cancelled before its answers were consumed.

    Every access path — ``page`` / ``stream`` / ``all`` / ``count`` /
    ``test`` — raises this after :meth:`ResultHandle.cancel`; a cancelled
    handle never serves the partial prefix it may have pulled.
    """


class ServeError(ReproError):
    """A query-service request failed (:mod:`repro.serve`).

    Carries the HTTP status the server answers with, so the protocol
    layer maps one exception hierarchy onto the wire: 400 for malformed
    requests, 404 for unknown databases/cursors, 409 when the retention
    budget refuses another pinned version, 500 otherwise.
    """

    def __init__(self, message: str, status: int = 500):
        super().__init__(message)
        self.status = status


class WireError(ServeError):
    """A malformed HTTP request or WebSocket frame (status 400)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message, status)


class UnknownDatabaseError(ServeError):
    """The request named a database the registry does not hold (404)."""

    def __init__(self, message: str, status: int = 404):
        super().__init__(message, status)


class UnknownCursorError(ServeError):
    """The request named a cursor that is closed or never existed (404)."""

    def __init__(self, message: str, status: int = 404):
        super().__init__(message, status)


class ServeConnectionError(ServeError):
    """The service tier could not be reached (status 503).

    Raised by :class:`repro.serve.ServeClient` and the follower tailer
    after the retry policy is exhausted: connection refused/reset, DNS
    failure, or a circuit breaker that is still open.  Transient by
    definition — the request may be retried once the peer is back.
    """

    def __init__(self, message: str, status: int = 503):
        super().__init__(message, status)


class ServeTimeoutError(ServeConnectionError):
    """A service request ran past its deadline (status 504)."""

    def __init__(self, message: str, status: int = 504):
        super().__init__(message, status)


class CircuitOpenError(ServeConnectionError):
    """The circuit breaker refused the call without touching the wire.

    After N consecutive failures the breaker opens and fails fast for
    ``reset_after`` seconds instead of hammering a dead peer; the next
    call after the cool-down is a probe that closes it on success.
    """


class ReplicationError(ReproError):
    """A replication follower was misused or lost its feed.

    Raised for writes addressed to a read-only follower, for tailing a
    leader whose lineage diverged from the follower's (different store,
    rewound history), and for follower-side replay failures.
    """


class ReplicaLagError(ReplicationError):
    """A follower read was refused because the replica is too stale.

    ``FollowerDatabase(max_lag=N)`` bounds how many versions a follower
    may trail its leader while still answering reads; past the bound,
    reads raise this (carrying ``lag``, ``version``, and
    ``leader_version``) instead of silently serving stale data.
    """

    def __init__(self, message: str, lag: int = 0, version: int = 0,
                 leader_version: int = 0):
        super().__init__(message)
        self.lag = lag
        self.version = version
        self.leader_version = leader_version


class DurabilityWarning(RuntimeWarning):
    """A durability *accelerator* was dropped, not durability itself.

    Emitted when a warm spill (``warm-<version>.pickle``) cannot be
    written or read back: the snapshot + WAL remain authoritative and
    the store stays fully durable, but the next ``Database.open`` pays a
    cold rebuild for the affected cached pipelines.
    """


class MaintenanceWarning(RuntimeWarning):
    """Warm plan maintenance was skipped; correctness is unaffected.

    Emitted when a pinned commit cannot clone or refresh maintained
    pipelines onto the forked head: the commit itself succeeds and every
    reader stays consistent, but the new head rebuilds the affected
    plans on demand instead of starting warm.
    """


def __getattr__(name: str):
    # Legacy alias (pre-PR-2 spelling); new code should catch
    # CancelledResultError.  Accessing the old name warns but keeps
    # working — it resolves to the very same class, so existing
    # ``except ResultCancelledError`` blocks still match.
    if name == "ResultCancelledError":
        import warnings

        warnings.warn(
            "ResultCancelledError was renamed to CancelledResultError; "
            "the alias will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        return CancelledResultError
    raise AttributeError(f"module 'repro.errors' has no attribute {name!r}")
