"""The network tier: serve :class:`repro.session.Database` instances
over HTTP + WebSocket with snapshot-pinned streaming cursors.

Quickstart (in-process)::

    from repro.serve import DatabaseRegistry, ServeClient, serve_in_thread
    from repro.session import Database

    registry = DatabaseRegistry()
    registry.create("demo", structure)
    with serve_in_thread(registry) as server:
        client = ServeClient("127.0.0.1", server.port)
        client.rows("demo", "E(x,y)")
        with client.stream("demo") as ws:
            ws.open("E(x,y)", wire="columnar")
            for page in ws.pages():
                ...

Everything is stdlib-only: the HTTP/1.1 and WebSocket framing lives in
:mod:`repro.serve.wire`, the protocol glue in
:mod:`repro.serve.protocol`, cursor lifecycle in
:mod:`repro.serve.cursors`, and the server itself in
:mod:`repro.serve.server`.  ``python -m repro.cli serve`` is the CLI
entry point.
"""

from repro.serve.client import (
    ChunkDecoder,
    HttpCursor,
    ServeClient,
    StreamCursor,
    decode_chunk,
)
from repro.serve.cursors import Cursor, CursorSet, open_cursor
from repro.serve.registry import DatabaseRegistry, RegisteredDatabase
from repro.serve.server import QueryServer, ThreadedServer, serve_in_thread

__all__ = [
    "ChunkDecoder",
    "Cursor",
    "CursorSet",
    "DatabaseRegistry",
    "HttpCursor",
    "QueryServer",
    "RegisteredDatabase",
    "ServeClient",
    "StreamCursor",
    "ThreadedServer",
    "decode_chunk",
    "open_cursor",
    "serve_in_thread",
]
