"""Query-protocol helpers: JSON codecs and the exception → status map.

The serve tier speaks JSON for rows (tuples become arrays, restored on
decode, same convention as the WAL's changeset records) and raw columnar
chunk bytes for ``wire="columnar"`` cursors.  One function —
:func:`error_status` — maps the library's whole exception hierarchy onto
HTTP statuses, so every handler can ``except ReproError`` uniformly.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

from repro.errors import (
    EngineError,
    ParseError,
    QueryError,
    ReplicaLagError,
    ReproError,
    RetentionLimitError,
    ServeError,
    SignatureError,
    TransactionError,
)

Element = Hashable


def decode_element(value):
    """JSON round-trip for answer elements: lists come back as tuples
    (mirrors :func:`repro.storage.wal._decode_element`)."""
    if isinstance(value, list):
        return tuple(decode_element(item) for item in value)
    return value


def decode_row(values: Sequence) -> Tuple[Element, ...]:
    return tuple(decode_element(value) for value in values)


def decode_rows(rows: Sequence[Sequence]) -> List[Tuple[Element, ...]]:
    return [decode_row(row) for row in rows]


def error_status(error: BaseException) -> int:
    """The HTTP status a failed request answers with."""
    if isinstance(error, ServeError):
        return error.status
    if isinstance(error, ReplicaLagError):
        return 503  # too stale to serve — retry once the replica caught up
    if isinstance(error, RetentionLimitError):
        return 409
    if isinstance(
        error, (TransactionError, SignatureError, QueryError, ParseError)
    ):
        return 400
    if isinstance(error, (ReproError, EngineError)):
        return 500
    return 500


def error_payload(error: BaseException) -> dict:
    payload = {
        "error": str(error) or type(error).__name__,
        "type": type(error).__name__,
        "status": error_status(error),
    }
    if isinstance(error, ReplicaLagError):
        # Structured staleness: clients decide whether to wait, fall
        # back to the leader, or surface the lag to their own caller.
        payload["lag"] = error.lag
        payload["version"] = error.version
        payload["leader_version"] = error.leader_version
    return payload
