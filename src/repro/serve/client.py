"""A dependency-free client for the serve tier.

:class:`ServeClient` wraps the HTTP endpoints over
``http.client.HTTPConnection`` (keep-alive, one socket per client);
:meth:`ServeClient.stream` opens a raw-socket WebSocket
:class:`StreamCursor` for snapshot-pinned pagination, including the
columnar wire — :func:`decode_chunk` rebuilds rows from the encoded
buffers the server forwards verbatim off its enumeration workers.

Every request rides the shared retry layer (:mod:`repro.util.retry`):
transport failures surface as
:class:`~repro.errors.ServeConnectionError` (504
:class:`~repro.errors.ServeTimeoutError` for deadlines) only after the
policy's backoff attempts are exhausted, and a client-wide circuit
breaker fails fast while the server is clearly down.  Idempotent
requests (reads, WAL tails) retry transparently; mutating requests
(``/apply``, ``/checkpoint``) are never replayed — a connection that
died mid-apply may have committed, so the caller decides (commits are
version-idempotent, so re-applying the same changeset after checking
``/stats`` is safe).

Server-side errors surface as :class:`repro.errors.ServeError` carrying
the HTTP status; wire-level surprises as :class:`repro.errors.WireError`.
"""

from __future__ import annotations

import base64
import json
import os
import socket
import struct
from dataclasses import replace
from http.client import HTTPConnection, HTTPException
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.engine.transport import ColumnarCodec, InternTable
from repro.errors import (
    ServeConnectionError,
    ServeError,
    ServeTimeoutError,
    WireError,
)
from repro.serve.protocol import decode_element, decode_rows
from repro.serve.wire import (
    OP_BINARY,
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    encode_frame,
    read_frame_sync,
    websocket_accept,
)
from repro.util.retry import CircuitBreaker, RetryPolicy, call_with_retry

_CHUNK_PREFIX = struct.Struct("!I")


def decode_chunk(elements: Sequence, buf: bytes) -> List[tuple]:
    """Decode one columnar chunk against the ack's ``intern`` list."""
    table = InternTable([decode_element(e) for e in elements])
    return ColumnarCodec(table).decode(buf)


class ChunkDecoder:
    """Reusable decoder for one columnar cursor (builds the intern
    table once instead of per chunk)."""

    def __init__(self, elements: Sequence):
        self._codec = ColumnarCodec(
            InternTable([decode_element(e) for e in elements])
        )

    def decode(self, buf: bytes) -> List[tuple]:
        return self._codec.decode(buf)


class ServeClient:
    """Synchronous HTTP client for one server.

    ``retry`` (default: 3 attempts, exponential backoff with full
    jitter, deadline = ``timeout``) governs idempotent requests;
    ``breaker`` (default: open after 5 consecutive transport failures)
    is shared across all of this client's requests so a dead server
    fails fast instead of serializing backoff sleeps per call.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry or RetryPolicy(
            attempts=3, base_delay=0.05, max_delay=1.0, deadline=timeout
        )
        self.breaker = breaker or CircuitBreaker(threshold=5, reset_after=1.0)
        self._conn: Optional[HTTPConnection] = None

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _request_once(
        self, method: str, path: str, body: Optional[bytes] = None
    ):
        conn = self._connection()
        try:
            conn.request(method, path, body=body)
            response = conn.getresponse()
            data = response.read()
        except socket.timeout as error:
            self.close()
            raise ServeTimeoutError(
                f"{method} {path} timed out after {self.timeout}s: {error}"
            ) from None
        except (ConnectionError, OSError, HTTPException) as error:
            # HTTPException covers truncated responses (IncompleteRead,
            # BadStatusLine) from a connection cut mid-response — a
            # transport failure like any other, so it retries the same.
            self.close()
            raise ServeConnectionError(
                f"{method} {path} failed: {type(error).__name__}: {error}"
            ) from None
        try:
            payload = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireError(f"undecodable response body: {error}") from None
        if response.status >= 400:
            message = (
                payload.get("error", data.decode("utf-8", "replace"))
                if isinstance(payload, dict)
                else str(payload)
            )
            raise ServeError(message, status=response.status)
        return payload

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        idempotent: Optional[bool] = None,
    ):
        if idempotent is None:
            idempotent = method in ("GET", "DELETE")
        # Non-idempotent requests still get the taxonomy and breaker
        # accounting, but exactly one wire attempt: a replayed /apply
        # could double-commit if the first attempt died after landing.
        policy = self.retry if idempotent else replace(self.retry, attempts=1)
        return call_with_retry(
            lambda: self._request_once(method, path, body),
            policy,
            retry_on=(ServeConnectionError,),
            breaker=self.breaker,
            describe=f"{method} {path}",
        )

    def _post_json(self, path: str, payload: dict,
                   idempotent: Optional[bool] = None):
        return self._request(
            "POST",
            path,
            json.dumps(payload).encode("utf-8"),
            idempotent=idempotent,
        )

    # -- endpoints ------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def databases(self) -> List[str]:
        return self._request("GET", "/dbs")["databases"]

    def stats(self, db: str) -> dict:
        return self._request("GET", f"/db/{db}/stats")

    def query(
        self,
        db: str,
        text: str,
        mode: str = "all",
        limit: Optional[int] = None,
    ) -> dict:
        body = {"query": text, "mode": mode}
        if limit is not None:
            body["limit"] = limit
        # A one-shot query is a pure read: POST in shape, GET in nature.
        return self._post_json(f"/db/{db}/query", body, idempotent=True)

    def rows(
        self, db: str, text: str, limit: Optional[int] = None
    ) -> List[tuple]:
        """Run ``text`` and return decoded answer rows."""
        return decode_rows(self.query(db, text, limit=limit)["rows"])

    def count(self, db: str, text: str) -> int:
        return self.query(db, text, mode="count")["count"]

    def open_cursor(
        self, db: str, text: str, page_size: int = 256
    ) -> "HttpCursor":
        ack = self._post_json(
            f"/db/{db}/query",
            {"query": text, "cursor": True, "page_size": page_size},
        )
        return HttpCursor(self, db, ack)

    def apply(self, db: str, changeset_jsonl: str) -> dict:
        return self._request(
            "POST", f"/db/{db}/apply", changeset_jsonl.encode("utf-8")
        )

    def checkpoint(self, db: str) -> dict:
        return self._request("POST", f"/db/{db}/checkpoint", b"")

    def wal(
        self,
        db: str,
        from_version: int,
        limit: Optional[int] = None,
        wait: Optional[float] = None,
    ) -> dict:
        """One replication batch past ``from_version`` (see
        :meth:`repro.session.Database.wal_shipment`); ``wait`` long-polls
        for the next commit when the follower is caught up."""
        path = f"/db/{db}/wal?from={int(from_version)}"
        if limit is not None:
            path += f"&limit={int(limit)}"
        if wait is not None:
            path += f"&wait={float(wait)}"
        return self._request("GET", path)

    def snapshot(self, db: str) -> dict:
        """The serialized structure + lineage a follower re-seeds from."""
        return self._request("GET", f"/db/{db}/snapshot")

    def stream(self, db: str) -> "StreamCursor":
        """Open a WebSocket to ``/db/{db}/stream``."""
        return StreamCursor(self.host, self.port, db, timeout=self.timeout)

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class HttpCursor:
    """A server-side cursor paged over plain HTTP POSTs."""

    def __init__(self, client: ServeClient, db: str, ack: dict):
        self._client = client
        self._db = db
        self.id = ack["cursor"]
        self.columns = tuple(ack["columns"])
        self.version = ack["version"]
        self.done = False

    def next_page(self) -> List[tuple]:
        if self.done:
            return []
        payload = self._client._request(
            "POST", f"/db/{self._db}/cursor/{self.id}/next", b""
        )
        self.done = payload["done"]
        return decode_rows(payload["rows"])

    def rows(self) -> List[tuple]:
        out: List[tuple] = []
        while not self.done:
            out.extend(self.next_page())
        return out

    def close(self) -> None:
        if not self.done:
            self._client._request(
                "DELETE", f"/db/{self._db}/cursor/{self.id}"
            )
            self.done = True


class StreamCursor:
    """One WebSocket connection serving snapshot-pinned cursors.

    ``open()`` starts a cursor and returns its ack; ``pages()`` then
    yields decoded row pages until the server's ``end`` event.  On the
    columnar wire the server's binary frames are decoded client-side
    with the ack's intern table — the server never touched a row.
    """

    def __init__(self, host: str, port: int, db: str, timeout: float = 30.0):
        self.db = db
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        handshake = (
            f"GET /db/{db}/stream HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n"
        )
        self._sock.sendall(handshake.encode("latin-1"))
        status_line = self._file.readline().decode("latin-1")
        headers = {}
        while True:
            line = self._file.readline().decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if "101" not in status_line:
            body = b""
            length = headers.get("content-length")
            if length and length.isdigit():
                body = self._file.read(int(length))
            self.close()
            message = body.decode("utf-8", "replace") or status_line.strip()
            status = 500
            parts = status_line.split(" ")
            if len(parts) >= 2 and parts[1].isdigit():
                status = int(parts[1])
            raise ServeError(f"websocket upgrade refused: {message}", status)
        expected = websocket_accept(key)
        if headers.get("sec-websocket-accept") != expected:
            self.close()
            raise WireError("bad Sec-WebSocket-Accept in handshake")
        self.last_ack: Optional[dict] = None

    # -- frame plumbing -------------------------------------------------

    def _send_json(self, payload: dict) -> None:
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        self._sock.sendall(encode_frame(OP_TEXT, data, mask=True))

    def _next_frame(self) -> Tuple[int, bytes]:
        while True:
            frame = read_frame_sync(self._file)
            if frame is None:
                raise WireError("server closed the websocket")
            opcode, payload = frame
            if opcode == OP_PING:
                self._sock.sendall(
                    encode_frame(OP_PONG, payload, mask=True)
                )
                continue
            return opcode, payload

    def _next_event(self) -> dict:
        opcode, payload = self._next_frame()
        if opcode != OP_TEXT:
            raise WireError(f"expected a text frame, got opcode {opcode}")
        return json.loads(payload.decode("utf-8"))

    @staticmethod
    def _raise_on_error(event: dict) -> None:
        if event.get("event") == "error":
            raise ServeError(
                event.get("error", "server error"),
                status=event.get("status", 500),
            )

    # -- the protocol ---------------------------------------------------

    def open(
        self,
        text: str,
        wire: str = "rows",
        page_size: Optional[int] = None,
        limit: Optional[int] = None,
        chunk_rows: Optional[int] = None,
    ) -> dict:
        """Open a cursor; returns the server's ack event."""
        action = {"action": "open", "query": text, "wire": wire}
        if page_size is not None:
            action["page_size"] = page_size
        if limit is not None:
            action["limit"] = limit
        if chunk_rows is not None:
            action["chunk_rows"] = chunk_rows
        self._send_json(action)
        ack = self._next_event()
        self._raise_on_error(ack)
        if ack.get("event") != "open":
            raise WireError(f"expected an open ack, got {ack!r}")
        self.last_ack = ack
        return ack

    def pages(self, ack: Optional[dict] = None) -> Iterator[List[tuple]]:
        """Decoded row pages of the cursor opened last (or ``ack``'s),
        until the server's end event."""
        ack = ack or self.last_ack
        if ack is None:
            raise WireError("no open cursor on this stream")
        cursor_id = ack["cursor"]
        decoder = (
            ChunkDecoder(ack["intern"]) if ack["wire"] == "columnar" else None
        )
        while True:
            opcode, payload = self._next_frame()
            if opcode == OP_BINARY:
                if decoder is None:
                    raise WireError("unexpected binary frame on a rows wire")
                (index,) = _CHUNK_PREFIX.unpack_from(payload)
                if index != ack.get("index"):
                    continue  # another cursor's chunk on this connection
                yield decoder.decode(payload[_CHUNK_PREFIX.size :])
                continue
            if opcode == OP_CLOSE:
                raise WireError("server closed mid-stream")
            event = json.loads(payload.decode("utf-8"))
            self._raise_on_error(event)
            if event.get("cursor") != cursor_id:
                continue
            if event["event"] == "page":
                yield decode_rows(event["rows"])
            elif event["event"] == "end":
                return

    def rows(self, ack: Optional[dict] = None) -> List[tuple]:
        out: List[tuple] = []
        for page in self.pages(ack):
            out.extend(page)
        return out

    def wal_feed(
        self, from_version: int, limit: Optional[int] = None
    ) -> Iterator[dict]:
        """Subscribe to the server's WAL push feed.

        Yields shipment events (``event`` is ``"wal"`` with raw record
        lines, or ``"reseed"`` — after which the feed ends and the
        follower must re-seed from a snapshot).  Blocks between events;
        the server parks on its commit condition, so an idle leader
        costs no traffic.  Server errors raise
        :class:`~repro.errors.ServeError`.
        """
        action = {"action": "wal", "from": int(from_version)}
        if limit is not None:
            action["limit"] = int(limit)
        self._send_json(action)
        while True:
            event = self._next_event()
            self._raise_on_error(event)
            kind = event.get("event")
            if kind == "wal":
                yield event
            elif kind == "reseed":
                yield event
                return

    def close_cursor(self, cursor_id: Optional[str] = None) -> None:
        """Explicitly close a cursor (the pin releases server-side)."""
        if cursor_id is None and self.last_ack is not None:
            cursor_id = self.last_ack["cursor"]
        if cursor_id is None:
            return
        self._send_json({"action": "close", "cursor": cursor_id})
        while True:
            event = self._next_event()
            if event.get("event") == "closed" and event.get("cursor") == cursor_id:
                return
            self._raise_on_error(event)

    def close(self) -> None:
        try:
            self._sock.sendall(encode_frame(OP_CLOSE, b"", mask=True))
        except OSError:
            pass
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "StreamCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
