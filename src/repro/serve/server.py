"""The asyncio query server: HTTP endpoints + WebSocket cursor streams.

One :class:`QueryServer` fronts a :class:`~repro.serve.registry.DatabaseRegistry`
over a single listening socket:

===========================================  =====================================
``GET /healthz``                             liveness (503 once shutdown starts)
``GET /dbs``                                 registered database names
``GET /db/{name}/stats``                     session counters + WAL + cursor count
``POST /db/{name}/query``                    one-shot query, or open an HTTP cursor
``POST /db/{name}/cursor/{id}/next``         pull the next page of an HTTP cursor
``DELETE /db/{name}/cursor/{id}``            close an HTTP cursor (releases pin)
``POST /db/{name}/apply``                    JSONL changeset → ``db.apply()``
``POST /db/{name}/checkpoint``               rotate the durable store's WAL
``GET /db/{name}/wal?from=V``                one replication batch (``&wait=S``
                                             long-polls for the next commit)
``GET /db/{name}/snapshot``                  serialized structure for re-seeding
``GET /db/{name}/stream`` (WebSocket)        snapshot-pinned streaming cursors
                                             + ``{"action": "wal"}`` push feed
===========================================  =====================================

Every blocking engine call runs in the default executor, so the event
loop only ever does parsing and socket I/O.  Per-database write locks
serialize ``/apply`` within a tenant; reads never wait on writers (MVCC
pins).  WebSocket pages flow producer → bounded queue → socket, so a
slow client stalls only its own cursor at ``queue_pages`` of readahead.

Graceful shutdown (:meth:`QueryServer.stop`): stop accepting, close
every cursor (releasing all version pins), cancel the connection tasks,
checkpoint durable stores, and optionally close the databases.
"""

from __future__ import annotations

import asyncio
import json
import struct
import threading
from typing import Dict, Optional, Set, Tuple

from repro.errors import (
    EngineError,
    ReproError,
    ServeError,
    UnknownCursorError,
    WireError,
)
from repro.serve import wire
from repro.serve.cursors import DEFAULT_PAGE_SIZE, Cursor, CursorSet, open_cursor
from repro.serve.protocol import error_payload, error_status
from repro.serve.registry import DatabaseRegistry, RegisteredDatabase
from repro.serve.wire import (
    OP_BINARY,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    HttpRequest,
    encode_frame,
    json_body,
    read_frame,
    read_request,
    render_response,
)

_CHUNK_PREFIX = struct.Struct("!I")


class QueryServer:
    """Serve a registry of databases over HTTP + WebSocket."""

    def __init__(
        self,
        registry: DatabaseRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        page_size_default: int = DEFAULT_PAGE_SIZE,
        cursor_timeout: Optional[float] = 300.0,
        max_body_bytes: int = 16 * 1024 * 1024,
        max_record_bytes: int = 1024 * 1024,
        queue_pages: int = 4,
        checkpoint_on_shutdown: bool = True,
        close_databases: bool = True,
    ):
        self.registry = registry
        self.host = host
        self._requested_port = port
        self.page_size_default = page_size_default
        self.max_body_bytes = max_body_bytes
        self.max_record_bytes = max_record_bytes
        self.queue_pages = max(1, queue_pages)
        self.checkpoint_on_shutdown = checkpoint_on_shutdown
        self.close_databases = close_databases
        self.cursors = CursorSet(timeout=cursor_timeout)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._reaper: Optional[asyncio.Task] = None
        self._stopping = False
        self._stopped = asyncio.Event()

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "QueryServer":
        if self._server is not None:
            raise ServeError("server already started")
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port
        )
        if self.cursors.timeout is not None:
            self._reaper = asyncio.create_task(self._reap_loop())
        return self

    async def _reap_loop(self) -> None:
        interval = max(1.0, self.cursors.timeout / 4)
        while True:
            await asyncio.sleep(interval)
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.cursors.reap)

    async def stop(self) -> None:
        """Graceful shutdown; safe to call more than once."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._reaper is not None:
            self._reaper.cancel()
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        # Closing the cursors releases every version pin; in-flight
        # pulls are waited out by the per-cursor thread lock.
        await loop.run_in_executor(None, self.cursors.close_all)
        connections, self._connections = set(self._connections), set()
        for task in connections:
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        if self.checkpoint_on_shutdown:
            for entry in self.registry.entries():
                if entry.db.durable and not entry.db.closed:
                    await loop.run_in_executor(None, entry.db.checkpoint)
        if self.close_databases:
            await loop.run_in_executor(None, self.registry.close_all)
        self._stopped.set()

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling --------------------------------------------

    def _on_connection(self, reader, writer) -> None:
        task = asyncio.create_task(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, self.max_body_bytes)
                except WireError as error:
                    writer.write(
                        render_response(
                            error.status,
                            json_body(error_payload(error)),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                if request.wants_websocket:
                    await self._serve_stream(request, reader, writer)
                    return
                response, keep_alive = await self._respond(request)
                writer.write(response)
                await writer.drain()
                if not keep_alive:
                    return
        except (
            asyncio.CancelledError,
            ConnectionError,
            BrokenPipeError,
            TimeoutError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(self, request: HttpRequest) -> Tuple[bytes, bool]:
        keep_alive = request.keep_alive and not self._stopping
        try:
            status, payload = await self._dispatch(request)
        except ReproError as error:
            status, payload = error_status(error), error_payload(error)
        except Exception as error:  # never let a handler kill the loop
            status, payload = 500, error_payload(error)
        return (
            render_response(status, json_body(payload), keep_alive=keep_alive),
            keep_alive,
        )

    # -- HTTP routing ---------------------------------------------------

    async def _dispatch(self, request: HttpRequest) -> Tuple[int, dict]:
        method, path = request.method, request.path
        if path == "/healthz":
            if method != "GET":
                raise ServeError("use GET", 405)
            if self._stopping:
                return 503, {"ok": False, "stopping": True}
            return 200, {"ok": True, "databases": len(self.registry)}
        if path == "/dbs":
            if method != "GET":
                raise ServeError("use GET", 405)
            return 200, {"databases": self.registry.names()}
        parts = [part for part in path.split("/") if part]
        if len(parts) >= 2 and parts[0] == "db":
            if self._stopping:
                raise ServeError("server is shutting down", 503)
            entry = self.registry.get(parts[1])
            tail = parts[2:]
            if tail == ["stats"] and method == "GET":
                return await self._handle_stats(entry)
            if tail == ["query"] and method == "POST":
                return await self._handle_query(entry, request)
            if tail == ["apply"] and method == "POST":
                return await self._handle_apply(entry, request)
            if tail == ["checkpoint"] and method == "POST":
                return await self._handle_checkpoint(entry)
            if tail == ["wal"]:
                if method != "GET":
                    raise ServeError("use GET", 405)
                return await self._handle_wal(entry, request)
            if tail == ["snapshot"]:
                if method != "GET":
                    raise ServeError("use GET", 405)
                return await self._handle_snapshot(entry)
            if len(tail) == 3 and tail[0] == "cursor" and tail[2] == "next":
                if method != "POST":
                    raise ServeError("use POST", 405)
                return await self._handle_cursor_next(tail[1])
            if len(tail) == 2 and tail[0] == "cursor":
                if method != "DELETE":
                    raise ServeError("use DELETE", 405)
                self.cursors.close(tail[1])
                return 200, {"closed": tail[1]}
        raise ServeError(f"no route for {method} {path}", 404)

    async def _handle_stats(self, entry: RegisteredDatabase) -> Tuple[int, dict]:
        loop = asyncio.get_running_loop()
        stats = await loop.run_in_executor(None, entry.db.stats)
        stats["name"] = entry.name
        stats["version"] = entry.db.version
        stats["open_cursors"] = self.cursors.count(entry.name)
        return 200, stats

    async def _handle_query(
        self, entry: RegisteredDatabase, request: HttpRequest
    ) -> Tuple[int, dict]:
        body = request.json()
        if not isinstance(body, dict) or "query" not in body:
            raise ServeError('body must be JSON with a "query" key', 400)
        text = body["query"]
        if not isinstance(text, str):
            raise ServeError('"query" must be a string', 400)
        mode = body.get("mode", "all")
        limit = body.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise ServeError(f'bad "limit": {limit!r}', 400)
        page_size = body.get("page_size", self.page_size_default)
        loop = asyncio.get_running_loop()
        if body.get("cursor"):
            cursor = await loop.run_in_executor(
                None,
                lambda: open_cursor(
                    entry,
                    self.cursors,
                    text,
                    wire="rows",
                    page_size=page_size,
                    limit=limit,
                ),
            )
            return 200, {
                "cursor": cursor.id,
                "columns": list(cursor.columns),
                "version": cursor.version,
                "page_size": cursor.page_size,
            }
        if mode == "count":
            count = await loop.run_in_executor(
                None, lambda: entry.db.query(text).count()
            )
            return 200, {"count": count, "version": entry.db.version}
        if mode != "all":
            raise ServeError(f'bad "mode": {mode!r} (all or count)', 400)

        def run_all():
            q = entry.db.query(text)
            if hasattr(q, "statement"):  # a compiled SELECT
                rows = q.all()
                return rows, list(q.columns), q.query._resolved_version
            handle = q.answers(limit=limit)
            rows = handle.all()
            return rows, [v.name for v in q.variables], handle._version

        rows, columns, version = await loop.run_in_executor(None, run_all)
        return 200, {
            "rows": [list(row) for row in rows],
            "columns": columns,
            "version": version,
        }

    async def _handle_cursor_next(self, cursor_id: str) -> Tuple[int, dict]:
        cursor = self.cursors.get(cursor_id)
        loop = asyncio.get_running_loop()
        async with cursor.lock():
            payload, done = await loop.run_in_executor(None, cursor.pull)
        if done:
            self.cursors.discard(cursor)
        return 200, {
            "cursor": cursor.id,
            "rows": [list(row) for row in payload],
            "done": done,
        }

    async def _handle_apply(
        self, entry: RegisteredDatabase, request: HttpRequest
    ) -> Tuple[int, dict]:
        from repro.session import load_changeset_jsonl

        lines = request.body.split(b"\n")
        loop = asyncio.get_running_loop()

        def parse_and_apply():
            changeset = load_changeset_jsonl(
                lines,
                structure=entry.db.structure,
                max_record_bytes=self.max_record_bytes,
            )
            return entry.db.apply(changeset)

        async with entry.write_lock():
            result = await loop.run_in_executor(None, parse_and_apply)
        # Wake WAL long-polls and push pumps: a new batch may be ready.
        await entry.notify_commit()
        return 200, {
            "ops_submitted": result.ops_submitted,
            "ops_effective": result.ops_effective,
            "version_before": result.version_before,
            "version_after": result.version_after,
            "fingerprint_after": result.fingerprint_after,
            "maintained_plans": result.maintained_plans,
            "forked": result.forked,
        }

    async def _handle_checkpoint(
        self, entry: RegisteredDatabase
    ) -> Tuple[int, dict]:
        if not entry.db.durable:
            raise ServeError(f"database {entry.name!r} is not durable", 400)
        loop = asyncio.get_running_loop()
        async with entry.write_lock():
            result = await loop.run_in_executor(None, entry.db.checkpoint)
        return 200, {
            "version": result.version,
            "generation": result.generation,
            "fingerprint": result.fingerprint,
            "warm_entries": result.warm_entries,
            "wal_records_retired": result.wal_records_retired,
            "wal_bytes_retired": result.wal_bytes_retired,
        }

    # -- replication ----------------------------------------------------

    _WAL_LIMIT_MAX = 10_000
    _WAL_WAIT_MAX = 30.0

    async def _handle_wal(
        self, entry: RegisteredDatabase, request: HttpRequest
    ) -> Tuple[int, dict]:
        """One replication batch: ``GET /db/{name}/wal?from=V``.

        ``&limit=N`` bounds the batch; ``&wait=S`` long-polls — when the
        follower is already caught up, the request parks on the tenant's
        commit condition (up to S seconds, capped) so followers ride
        commits with one open request instead of a busy poll.
        """
        query = request.query
        try:
            after = int(query.get("from", "0"))
            limit = int(query.get("limit", "1000"))
            wait = float(query.get("wait", "0"))
        except (TypeError, ValueError):
            raise ServeError(
                "bad wal parameters: from/limit must be integers, "
                "wait a number of seconds",
                400,
            ) from None
        if after < 0 or limit < 1:
            raise ServeError("bad wal parameters: from < 0 or limit < 1", 400)
        limit = min(limit, self._WAL_LIMIT_MAX)
        loop = asyncio.get_running_loop()

        def ship():
            return entry.db.wal_shipment(after, limit=limit)

        shipment = await loop.run_in_executor(None, ship)
        if (
            wait > 0
            and not shipment["records"]
            and not shipment["reseed"]
            and not self._stopping
        ):
            await entry.wait_commit(min(wait, self._WAL_WAIT_MAX))
            shipment = await loop.run_in_executor(None, ship)
        return 200, shipment

    async def _handle_snapshot(
        self, entry: RegisteredDatabase
    ) -> Tuple[int, dict]:
        """The serialized structure a follower re-seeds from.

        Serialized under a snapshot pin, so a concurrent ``/apply``
        forks away instead of tearing the dump; the text format carries
        the version/generation lineage directives a follower needs to
        resume the exact history position.
        """
        from repro.structures.serialize import dumps

        loop = asyncio.get_running_loop()

        def grab():
            with entry.db.snapshot() as snap:
                structure = snap.structure
                return {
                    "structure": dumps(structure),
                    "version": snap.version,
                    "generation": structure.generation,
                    "fingerprint": structure.content_fingerprint(),
                }

        return 200, await loop.run_in_executor(None, grab)

    # -- WebSocket streaming --------------------------------------------

    async def _serve_stream(self, request: HttpRequest, reader, writer) -> None:
        parts = [part for part in request.path.split("/") if part]
        if len(parts) != 3 or parts[0] != "db" or parts[2] != "stream":
            writer.write(
                render_response(
                    404,
                    json_body({"error": f"no stream at {request.path}"}),
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        if self._stopping:
            writer.write(
                render_response(
                    503,
                    json_body({"error": "server is shutting down"}),
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        try:
            entry = self.registry.get(parts[1])
        except ReproError as error:
            writer.write(
                render_response(
                    error_status(error),
                    json_body(error_payload(error)),
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        writer.write(wire.handshake_response(request))
        await writer.drain()
        connection = _StreamConnection(self, entry, reader, writer)
        await connection.run()


class _StreamConnection:
    """One WebSocket connection: control frames in, cursor streams out."""

    def __init__(self, server: QueryServer, entry, reader, writer):
        self.server = server
        self.entry = entry
        self.reader = reader
        self.writer = writer
        self._send_lock = asyncio.Lock()
        self._pumps: Dict[str, asyncio.Task] = {}
        self._cursors: Dict[str, Cursor] = {}

    async def _send(self, opcode: int, payload: bytes) -> None:
        async with self._send_lock:
            self.writer.write(encode_frame(opcode, payload))
            await self.writer.drain()

    async def _send_event(self, event: dict) -> None:
        await self._send(OP_TEXT, json_body(event))

    async def run(self) -> None:
        try:
            while True:
                frame = await read_frame(self.reader, self.server.max_body_bytes)
                if frame is None:
                    return
                opcode, payload = frame
                if opcode == wire.OP_CLOSE:
                    await self._send(wire.OP_CLOSE, payload[:2])
                    return
                if opcode == OP_PING:
                    await self._send(OP_PONG, payload)
                    continue
                if opcode != OP_TEXT:
                    continue
                try:
                    await self._handle_action(json.loads(payload.decode("utf-8")))
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    await self._send_event(
                        {"event": "error", "error": f"bad action JSON: {error}"}
                    )
        except (
            asyncio.CancelledError,
            ConnectionError,
            BrokenPipeError,
            WireError,
        ):
            pass
        finally:
            await self._teardown()

    async def _teardown(self) -> None:
        pumps, self._pumps = dict(self._pumps), {}
        for task in pumps.values():
            task.cancel()
        if pumps:
            await asyncio.gather(*pumps.values(), return_exceptions=True)
        cursors, self._cursors = dict(self._cursors), {}
        if cursors:
            loop = asyncio.get_running_loop()
            for cursor in cursors.values():
                await asyncio.shield(
                    loop.run_in_executor(
                        None, self.server.cursors.discard, cursor
                    )
                )

    async def _handle_action(self, action) -> None:
        if not isinstance(action, dict):
            await self._send_event(
                {"event": "error", "error": "action must be a JSON object"}
            )
            return
        kind = action.get("action")
        if kind == "open":
            await self._open_cursor(action)
        elif kind == "close":
            await self._close_cursor(action.get("cursor"))
        elif kind == "wal":
            await self._open_wal_feed(action)
        elif kind == "ping":
            await self._send_event({"event": "pong"})
        else:
            await self._send_event(
                {"event": "error", "error": f"unknown action {kind!r}"}
            )

    async def _open_cursor(self, action: dict) -> None:
        text = action.get("query")
        if not isinstance(text, str):
            await self._send_event(
                {"event": "error", "error": 'open needs a "query" string'}
            )
            return
        wire_mode = action.get("wire", "rows")
        page_size = action.get("page_size", self.server.page_size_default)
        limit = action.get("limit")
        chunk_rows = action.get("chunk_rows")
        loop = asyncio.get_running_loop()
        try:
            cursor = await loop.run_in_executor(
                None,
                lambda: open_cursor(
                    self.entry,
                    self.server.cursors,
                    text,
                    wire=wire_mode,
                    page_size=page_size,
                    limit=limit,
                    chunk_rows=chunk_rows,
                ),
            )
        except ReproError as error:
            await self._send_event({"event": "error", **error_payload(error)})
            return
        self._cursors[cursor.id] = cursor
        ack = {
            "event": "open",
            "cursor": cursor.id,
            "index": int(cursor.id[1:]),
            "version": cursor.version,
            "columns": list(cursor.columns),
            "wire": cursor.wire,
            "page_size": cursor.page_size,
        }
        if cursor.wire == "columnar":
            encoded = cursor.encoded
            ack["arity"] = encoded.arity
            ack["chunk_rows"] = encoded.chunk_rows
            ack["intern"] = [
                list(e) if isinstance(e, tuple) else e
                for e in encoded.intern_elements
            ]
        await self._send_event(ack)
        pump = asyncio.create_task(self._pump(cursor))
        self._pumps[cursor.id] = pump
        pump.add_done_callback(lambda _task: self._pumps.pop(cursor.id, None))

    _WAL_FEED = "#wal"

    async def _open_wal_feed(self, action: dict) -> None:
        """Start the WAL push feed: ``{"action": "wal", "from": V}``.

        The server pushes ``{"event": "wal", ...}`` shipment events as
        commits land (parking on the tenant's commit condition between
        batches) until the connection closes, or ``{"event": "reseed"}``
        once if the follower's position predates the retained log —
        re-seeding is a request/response affair, so the feed ends there
        and the follower reconnects after its snapshot load.
        """
        try:
            after = int(action.get("from", 0))
            limit = int(action.get("limit", 1000))
        except (TypeError, ValueError):
            await self._send_event(
                {"event": "error", "error": 'wal needs integer "from"/"limit"'}
            )
            return
        if after < 0 or limit < 1:
            await self._send_event(
                {"event": "error", "error": "wal: from < 0 or limit < 1"}
            )
            return
        if self._WAL_FEED in self._pumps:
            await self._send_event(
                {"event": "error", "error": "a wal feed is already running"}
            )
            return
        limit = min(limit, QueryServer._WAL_LIMIT_MAX)
        pump = asyncio.create_task(self._pump_wal(after, limit))
        self._pumps[self._WAL_FEED] = pump
        pump.add_done_callback(
            lambda _task: self._pumps.pop(self._WAL_FEED, None)
        )

    async def _pump_wal(self, after: int, limit: int) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                shipment = await loop.run_in_executor(
                    None,
                    lambda v=after: self.entry.db.wal_shipment(v, limit=limit),
                )
                if shipment["reseed"]:
                    await self._send_event({"event": "reseed", **shipment})
                    return
                if shipment["records"]:
                    await self._send_event({"event": "wal", **shipment})
                    # The follower's next position is the last shipped
                    # record's post-version (the framing key "v").
                    after = json.loads(shipment["records"][-1])["v"]
                    continue
                if shipment["more"]:
                    continue
                await self.entry.wait_commit(QueryServer._WAL_WAIT_MAX)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, BrokenPipeError):
            pass
        except Exception as error:
            try:
                await self._send_event(
                    {"event": "error", **error_payload(error)}
                )
            except (ConnectionError, BrokenPipeError):
                pass

    async def _close_cursor(self, cursor_id) -> None:
        pump = self._pumps.pop(cursor_id, None)
        if pump is not None:
            pump.cancel()
            await asyncio.gather(pump, return_exceptions=True)
        # Idempotent: a cursor that already drained (the pump discards it
        # on exhaustion) acks exactly like a live one being torn down.
        cursor = self._cursors.pop(cursor_id, None)
        if cursor is not None:
            loop = asyncio.get_running_loop()
            await asyncio.shield(
                loop.run_in_executor(None, self.server.cursors.discard, cursor)
            )
        await self._send_event({"event": "closed", "cursor": cursor_id})

    async def _pump(self, cursor: Cursor) -> None:
        """Producer → bounded queue → socket, for one cursor."""
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.server.queue_pages)
        index = _CHUNK_PREFIX.pack(int(cursor.id[1:]))

        async def produce() -> None:
            try:
                while True:
                    payload, done = await loop.run_in_executor(None, cursor.pull)
                    await queue.put((payload, done, None))
                    if done:
                        return
            except asyncio.CancelledError:
                raise
            except BaseException as error:
                await queue.put((None, True, error))

        producer = asyncio.create_task(produce())
        try:
            while True:
                payload, done, error = await queue.get()
                if error is not None:
                    await self._send_event(
                        {
                            "event": "error",
                            "cursor": cursor.id,
                            **error_payload(error),
                        }
                    )
                    break
                if cursor.wire == "columnar":
                    if payload is not None:
                        await self._send(OP_BINARY, index + payload)
                else:
                    if payload:
                        await self._send_event(
                            {
                                "event": "page",
                                "cursor": cursor.id,
                                "rows": [list(row) for row in payload],
                            }
                        )
                if done:
                    await self._send_event({"event": "end", "cursor": cursor.id})
                    break
        finally:
            producer.cancel()
            self._cursors.pop(cursor.id, None)
            await asyncio.shield(
                loop.run_in_executor(None, self.server.cursors.discard, cursor)
            )


def serve_in_thread(
    registry: DatabaseRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
    **options,
) -> "ThreadedServer":
    """Run a :class:`QueryServer` on a dedicated event-loop thread.

    The in-process harness for tests, benchmarks, and notebook use:
    returns once the socket is listening; ``stop()`` runs the graceful
    shutdown and joins the thread.
    """
    handle = ThreadedServer(registry, host, port, options)
    handle._start()
    return handle


class ThreadedServer:
    """A :class:`QueryServer` running under ``asyncio.run`` in a thread."""

    def __init__(self, registry, host, port, options):
        self._registry = registry
        self._host = host
        self._port = port
        self._options = options
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self.server: Optional[QueryServer] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None

    def _start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self.error is not None:
            raise ServeError(f"server failed to start: {self.error}")

    def _run(self) -> None:
        async def main() -> None:
            server = QueryServer(
                self._registry, self._host, self._port, **self._options
            )
            try:
                await server.start()
            except BaseException as error:
                self.error = error
                self._ready.set()
                return
            self.server = server
            self.port = server.port
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            self._ready.set()
            await self._stop_event.wait()
            await server.stop()

        asyncio.run(main())

    def stop(self) -> None:
        """Graceful shutdown from any thread; joins the server thread."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ThreadedServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
