"""Multi-tenant database registry for the serve tier.

One server process fronts many named :class:`repro.session.Database`
instances — in-memory workloads and ``Database.open()`` durable stores
side by side.  The registry owns their lifecycle (``close_all`` on
shutdown, with durable stores checkpointed first by the server) and
hands each one a lazily-created per-database asyncio write lock so
concurrent ``/apply`` requests serialize per tenant without blocking
each other across tenants.  Reads never take the lock: MVCC snapshot
pins make them safe against concurrent commits.
"""

from __future__ import annotations

import asyncio
import re
import threading
from typing import Dict, Iterator, List, Optional

from repro.errors import ServeError, UnknownDatabaseError
from repro.session import Database

_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


class RegisteredDatabase:
    """One tenant: the database plus its serve-side bookkeeping."""

    def __init__(self, name: str, db: Database, close_on_shutdown: bool = True):
        self.name = name
        self.db = db
        self.close_on_shutdown = close_on_shutdown
        self._write_lock: Optional[asyncio.Lock] = None
        self._commit_condition: Optional[asyncio.Condition] = None

    def write_lock(self) -> asyncio.Lock:
        """The per-database commit lock (created on first use so the
        registry can be built before any event loop exists)."""
        if self._write_lock is None:
            self._write_lock = asyncio.Lock()
        return self._write_lock

    def commit_condition(self) -> asyncio.Condition:
        """The per-database commit broadcast (lazy, like the lock).

        ``/apply`` notifies it after every commit so WAL long-polls and
        WebSocket push pumps wake immediately instead of busy-polling
        the store.
        """
        if self._commit_condition is None:
            self._commit_condition = asyncio.Condition()
        return self._commit_condition

    async def notify_commit(self) -> None:
        condition = self.commit_condition()
        async with condition:
            condition.notify_all()

    async def wait_commit(self, timeout: float) -> bool:
        """Park until the next commit notification (or ``timeout``).

        Purely an efficiency wake-up: callers re-read the WAL either
        way, so a commit landing through a path that never notifies
        (another process appending to a shared store) is still picked
        up on the next poll.
        """
        condition = self.commit_condition()
        async with condition:
            try:
                await asyncio.wait_for(condition.wait(), timeout)
                return True
            except asyncio.TimeoutError:
                return False


class DatabaseRegistry:
    """Thread-safe name → :class:`RegisteredDatabase` mapping."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: Dict[str, RegisteredDatabase] = {}

    def add(
        self, name: str, db: Database, close_on_shutdown: bool = True
    ) -> RegisteredDatabase:
        """Register an existing database under ``name``.

        With ``close_on_shutdown=False`` the caller keeps ownership:
        server shutdown drains the tenant's cursors but leaves the
        database open (the in-process test-server pattern).
        """
        if not _NAME_RE.match(name or ""):
            raise ServeError(
                f"bad database name {name!r} (want 1-64 chars of "
                "[A-Za-z0-9_.-])",
                status=400,
            )
        entry = RegisteredDatabase(name, db, close_on_shutdown)
        with self._lock:
            if name in self._entries:
                raise ServeError(f"database {name!r} already registered", 409)
            self._entries[name] = entry
        return entry

    def create(self, name: str, structure, **options) -> RegisteredDatabase:
        """Register a fresh in-memory database over ``structure``."""
        return self.add(name, Database(structure, **options))

    def open(self, name: str, path, **options) -> RegisteredDatabase:
        """Register a durable store via :meth:`Database.open`."""
        return self.add(name, Database.open(path, **options))

    def get(self, name: str) -> RegisteredDatabase:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise UnknownDatabaseError(f"no database named {name!r}")
        return entry

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def remove(self, name: str, close: bool = True) -> None:
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise UnknownDatabaseError(f"no database named {name!r}")
        if close:
            entry.db.close()

    def entries(self) -> List[RegisteredDatabase]:
        with self._lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def close_all(self) -> None:
        """Close every registered database that the registry owns."""
        with self._lock:
            entries, self._entries = list(self._entries.values()), {}
        for entry in entries:
            if entry.close_on_shutdown:
                entry.db.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())
