"""Minimal HTTP/1.1 + WebSocket (RFC 6455) framing for the serve tier.

Hand-rolled on ``asyncio`` streams because the serve tier must not add
dependencies: the subset implemented here is exactly what the query
protocol needs — keep-alive HTTP with ``Content-Length`` bodies, and
unfragmented WebSocket frames with client-side masking.  Both directions
of the WebSocket codec are here (the sync side backs
:class:`repro.serve.client.StreamCursor`), sharing one masking routine.

Anything malformed raises :class:`repro.errors.WireError`, which the
server maps to a 400 (or a connection close once the protocol has been
switched).
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import WireError

# The GUID every WebSocket handshake concatenates to the client key
# before hashing (RFC 6455 §1.3).
WS_MAGIC = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_MAX_HEADER_BYTES = 64 * 1024
_REASONS = {
    101: "Switching Protocols",
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


# -- HTTP ---------------------------------------------------------------


@dataclass
class HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The body as JSON; :class:`WireError` on malformed input."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireError(f"request body is not valid JSON: {error}") from None

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    @property
    def wants_websocket(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        upgrade = self.headers.get("upgrade", "").lower()
        return "upgrade" in connection and upgrade == "websocket"


async def read_request(
    reader, max_body: int = 16 * 1024 * 1024
) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on clean EOF.

    ``max_body`` bounds ``Content-Length`` so a hostile peer cannot make
    the server buffer arbitrary bytes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError("truncated request head") from None
    except (asyncio.LimitOverrunError, ValueError) as error:
        raise WireError(f"unreadable request head: {error}") from None
    if len(head) > _MAX_HEADER_BYTES:
        raise WireError("request head too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise WireError("undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise WireError(f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise WireError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise WireError(
                f"bad Content-Length: {length_header!r}"
            ) from None
        if length < 0:
            raise WireError(f"bad Content-Length: {length_header!r}")
        if length > max_body:
            raise WireError(
                f"request body of {length} bytes exceeds the "
                f"{max_body}-byte limit",
                status=413,
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception:
                raise WireError("truncated request body") from None
    return HttpRequest(
        method=method,
        target=target,
        path=path,
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if body:
        lines.append(f"Content-Type: {content_type}")
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_body(payload) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


# -- WebSocket handshake ------------------------------------------------


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client key (RFC 6455 §4.2.2)."""
    digest = hashlib.sha1((key + WS_MAGIC).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_response(request: HttpRequest) -> bytes:
    """The 101 upgrade response for a WebSocket request."""
    key = request.headers.get("sec-websocket-key")
    if not key:
        raise WireError("websocket upgrade without Sec-WebSocket-Key")
    return render_response(
        101,
        extra_headers={
            "Upgrade": "websocket",
            "Connection": "Upgrade",
            "Sec-WebSocket-Accept": websocket_accept(key),
        },
    )


# -- WebSocket frames ---------------------------------------------------


def _apply_mask(payload: bytes, mask: bytes) -> bytes:
    if not payload:
        return payload
    repeated = (mask * (len(payload) // 4 + 1))[: len(payload)]
    return (
        int.from_bytes(payload, "little")
        ^ int.from_bytes(repeated, "little")
    ).to_bytes(len(payload), "little")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One unfragmented frame (FIN set).  Clients must set ``mask``."""
    head = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        return bytes(head) + key + _apply_mask(payload, key)
    return bytes(head) + payload


async def read_frame(
    reader, max_payload: int = 16 * 1024 * 1024
) -> Optional[Tuple[int, bytes]]:
    """Read one frame: ``(opcode, payload)``; ``None`` on clean EOF.

    Fragmented messages are refused — every message the protocol sends
    fits one frame, and rejecting continuation keeps the state machine
    trivial.
    """
    try:
        head = await reader.readexactly(2)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError("truncated websocket frame") from None
    fin = head[0] & 0x80
    opcode = head[0] & 0x0F
    if not fin or opcode == OP_CONT:
        raise WireError("fragmented websocket frames are not supported")
    masked = head[1] & 0x80
    length = head[1] & 0x7F
    try:
        if length == 126:
            (length,) = struct.unpack("!H", await reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack("!Q", await reader.readexactly(8))
        if length > max_payload:
            raise WireError(
                f"websocket payload of {length} bytes exceeds the "
                f"{max_payload}-byte limit"
            )
        mask = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise WireError("truncated websocket frame") from None
    if masked:
        payload = _apply_mask(payload, mask)
    return opcode, payload


def read_frame_sync(sock_file, max_payload: int = 16 * 1024 * 1024):
    """Blocking twin of :func:`read_frame` over a socket file object."""
    head = sock_file.read(2)
    if not head:
        return None
    if len(head) < 2:
        raise WireError("truncated websocket frame")
    fin = head[0] & 0x80
    opcode = head[0] & 0x0F
    if not fin or opcode == OP_CONT:
        raise WireError("fragmented websocket frames are not supported")
    masked = head[1] & 0x80
    length = head[1] & 0x7F

    def exactly(n: int) -> bytes:
        data = sock_file.read(n)
        if len(data) < n:
            raise WireError("truncated websocket frame")
        return data

    if length == 126:
        (length,) = struct.unpack("!H", exactly(2))
    elif length == 127:
        (length,) = struct.unpack("!Q", exactly(8))
    if length > max_payload:
        raise WireError(
            f"websocket payload of {length} bytes exceeds the "
            f"{max_payload}-byte limit"
        )
    mask = exactly(4) if masked else b""
    payload = exactly(length) if length else b""
    if masked:
        payload = _apply_mask(payload, mask)
    return opcode, payload


async def iter_messages(
    reader, max_payload: int = 16 * 1024 * 1024
) -> AsyncIterator[Tuple[int, bytes]]:
    """Data/control frames until close or EOF (close frame not yielded)."""
    while True:
        frame = await read_frame(reader, max_payload)
        if frame is None or frame[0] == OP_CLOSE:
            return
        yield frame
