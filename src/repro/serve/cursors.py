"""Snapshot-pinned streaming cursors and their lifecycle bookkeeping.

A cursor is one client's paginated view of one query's answers, pinned
to the structure version at open time: while the client pages — for
seconds or minutes — writers keep committing (PR 5 forks the head
copy-on-write), and the cursor's pages stay byte-identical to a
pre-commit enumeration.  The price is one pinned version against the
database's ``retention_budget``, which is why every close path —
explicit ``close``, idle timeout (the reaper), connection drop, server
shutdown — funnels into :meth:`Cursor.close` releasing the pin.

Three kinds, by payload:

``rows``
    Raw-FO answers via :meth:`repro.session.Query.answers`, paged with
    :meth:`Answers.page` — JSON row arrays on the wire.

``select``
    A qlang ``SELECT`` statement via
    :class:`repro.qlang.CompiledQuery.stream` (projection, DISTINCT,
    ORDER BY, LIMIT applied engine-side), sliced into pages — JSON rows.

``columnar``
    Encoded chunks via :meth:`repro.session.Query.answers_encoded`,
    forwarded as opaque binary frames — this process never decodes a
    row (the passthrough observable: ``transport_stats.rows == 0``).

All pulls are blocking and run off-loop; a per-cursor asyncio lock keeps
pulls single-flight so a confused client cannot interleave them.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import EngineError, ServeError, UnknownCursorError
from repro.qlang import is_select
from repro.serve.registry import RegisteredDatabase

DEFAULT_PAGE_SIZE = 256


class Cursor:
    """One open cursor: its pull function and close chain."""

    def __init__(
        self,
        cursor_id: str,
        database: str,
        kind: str,
        wire: str,
        page_size: int,
        columns: Tuple[str, ...],
        version: int,
        pull_fn: Callable[[], Tuple[object, bool]],
        close_fn: Callable[[], None],
    ):
        self.id = cursor_id
        self.database = database
        self.kind = kind
        self.wire = wire
        self.page_size = page_size
        self.columns = columns
        self.version = version
        self._pull_fn = pull_fn
        self._close_fn = close_fn
        # pull runs on an executor thread while close may come from the
        # reaper or shutdown: one lock serializes them (a close waits
        # out the in-flight pull; a pull after close gets 404).
        self._tlock = threading.Lock()
        self._lock: Optional[asyncio.Lock] = None
        self._closed = False
        self.exhausted = False
        self.last_used = time.monotonic()

    def lock(self) -> asyncio.Lock:
        if self._lock is None:
            self._lock = asyncio.Lock()
        return self._lock

    def pull(self) -> Tuple[object, bool]:
        """The next payload and whether the stream is done (blocking)."""
        with self._tlock:
            if self._closed:
                raise UnknownCursorError(f"cursor {self.id} is closed")
            self.last_used = time.monotonic()
            payload, done = self._pull_fn()
            if done:
                self.exhausted = True
            return payload, done

    def close(self) -> None:
        """Release the cursor's pins.  Idempotent, thread-safe (waits
        out an in-flight pull before tearing the source down)."""
        with self._tlock:
            if self._closed:
                return
            self._closed = True
            self._close_fn()

    @property
    def closed(self) -> bool:
        return self._closed


class CursorSet:
    """All open cursors of one server, with idle reaping."""

    def __init__(self, timeout: Optional[float] = 300.0):
        self.timeout = timeout
        self._lock = threading.Lock()
        self._cursors: Dict[str, Cursor] = {}
        self._counter = itertools.count(1)

    def register(self, make_cursor: Callable[[str], Cursor]) -> Cursor:
        cursor_id = f"c{next(self._counter)}"
        cursor = make_cursor(cursor_id)
        with self._lock:
            self._cursors[cursor_id] = cursor
        return cursor

    def get(self, cursor_id: str) -> Cursor:
        with self._lock:
            cursor = self._cursors.get(cursor_id)
        if cursor is None:
            raise UnknownCursorError(f"no cursor {cursor_id!r}")
        return cursor

    def close(self, cursor_id: str) -> None:
        with self._lock:
            cursor = self._cursors.pop(cursor_id, None)
        if cursor is None:
            raise UnknownCursorError(f"no cursor {cursor_id!r}")
        cursor.close()

    def discard(self, cursor: Cursor) -> None:
        """Close and forget without raising (connection-drop cleanup)."""
        with self._lock:
            self._cursors.pop(cursor.id, None)
        cursor.close()

    def reap(self) -> List[str]:
        """Close cursors idle past the timeout; the reaped ids."""
        if self.timeout is None:
            return []
        deadline = time.monotonic() - self.timeout
        with self._lock:
            stale = [
                cursor
                for cursor in self._cursors.values()
                if cursor.last_used < deadline
            ]
            for cursor in stale:
                del self._cursors[cursor.id]
        for cursor in stale:
            cursor.close()
        return [cursor.id for cursor in stale]

    def close_all(self) -> None:
        with self._lock:
            cursors, self._cursors = list(self._cursors.values()), {}
        for cursor in cursors:
            cursor.close()

    def count(self, database: Optional[str] = None) -> int:
        with self._lock:
            if database is None:
                return len(self._cursors)
            return sum(
                1 for c in self._cursors.values() if c.database == database
            )


def open_cursor(
    entry: RegisteredDatabase,
    cursors: CursorSet,
    text: str,
    wire: str = "rows",
    page_size: int = DEFAULT_PAGE_SIZE,
    limit: Optional[int] = None,
    chunk_rows: Optional[int] = None,
) -> Cursor:
    """Open a snapshot-pinned cursor over ``text`` on ``entry``.

    The snapshot and the plan's own pin are released immediately after
    the answer handle exists, so each cursor holds exactly *one* pinned
    version — its handle's — against the retention budget.

    ``wire="columnar"`` needs the raw passthrough path, which serves the
    full enumeration: a SELECT statement or a ``limit`` downgrades the
    cursor to the rows wire (reported in the open ack, so clients see
    what they got).
    """
    if page_size < 1:
        raise ServeError(f"page_size must be >= 1, got {page_size}", 400)
    if wire not in ("rows", "columnar"):
        raise ServeError(f"unknown wire {wire!r} (rows or columnar)", 400)
    select = is_select(text)
    if wire == "columnar" and (select or limit is not None):
        wire = "rows"

    snapshot = entry.db.snapshot()
    try:
        if select:
            compiled = snapshot.query(text)
            columns = tuple(compiled.columns)
            version = snapshot.version
            stream = compiled.stream()

            def pull_select() -> Tuple[List[tuple], bool]:
                page = list(itertools.islice(stream, page_size))
                return page, len(page) < page_size

            def close_select() -> None:
                last = getattr(compiled, "_last_handle", None)
                if last is not None:
                    try:
                        last.cancel()
                    except EngineError:
                        pass
                compiled.query.close()

            pull_fn, close_fn, kind = pull_select, close_select, "select"
        else:
            query = snapshot.query(text)
            columns = tuple(v.name for v in query.variables)
            version = snapshot.version
            if wire == "columnar":
                encoded = query.answers_encoded(chunk_rows=chunk_rows)

                def pull_columnar() -> Tuple[Optional[bytes], bool]:
                    chunk = encoded.next_chunk()
                    return chunk, chunk is None

                pull_fn, close_fn, kind = (
                    pull_columnar,
                    encoded.close,
                    "columnar",
                )
            else:
                handle = query.answers(limit=limit)
                state = {"index": 0}

                def pull_rows() -> Tuple[List[tuple], bool]:
                    page = handle.page(state["index"], size=page_size)
                    state["index"] += 1
                    return page, len(page) < page_size

                def close_rows() -> None:
                    if not handle.cancelled:
                        try:
                            handle.cancel()
                        except EngineError:
                            pass

                pull_fn, close_fn, kind = pull_rows, close_rows, "rows"
            # The cursor's handle holds its own pin; drop the plan's.
            query.close()
    finally:
        snapshot.close()

    def make(cursor_id: str) -> Cursor:
        cursor = Cursor(
            cursor_id,
            database=entry.name,
            kind=kind,
            wire=wire,
            page_size=page_size,
            columns=columns,
            version=version,
            pull_fn=pull_fn,
            close_fn=close_fn,
        )
        if wire == "columnar":
            cursor.encoded = encoded  # intern table + stats for the ack
        return cursor

    return cursors.register(make)
