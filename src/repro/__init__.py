"""repro — constant-delay enumeration of FO query answers over databases
of low degree.

Reproduction of Durand, Schweikardt, Segoufin, *Enumerating answers to
first-order queries over databases of low degree* (PODS 2014 / LMCS 2022).

Quickstart::

    from repro import Database, Signature, Structure

    db = Structure(Signature.of(E=2, B=1, R=1), range(4))
    db.add_fact("B", 0); db.add_fact("R", 2); db.add_fact("E", 0, 1)
    with Database(db) as session:
        query = session.query("B(x) & R(y) & ~E(x,y)")
        query.count()                     # Theorem 2.5
        query.test((0, 2))                # Theorem 2.6
        list(query.answers())             # Theorem 2.7, constant delay
        session.insert_fact("E", 0, 2)    # plans maintained in place
        query.count()                     # reflects the update

The legacy front-ends (``prepare``, ``DynamicQuery``, ``QueryBatch``,
``AsyncQueryBatch``) remain as deprecated shims over the session layer.
"""

from repro.errors import (
    CancelledResultError,
    EngineError,
    EvaluationError,
    FrozenStructureError,
    ParseError,
    QueryError,
    ReproError,
    SignatureError,
    StaleResultError,
    TransactionError,
    UnsupportedQueryError,
)
from repro.fo import Var, coerce_formula, parse
from repro.fo.builder import Q
from repro.qlang import CompiledQuery, SelectQuery, parse_select
from repro.structures import Signature, Structure

__version__ = "1.1.0"

__all__ = [
    "Answers",
    "AsyncQueryBatch",
    "CancelledResultError",
    "Changeset",
    "CommitResult",
    "CompiledQuery",
    "Database",
    "DynamicQuery",
    "EngineError",
    "EvaluationError",
    "FrozenStructureError",
    "ParseError",
    "Q",
    "Query",
    "QueryBatch",
    "QueryError",
    "QueryPlan",
    "ReproError",
    "ResultCancelledError",
    "SelectQuery",
    "Signature",
    "SignatureError",
    "Snapshot",
    "StaleResultError",
    "Structure",
    "Transaction",
    "TransactionError",
    "UnsupportedQueryError",
    "Var",
    "coerce_formula",
    "model_check",
    "parse",
    "parse_select",
    "prepare",
    "__version__",
]


def prepare(structure, query, eps=0.5, **kwargs):
    """Preprocess ``query`` on ``structure`` for counting / testing /
    constant-delay enumeration.  See :class:`repro.core.api.PreparedQuery`.

    .. deprecated:: Use :class:`repro.Database` — ``Database(structure)``
        then ``db.query(...)``.

    Imported lazily to keep ``import repro`` light.
    """
    from repro.core.api import prepare as _prepare

    # _stacklevel=3: attribute the deprecation warning to the caller of
    # this wrapper, not to the forwarding line below.
    return _prepare(structure, query, eps=eps, _stacklevel=3, **kwargs)


def model_check(sentence, structure, **kwargs):
    """Decide ``A |= sentence`` in pseudo-linear time (Theorem 2.4)."""
    from repro.core.model_checking import model_check as _model_check

    return _model_check(coerce_formula(sentence), structure, **kwargs)


# Heavy (or deprecated) surface, resolved lazily so ``import repro``
# stays light and deprecation warnings fire at use, not import.
_LAZY_EXPORTS = {
    "Answers": ("repro.session", "Answers"),
    "Changeset": ("repro.session", "Changeset"),
    "CommitResult": ("repro.session", "CommitResult"),
    "Database": ("repro.session", "Database"),
    "Query": ("repro.session", "Query"),
    "QueryPlan": ("repro.session", "QueryPlan"),
    "Snapshot": ("repro.session", "Snapshot"),
    "Transaction": ("repro.session", "Transaction"),
    "DynamicQuery": ("repro.core.dynamic", "DynamicQuery"),
    "QueryBatch": ("repro.engine", "QueryBatch"),
    "AsyncQueryBatch": ("repro.engine", "AsyncQueryBatch"),
    "ResultCancelledError": ("repro.errors", "ResultCancelledError"),
}


def __getattr__(name):
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module_name, attribute = target
    return getattr(importlib.import_module(module_name), attribute)
