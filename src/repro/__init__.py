"""repro — constant-delay enumeration of FO query answers over databases
of low degree.

Reproduction of Durand, Schweikardt, Segoufin, *Enumerating answers to
first-order queries over databases of low degree* (PODS 2014 / LMCS 2022).

Quickstart::

    from repro import Signature, Structure, parse, prepare

    db = Structure(Signature.of(E=2, B=1, R=1), range(4))
    db.add_fact("B", 0); db.add_fact("R", 2); db.add_fact("E", 0, 1)
    query = parse("B(x) & R(y) & ~E(x,y)")
    prepared = prepare(db, query)           # pseudo-linear preprocessing
    prepared.count()                        # Theorem 2.5
    prepared.test((0, 2))                   # Theorem 2.6
    list(prepared.enumerate())              # Theorem 2.7, constant delay
"""

from repro.errors import (
    CancelledResultError,
    EngineError,
    EvaluationError,
    ParseError,
    QueryError,
    ReproError,
    ResultCancelledError,
    SignatureError,
    StaleResultError,
    UnsupportedQueryError,
)
from repro.fo import Var, parse
from repro.fo.builder import Q
from repro.structures import Signature, Structure

__version__ = "1.0.0"

__all__ = [
    "AsyncQueryBatch",
    "CancelledResultError",
    "DynamicQuery",
    "EngineError",
    "EvaluationError",
    "ParseError",
    "Q",
    "QueryBatch",
    "QueryError",
    "ReproError",
    "ResultCancelledError",
    "Signature",
    "SignatureError",
    "StaleResultError",
    "Structure",
    "UnsupportedQueryError",
    "Var",
    "model_check",
    "parse",
    "prepare",
    "__version__",
]


def prepare(structure, query, eps=0.5, **kwargs):
    """Preprocess ``query`` on ``structure`` for counting / testing /
    constant-delay enumeration.  See :class:`repro.core.api.PreparedQuery`.

    Imported lazily to keep ``import repro`` light.
    """
    from repro.core.api import prepare as _prepare

    return _prepare(structure, query, eps=eps, **kwargs)


def model_check(sentence, structure, **kwargs):
    """Decide ``A |= sentence`` in pseudo-linear time (Theorem 2.4)."""
    from repro.core.model_checking import model_check as _model_check

    if isinstance(sentence, str):
        sentence = parse(sentence)
    return _model_check(sentence, structure, **kwargs)


def __getattr__(name):
    if name == "DynamicQuery":
        from repro.core.dynamic import DynamicQuery

        return DynamicQuery
    if name == "QueryBatch":
        from repro.engine import QueryBatch

        return QueryBatch
    if name == "AsyncQueryBatch":
        from repro.engine import AsyncQueryBatch

        return AsyncQueryBatch
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
