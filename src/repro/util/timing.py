"""Wall-clock measurement helpers for examples and benchmarks."""

from __future__ import annotations

import time
from typing import List, Optional


class Stopwatch:
    """Accumulates named wall-clock measurements.

    Used by examples and the benchmark harness to report phase timings
    (preprocessing vs enumeration) and per-output delays.
    """

    def __init__(self) -> None:
        self._t0: Optional[float] = None
        self.laps: List[float] = []

    def start(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def lap(self) -> float:
        """Record and return the time since the last lap (or start)."""
        now = time.perf_counter()
        if self._t0 is None:
            raise RuntimeError("Stopwatch.lap() called before start()")
        elapsed = now - self._t0
        self.laps.append(elapsed)
        self._t0 = now
        return elapsed

    def elapsed(self) -> float:
        """Time since start without recording a lap."""
        if self._t0 is None:
            raise RuntimeError("Stopwatch.elapsed() called before start()")
        return time.perf_counter() - self._t0

    @property
    def total(self) -> float:
        return sum(self.laps)

    @property
    def max_lap(self) -> float:
        return max(self.laps) if self.laps else 0.0

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile of recorded laps (q in [0, 100])."""
        if not self.laps:
            return 0.0
        ordered = sorted(self.laps)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]
