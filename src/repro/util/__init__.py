"""Small shared helpers: orderings, iteration utilities, timing."""

from repro.util.itertools2 import (
    connected_subsets,
    distinct_tuples,
    injections,
    powerset,
)
from repro.util.orderings import DomainOrder
from repro.util.timing import Stopwatch

__all__ = [
    "DomainOrder",
    "Stopwatch",
    "connected_subsets",
    "distinct_tuples",
    "injections",
    "powerset",
]
