"""Small shared helpers: orderings, iteration, timing, retry, faults."""

from repro.util.faults import InjectedCrash, crash_point, inject
from repro.util.itertools2 import (
    connected_subsets,
    distinct_tuples,
    injections,
    powerset,
)
from repro.util.orderings import DomainOrder
from repro.util.retry import CircuitBreaker, RetryPolicy, call_with_retry
from repro.util.timing import Stopwatch

__all__ = [
    "CircuitBreaker",
    "DomainOrder",
    "InjectedCrash",
    "RetryPolicy",
    "Stopwatch",
    "call_with_retry",
    "connected_subsets",
    "crash_point",
    "distinct_tuples",
    "inject",
    "injections",
    "powerset",
]
