"""Deterministic fault injection for crash-safety tests.

The durability and replication layers advertise *named crash points* —
places where a process death would be most damaging: mid-WAL-append,
between the checkpoint manifest swap and the log rotation, inside a
follower's replay step.  Production code calls :func:`crash_point` at
each of them; the call is a no-op unless a test armed that point with
:func:`inject`, in which case it raises :class:`InjectedCrash` (or runs
a custom action, e.g. tearing a write) exactly on the armed hit count.

Arming is process-local and scoped: ``with inject({"wal.append.torn": 1})``
fires the point on its first hit and disarms on exit, so Hypothesis can
drive arbitrary schedules of commits × faults × restarts and every
example leaves a clean injector behind.

This module lives in ``repro.util`` so that :mod:`repro.storage.wal`
can import it without a cycle; :mod:`repro.replication.faults` re-exports
it next to the wire-level fault proxy.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Union

__all__ = [
    "InjectedCrash",
    "FaultPlan",
    "crash_point",
    "inject",
    "is_armed",
]


class InjectedCrash(Exception):
    """A test-armed crash point fired.

    Deliberately *not* a :class:`repro.errors.ReproError`: it simulates
    the process dying, so production handlers that catch library errors
    must not swallow it into a recovery path the real crash would never
    reach.  (Durability wrappers that catch ``Exception`` to latch a
    degraded state are exactly the paths under test, and re-raising
    through them is part of the simulated failure.)
    """

    def __init__(self, point: str):
        super().__init__(f"injected crash at {point!r}")
        self.point = point


# An armed point maps to either an int — fire InjectedCrash on the Nth
# hit (1 = next hit) — or a callable run *instead* of raising, which may
# itself raise to simulate the crash after a side effect (torn bytes).
FaultPlan = Dict[str, Union[int, Callable[[], None]]]

_lock = threading.Lock()
_armed: Dict[str, Union[int, Callable[[], None]]] = {}
_hits: Dict[str, int] = {}


def crash_point(name: str, payload: Optional[Callable[[], None]] = None) -> None:
    """Production-side hook: no-op unless a test armed ``name``.

    ``payload``, when provided by the *call site*, is the site's own
    "partial effect" action (e.g. write half a record) run before the
    crash fires — the site decides what a torn version of itself looks
    like; the test only decides *when* it happens.
    """
    with _lock:
        action = _armed.get(name)
        if action is None:
            return
        count = _hits.get(name, 0) + 1
        _hits[name] = count
        if isinstance(action, int):
            if count != action:
                return
            del _armed[name]
            fire: Union[int, Callable[[], None]] = action
        else:
            del _armed[name]
            fire = action
    if callable(fire):
        fire()
        return
    if payload is not None:
        payload()
    raise InjectedCrash(name)


def is_armed(name: str) -> bool:
    with _lock:
        return name in _armed


@contextmanager
def inject(plan: FaultPlan) -> Iterator[None]:
    """Arm a set of crash points for the duration of the block.

    Nested injections merge; on exit only this block's points are
    disarmed (fired points already removed themselves).
    """
    with _lock:
        for name, action in plan.items():
            _armed[name] = action
            _hits[name] = 0
    try:
        yield
    finally:
        with _lock:
            for name in plan:
                _armed.pop(name, None)
                _hits.pop(name, None)
