"""Retry with exponential backoff, deadlines, and a circuit breaker.

Every network edge in the system — :class:`repro.serve.ServeClient`
requests, the replication follower's WAL tail, the CLI's remote calls —
funnels transient failures through one policy object instead of growing
ad-hoc ``try/except ConnectionError`` loops.  The shape is classic:

* :class:`RetryPolicy` — up to ``attempts`` tries, sleeping
  ``base_delay * multiplier**i`` (capped at ``max_delay``) with full
  jitter between them, the whole call bounded by ``deadline`` seconds.
* :class:`CircuitBreaker` — after ``threshold`` *consecutive* failures
  the circuit opens and calls fail fast with
  :class:`~repro.errors.CircuitOpenError` for ``reset_after`` seconds;
  the first call after the cool-down is a half-open probe that closes
  the circuit on success.

``jitter`` uses :func:`random.random` — decorrelating a thundering herd
is the point, so determinism is deliberately not offered here; tests
that need determinism set ``jitter=0``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import CircuitOpenError, ServeTimeoutError

__all__ = ["RetryPolicy", "CircuitBreaker", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up on a transient failure."""

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 1.0  # 0 = deterministic sleeps, 1 = full jitter
    deadline: Optional[float] = None  # wall-clock budget for all attempts

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * (self.multiplier ** attempt))
        if self.jitter <= 0:
            return raw
        # Full jitter (AWS-style): uniform in [raw*(1-j), raw].
        return raw * (1.0 - self.jitter * random.random())

    def call(
        self,
        func: Callable[[], T],
        *,
        retry_on: Tuple[Type[BaseException], ...],
        breaker: Optional["CircuitBreaker"] = None,
        describe: str = "call",
    ) -> T:
        return call_with_retry(
            func, self, retry_on=retry_on, breaker=breaker, describe=describe
        )


class CircuitBreaker:
    """Open after N consecutive failures; half-open probe after cooldown.

    Thread-safe: one breaker may guard a connection pool shared across
    client threads.  Success anywhere closes it and resets the count.
    """

    def __init__(self, threshold: int = 5, reset_after: float = 5.0):
        self.threshold = max(1, threshold)
        self.reset_after = reset_after
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    def allow(self) -> bool:
        """May a call proceed right now?  (Claims the half-open probe.)"""
        with self._lock:
            if self._opened_at is None:
                return True
            if time.monotonic() - self._opened_at < self.reset_after:
                return False
            if self._probing:
                return False  # another thread owns the probe
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.threshold:
                self._opened_at = time.monotonic()

    @property
    def open(self) -> bool:
        with self._lock:
            return (
                self._opened_at is not None
                and time.monotonic() - self._opened_at < self.reset_after
            )

    def stats(self) -> dict:
        with self._lock:
            return {
                "consecutive_failures": self._failures,
                "open": self._opened_at is not None,
                "threshold": self.threshold,
            }


def call_with_retry(
    func: Callable[[], T],
    policy: RetryPolicy,
    *,
    retry_on: Tuple[Type[BaseException], ...],
    breaker: Optional[CircuitBreaker] = None,
    describe: str = "call",
) -> T:
    """Run ``func`` under ``policy``, retrying only ``retry_on`` errors.

    Anything outside ``retry_on`` propagates immediately (a 404 is not
    transient).  On exhaustion the *last* transient error is re-raised,
    so callers keep the full taxonomy; a blown deadline raises
    :class:`~repro.errors.ServeTimeoutError` carrying the cause.
    """
    started = time.monotonic()
    last: Optional[BaseException] = None
    for attempt in range(max(1, policy.attempts)):
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                f"{describe}: circuit open after "
                f"{breaker.threshold} consecutive failures"
            )
        try:
            result = func()
        except retry_on as error:
            if breaker is not None:
                breaker.record_failure()
            last = error
            delay = policy.delay(attempt)
            elapsed = time.monotonic() - started
            if attempt + 1 >= max(1, policy.attempts):
                break
            if (
                policy.deadline is not None
                and elapsed + delay >= policy.deadline
            ):
                raise ServeTimeoutError(
                    f"{describe}: retry deadline of {policy.deadline}s "
                    f"exhausted after {attempt + 1} attempt(s): {error}"
                ) from error
            time.sleep(delay)
        else:
            if breaker is not None:
                breaker.record_success()
            return result
    assert last is not None
    raise last
