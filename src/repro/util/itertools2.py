"""Iteration helpers used across the library.

These are deliberately plain generators: callers that only need to loop
never pay for materializing intermediate lists.
"""

from __future__ import annotations

from itertools import chain, combinations, permutations, product
from typing import Callable, Hashable, Iterable, Iterator, Sequence, Tuple


def powerset(items: Sequence, min_size: int = 0, max_size: int = -1) -> Iterator[Tuple]:
    """Yield all subsets of ``items`` as tuples, by increasing size."""
    if max_size < 0:
        max_size = len(items)
    sizes = range(min_size, max_size + 1)
    return chain.from_iterable(combinations(items, size) for size in sizes)


def injections(source_size: int, target: Sequence) -> Iterator[Tuple]:
    """Yield all injective mappings from ``range(source_size)`` into ``target``.

    Each mapping is represented as a tuple ``m`` with ``m[i]`` the image of
    ``i``.  This matches the paper's injections ``iota`` from cluster
    positions into query positions (Proposition 3.4, Step 3).
    """
    return permutations(target, source_size)


def distinct_tuples(items: Sequence, arity: int) -> Iterator[Tuple]:
    """Yield all tuples over ``items`` of length ``arity`` with distinct entries."""
    return permutations(items, arity)


def all_tuples(items: Sequence, arity: int) -> Iterator[Tuple]:
    """Yield all tuples over ``items`` of length ``arity`` (repeats allowed)."""
    return product(items, repeat=arity)


def connected_subsets(
    seed: Hashable,
    neighbors: Callable[[Hashable], Iterable[Hashable]],
    max_size: int,
) -> Iterator[frozenset]:
    """Yield all connected vertex sets of size <= ``max_size`` containing ``seed``.

    Connectivity is with respect to the ``neighbors`` callback.  Standard
    frontier-extension enumeration: grow the current set one boundary vertex
    at a time, forbidding vertices already rejected on this branch so every
    set is produced exactly once.
    """

    def extend(current: frozenset, frontier: Tuple, forbidden: frozenset) -> Iterator[frozenset]:
        yield current
        if len(current) == max_size:
            return
        local_forbidden = set(forbidden)
        for vertex in frontier:
            if vertex in local_forbidden:
                continue
            new_frontier = tuple(
                neighbor
                for neighbor in frontier
                if neighbor != vertex and neighbor not in local_forbidden
            ) + tuple(
                neighbor
                for neighbor in neighbors(vertex)
                if neighbor not in current
                and neighbor not in local_forbidden
                and neighbor != vertex
            )
            yield from extend(
                current | {vertex}, new_frontier, frozenset(local_forbidden)
            )
            local_forbidden.add(vertex)

    initial_frontier = tuple(
        neighbor for neighbor in neighbors(seed) if neighbor != seed
    )
    return extend(frozenset([seed]), initial_frontier, frozenset())
