"""Linear orders on structure domains.

The RAM model of the paper (Section 2.2) assumes the input structure comes
with a linear order on the domain; iteration is always with respect to that
order, and tuples are compared lexicographically.  ``DomainOrder`` is that
order, materialized: a bijection between domain elements and ranks
``0 .. n-1``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence, Tuple


class DomainOrder:
    """A fixed linear order over a finite set of hashable elements.

    Elements are ranked by first appearance in the iterable given to the
    constructor, which mirrors the paper's "order induced by the encoding of
    the structure".
    """

    __slots__ = ("_elements", "_rank")

    def __init__(self, elements: Iterable[Hashable]):
        self._elements: list = []
        self._rank: dict = {}
        for element in elements:
            if element not in self._rank:
                self._rank[element] = len(self._elements)
                self._elements.append(element)

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator:
        return iter(self._elements)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._rank

    def rank(self, element: Hashable) -> int:
        """Return the position of ``element`` in the order (0-based)."""
        return self._rank[element]

    def element(self, rank: int) -> Hashable:
        """Return the element at position ``rank``."""
        return self._elements[rank]

    def elements(self) -> Sequence[Hashable]:
        """All elements, smallest rank first (do not mutate)."""
        return self._elements

    def key(self, tup: Sequence[Hashable]) -> Tuple[int, ...]:
        """Lexicographic sort key for a tuple of domain elements."""
        return tuple(self._rank[element] for element in tup)

    def sorted_tuples(self, tuples: Iterable[Sequence[Hashable]]) -> list:
        """Sort tuples lexicographically with respect to this order."""
        return sorted(tuples, key=self.key)
