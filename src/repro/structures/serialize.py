"""Plain-text serialization for structures.

A tiny line-oriented format so databases can be shipped to the CLI,
checked into test fixtures, or exchanged with other tools::

    # comment lines start with '#'
    signature E/2 B/1
    domain 0 1 2 3
    #! version 7
    #! generation 1
    E 0 1
    E 1 2
    B 0

Element tokens are stored verbatim; on load they are parsed as ints when
possible, otherwise kept as strings.  Round-trips are exact for
structures whose elements are ints or strings without whitespace.

``#!`` lines are lineage directives: they persist ``Structure.version``
and ``Structure.generation`` so a reloaded structure resumes the exact
copy-on-write history position it was saved at (a reopened database must
never alias version pins or generation-tagged cache keys from its
pre-restart lineage).  To pre-directive parsers they are ordinary ``#``
comments, so the extension is backward- and forward-compatible.
"""

from __future__ import annotations

import hashlib
import io
from typing import Hashable, TextIO, Union

from repro.errors import ReproError
from repro.structures.signature import Signature
from repro.structures.structure import Structure

Element = Hashable


def _element_token(element: Element) -> str:
    token = str(element)
    if not token or any(ch.isspace() for ch in token):
        raise ReproError(
            f"element {element!r} cannot be serialized (empty/whitespace)"
        )
    return token


def _parse_token(token: str) -> Element:
    try:
        return int(token)
    except ValueError:
        return token


def dump(structure: Structure, stream: TextIO) -> None:
    """Write ``structure`` to a text stream."""
    symbols = " ".join(
        f"{symbol.name}/{symbol.arity}" for symbol in structure.signature
    )
    stream.write(f"signature {symbols}\n")
    stream.write(
        "domain " + " ".join(_element_token(e) for e in structure.domain) + "\n"
    )
    stream.write(f"#! version {structure.version}\n")
    stream.write(f"#! generation {structure.generation}\n")
    for name, fact in structure.iter_facts():
        stream.write(
            name + " " + " ".join(_element_token(e) for e in fact) + "\n"
        )


def dumps(structure: Structure) -> str:
    """Serialize to a string."""
    buffer = io.StringIO()
    dump(structure, buffer)
    return buffer.getvalue()


def fingerprint(structure: Structure) -> str:
    """Content hash of a structure (signature + domain + facts).

    Facts enter through an XOR accumulator of per-fact digests, so the
    hash is independent of insertion order, and element tokens use
    ``repr`` so elements the text format rejects (tuples, values with
    whitespace) still fingerprint.  Two structures with equal signature,
    domain order, and fact sets hash identically — the property
    ``repro.engine`` relies on for its pipeline cache keys.

    Amortized O(1): the accumulator is *rolling* — maintained by
    ``add_fact`` / ``remove_fact`` with one digest per update
    (:meth:`Structure.content_fingerprint`) — so fingerprinting after a
    dynamic update costs one sha256, not a walk over every fact.
    :func:`fingerprint_full` recomputes from scratch and must always
    agree (the incremental-fingerprint differential suite enforces it).
    """
    return structure.content_fingerprint()


def fingerprint_full(structure: Structure) -> str:
    """O(||A||) from-scratch recompute of :func:`fingerprint`.

    The differential oracle for the rolling accumulator: walks every
    fact of the *current* state without touching (or trusting) the
    structure's cached fingerprint state.
    """
    from repro.structures.structure import _FP_BYTES, _fact_digest

    header = hashlib.sha256()
    for symbol in structure.signature:
        header.update(f"{symbol.name}/{symbol.arity}".encode("utf-8"))
        header.update(b"\x1f")
    header.update(b"\x1e")
    for element in structure.domain:
        header.update(repr(element).encode("utf-8"))
        header.update(b"\x1f")
    header.update(b"\x1e")
    acc = 0
    for name, fact in structure.iter_facts():
        acc ^= _fact_digest(name, fact)
    return hashlib.sha256(
        header.digest() + acc.to_bytes(_FP_BYTES, "big")
    ).hexdigest()


def region_fingerprint(structure: Structure, elements) -> str:
    """Content hash of the substructure induced by ``elements``.

    Exactly :func:`fingerprint_full` restricted to a region: the header
    covers the kept elements in domain order, and only facts whose
    components all lie in the region enter the accumulator — so the
    result equals ``fingerprint(structure.induced_substructure(elements))``
    without materializing the substructure.  :mod:`repro.shard` uses this
    to identity per-shard pipeline caches against the full structure.
    """
    from repro.structures.structure import _FP_BYTES, _fact_digest

    kept = set(elements)
    header = hashlib.sha256()
    for symbol in structure.signature:
        header.update(f"{symbol.name}/{symbol.arity}".encode("utf-8"))
        header.update(b"\x1f")
    header.update(b"\x1e")
    for element in structure.domain:
        if element in kept:
            header.update(repr(element).encode("utf-8"))
            header.update(b"\x1f")
    header.update(b"\x1e")
    acc = 0
    for name, fact in structure.iter_facts():
        if all(component in kept for component in fact):
            acc ^= _fact_digest(name, fact)
    return hashlib.sha256(
        header.digest() + acc.to_bytes(_FP_BYTES, "big")
    ).hexdigest()


def load(stream: TextIO) -> Structure:
    """Read a structure from a text stream."""
    signature = None
    structure = None
    pending_facts = []
    lineage = {}
    for line_number, raw_line in enumerate(stream, start=1):
        line = raw_line.strip()
        if line.startswith("#!"):
            directive = line[2:].split()
            if (
                len(directive) == 2
                and directive[0] in ("version", "generation")
                and directive[1].isdigit()
            ):
                lineage[directive[0]] = int(directive[1])
            # Unknown directives are skipped like comments so newer
            # writers stay readable by this parser.
            continue
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        head, rest = tokens[0], tokens[1:]
        if head == "signature":
            arities = {}
            for chunk in rest:
                name, _, arity_text = chunk.partition("/")
                if not arity_text.isdigit():
                    raise ReproError(
                        f"line {line_number}: bad signature entry {chunk!r}"
                    )
                arities[name] = int(arity_text)
            signature = Signature(arities)
        elif head == "domain":
            if signature is None:
                raise ReproError(
                    f"line {line_number}: 'domain' before 'signature'"
                )
            structure = Structure(
                signature, [_parse_token(token) for token in rest]
            )
        else:
            pending_facts.append((line_number, head, rest))
    if structure is None:
        raise ReproError("missing 'signature' and/or 'domain' lines")
    for line_number, name, rest in pending_facts:
        if name not in structure.signature:
            raise ReproError(
                f"line {line_number}: unknown relation {name!r}"
            )
        structure.add_fact(name, *(_parse_token(token) for token in rest))
    if lineage:
        # Re-adding the facts above recounted versions from zero; adopt
        # the persisted lineage position instead.
        structure._restore_lineage(
            lineage.get("version", structure.version),
            lineage.get("generation", 0),
        )
    return structure


def loads(text: str) -> Structure:
    """Deserialize from a string."""
    return load(io.StringIO(text))


def save_file(structure: Structure, path: Union[str, "os.PathLike"]) -> None:
    """Write a structure to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        dump(structure, handle)


def load_file(path: Union[str, "os.PathLike"]) -> Structure:
    """Read a structure from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return load(handle)
