"""Low-degree class descriptors (Section 2.3).

A class ``C`` of structures has *low degree* if for every ``delta > 0``
there is an ``n_delta`` such that every ``A`` in ``C`` with
``|A| >= n_delta`` has ``degree(A) <= |A|^delta``.  The class is
*effective* when ``delta -> n_delta`` is computable — which is what lets
the paper's ``g(|q|, eps)`` constants be computable.

:class:`LowDegreeClass` materializes exactly this interface: a named class
with a computable threshold function, plus diagnostics that check concrete
structures against the definition.  The evaluator uses it (when provided)
to pick the ball radius / trie parameters from a requested ``eps``,
mirroring the proof of Proposition 3.3.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.structures.structure import Structure


class LowDegreeClass:
    """A (claimed) low-degree class of structures.

    Parameters
    ----------
    threshold:
        The function ``delta -> n_delta`` from the definition.  It must be
        monotonically non-increasing in precision: larger ``delta`` may
        return smaller thresholds.
    name:
        Human-readable name used in diagnostics.
    """

    def __init__(self, threshold: Callable[[float], int], name: str = "low-degree class"):
        self._threshold = threshold
        self.name = name

    def threshold(self, delta: float) -> int:
        """``n_delta``: the cardinality from which degree <= n^delta holds."""
        if delta <= 0:
            raise ValueError(f"delta must be > 0, got {delta}")
        return max(1, int(self._threshold(delta)))

    def admits(self, structure: Structure, delta: float) -> bool:
        """Check one structure against the definition for one ``delta``.

        Structures below the threshold are unconstrained ("all but finitely
        many"), so they are admitted unconditionally.
        """
        n = structure.cardinality
        if n < self.threshold(delta):
            return True
        return structure.degree <= n ** delta

    def violation(self, structure: Structure, delta: float) -> Optional[str]:
        """A human-readable description of a violation, or None."""
        if self.admits(structure, delta):
            return None
        return (
            f"{self.name}: structure with |A|={structure.cardinality} has "
            f"degree {structure.degree} > |A|^{delta} = "
            f"{structure.cardinality ** delta:.1f}"
        )

    def __repr__(self) -> str:
        return f"LowDegreeClass({self.name!r})"


def bounded_degree_class(d: int) -> LowDegreeClass:
    """The class of all structures of degree <= d (low degree, effective).

    ``degree <= d <= n^delta`` holds as soon as ``n >= d^(1/delta)``.
    """

    def threshold(delta: float) -> int:
        return int(math.ceil(d ** (1.0 / delta)))

    return LowDegreeClass(threshold, name=f"degree <= {d}")


def log_degree_class(power: float = 1.0) -> LowDegreeClass:
    """The class of structures of degree <= (log2 n)^power (low degree).

    ``(log2 n)^power <= n^delta`` holds for all n >= some computable
    threshold; we find it by doubling search.
    """

    def threshold(delta: float) -> int:
        n = 4
        while (math.log2(n)) ** power > n ** delta:
            n *= 2
            if n > 2 ** 60:  # pragma: no cover - defensive
                break
        return n

    return LowDegreeClass(threshold, name=f"degree <= (log n)^{power}")


def explicit_degree_check(structure: Structure, delta: float) -> bool:
    """Direct check ``degree(A) <= |A|^delta`` on a single structure."""
    return structure.degree <= structure.cardinality ** delta


def effective_epsilon_budget(
    low_degree_class: LowDegreeClass, eps: float, exponent_budget: int
) -> int:
    """The cardinality from which an ``O(n * d^exponent_budget)`` algorithm
    runs in ``O(n^{1+eps})`` over the class (proof of Proposition 3.3).

    The algorithm's degree exponent is ``exponent_budget`` (the paper's
    ``h(|q|)``); choosing ``delta = eps / exponent_budget`` makes
    ``d^exponent_budget <= n^eps`` for all structures of cardinality at
    least the returned threshold.
    """
    if eps <= 0:
        raise ValueError(f"eps must be > 0, got {eps}")
    if exponent_budget < 1:
        exponent_budget = 1
    delta = eps / exponent_budget
    return low_degree_class.threshold(delta)
