"""Relational-database substrate: signatures, structures, Gaifman graphs,
neighborhoods (Lemma 3.1), low-degree class descriptors, and seeded
workload generators."""

from repro.structures.gaifman_graph import (
    ball,
    ball_of_set,
    bounded_distance,
    degree_histogram,
    degree_profile,
    distances_from,
    tuple_is_connected,
    within_distance,
)
from repro.structures.low_degree import (
    LowDegreeClass,
    bounded_degree_class,
    effective_epsilon_budget,
    explicit_degree_check,
    log_degree_class,
)
from repro.structures.neighborhoods import NeighborhoodIndex
from repro.structures.random_gen import (
    cycle_graph,
    degree_bounded,
    degree_log,
    degree_power,
    grid_graph,
    low_degree_graph,
    padded_clique,
    random_bipartite,
    random_colored_graph,
    random_graph,
    random_structure,
)
from repro.structures.signature import RelationSymbol, Signature
from repro.structures.structure import Structure

__all__ = [
    "LowDegreeClass",
    "NeighborhoodIndex",
    "RelationSymbol",
    "Signature",
    "Structure",
    "ball",
    "ball_of_set",
    "bounded_degree_class",
    "bounded_distance",
    "cycle_graph",
    "degree_bounded",
    "degree_histogram",
    "degree_log",
    "degree_power",
    "degree_profile",
    "distances_from",
    "effective_epsilon_budget",
    "explicit_degree_check",
    "grid_graph",
    "log_degree_class",
    "low_degree_graph",
    "padded_clique",
    "random_bipartite",
    "random_colored_graph",
    "random_graph",
    "random_structure",
    "tuple_is_connected",
    "within_distance",
]
