"""Finite relational structures (databases), Section 2.1 of the paper.

A :class:`Structure` owns a domain with a fixed linear order (the RAM model
of Section 2.2 assumes one), a signature, and one set of tuples per relation
symbol.  The Gaifman graph, degree, and per-element adjacency are computed
lazily and cached; any mutation invalidates the caches.

Size conventions follow the paper:

* ``structure.cardinality`` is ``|A|``, the number of domain elements;
* ``structure.size`` is ``||A||``, i.e.
  ``|sigma| + |dom(A)| + sum_R |R^A| * ar(R)``.
"""

from __future__ import annotations

import hashlib
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import FrozenStructureError, GuardedStructureError, SignatureError
from repro.structures.signature import Signature
from repro.util.orderings import DomainOrder

Element = Hashable
Fact = Tuple[Element, ...]

_FP_BYTES = 32  # sha256 digest size; the rolling accumulator's word width


def _fact_digest(relation: str, fact: Fact) -> int:
    """A 256-bit hash of one fact record, XOR-combinable across facts.

    XOR makes the fact-set accumulator order-independent *and*
    self-inverse: inserting a fact and removing it apply the same
    operation, so a rolling accumulator needs exactly one digest per
    update — the O(1) maintenance :meth:`Structure.content_fingerprint`
    relies on.  Facts are sets (no duplicates), so the pairwise-cancel
    weakness of XOR hashing cannot trigger.
    """
    hasher = hashlib.sha256(relation.encode("utf-8"))
    for element in fact:
        hasher.update(b"\x1f")
        hasher.update(repr(element).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "big")


class Structure:
    """A finite relational structure over a fixed signature."""

    def __init__(
        self,
        signature: Signature,
        domain: Iterable[Element],
        relations: Optional[Mapping[str, Iterable[Sequence[Element]]]] = None,
    ):
        self.signature = signature
        self._domain: list = []
        self._domain_set: Set[Element] = set()
        for element in domain:
            if element not in self._domain_set:
                self._domain_set.add(element)
                self._domain.append(element)
        if not self._domain:
            raise ValueError("structures must have a non-empty domain")
        self._relations: Dict[str, Set[Fact]] = {
            symbol.name: set() for symbol in signature
        }
        self._version = 0
        # Fork-lineage counter: 0 at construction, parent + 1 on every
        # :meth:`fork`.  Together with ``version`` it names a state in the
        # copy-on-write history; the session layer keys its plan cache on
        # it so a restored database can never alias pre-restart entries.
        self._generation = 0
        self._caches_dirty = True
        # Snapshot machinery (repro.session): ``freeze()`` pins the fact
        # set forever; ``fork()`` marks relations as copy-on-write shared
        # with the fork, and the first mutation of a shared relation (on
        # either side) materializes a private set first.
        self._frozen = False
        self._cow_shared: Set[str] = set()
        # When a Database owns this structure it installs a guard message
        # here; direct add_fact/remove_fact then raise
        # GuardedStructureError instead of silently desynchronizing the
        # session's pinned readers and maintained pipelines.
        self._write_guard: Optional[str] = None
        # Rolling content-fingerprint state (initialized lazily by
        # content_fingerprint(); None = not yet demanded).  The header
        # digest covers signature + domain, which never mutate after
        # construction; the accumulator XORs one digest per fact and is
        # maintained in O(1) by add_fact/remove_fact.
        self._fp_header: Optional[bytes] = None
        self._fp_acc: Optional[int] = None
        self._adjacency: Dict[Element, Set[Element]] = {}
        # How many facts witness each Gaifman edge (keyed by the unordered
        # element pair); lets mutations update adjacency incrementally.
        self._edge_support: Dict[FrozenSet[Element], int] = {}
        self._order: Optional[DomainOrder] = None
        if relations:
            for name, facts in relations.items():
                for fact in facts:
                    self.add_fact(name, *fact)

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------

    def _check_mutable(self) -> None:
        if self._frozen:
            raise FrozenStructureError(
                "this structure is frozen (it backs a pinned snapshot); "
                "mutate the live database head instead"
            )
        if self._write_guard is not None:
            raise GuardedStructureError(self._write_guard)

    def _materialize_relation(self, relation: str) -> None:
        """Copy-on-write: give this side a private fact set before writing."""
        if relation in self._cow_shared:
            self._relations[relation] = set(self._relations[relation])
            self._cow_shared.discard(relation)

    def add_fact(self, relation: str, *elements: Element) -> None:
        """Insert the fact ``relation(elements...)``.

        Raises :class:`SignatureError` on arity mismatch or unknown symbol,
        :class:`ValueError` if an element is outside the domain, and
        :class:`FrozenStructureError` on a frozen snapshot structure.
        """
        self._check_mutable()
        symbol = self.signature.symbol(relation)
        if len(elements) != symbol.arity:
            raise SignatureError(
                f"{relation} has arity {symbol.arity}, got {len(elements)} arguments"
            )
        for element in elements:
            if element not in self._domain_set:
                raise ValueError(f"element {element!r} is not in the domain")
        fact = tuple(elements)
        if fact not in self._relations[relation]:
            self._materialize_relation(relation)
            self._relations[relation].add(fact)
            self._version += 1
            if self._fp_acc is not None:
                self._fp_acc ^= _fact_digest(relation, fact)
            if not self._caches_dirty:
                self._support_fact(fact, +1)

    def remove_fact(self, relation: str, *elements: Element) -> None:
        """Remove a fact; silently ignores absent facts."""
        self._check_mutable()
        symbol = self.signature.symbol(relation)
        if len(elements) != symbol.arity:
            raise SignatureError(
                f"{relation} has arity {symbol.arity}, got {len(elements)} arguments"
            )
        fact = tuple(elements)
        if fact in self._relations[relation]:
            self._materialize_relation(relation)
            self._relations[relation].discard(fact)
            self._version += 1
            if self._fp_acc is not None:
                self._fp_acc ^= _fact_digest(relation, fact)
            if not self._caches_dirty:
                self._support_fact(fact, -1)

    def _support_fact(self, fact: Fact, delta: int) -> None:
        """Incrementally maintain the Gaifman adjacency for one fact."""
        distinct = set(fact)
        if len(distinct) < 2:
            return
        ordered = list(distinct)
        for i, left in enumerate(ordered):
            for right in ordered[i + 1 :]:
                key = frozenset((left, right))
                support = self._edge_support.get(key, 0) + delta
                if support <= 0:
                    self._edge_support.pop(key, None)
                    self._adjacency[left].discard(right)
                    self._adjacency[right].discard(left)
                else:
                    self._edge_support[key] = support
                    if delta > 0 and support == 1:
                        self._adjacency[left].add(right)
                        self._adjacency[right].add(left)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def domain(self) -> Sequence[Element]:
        """The domain in its fixed linear order (do not mutate)."""
        return self._domain

    @property
    def order(self) -> DomainOrder:
        """The linear order on the domain (Section 2.2)."""
        if self._order is None or self._caches_dirty:
            self._order = DomainOrder(self._domain)
        return self._order

    def __contains__(self, element: Element) -> bool:
        return element in self._domain_set

    @property
    def version(self) -> int:
        """Mutation counter: bumped on every effective fact change.

        Lets long-lived handles (e.g. ``repro.engine`` result handles)
        detect that the structure moved on under them without rehashing
        the whole fact set.
        """
        return self._version

    @property
    def generation(self) -> int:
        """Fork-lineage counter: 0 at construction, parent + 1 per fork."""
        return self._generation

    def _restore_lineage(self, version: int, generation: int) -> None:
        """Adopt a persisted ``(version, generation)`` lineage position.

        Only for deserialization/recovery (:mod:`repro.structures.serialize`,
        :mod:`repro.storage.wal`): a freshly loaded structure re-counted its
        versions while re-adding facts, which would let a reopened database
        alias version pins and generation-tagged cache keys from the
        pre-restart lineage.  The persisted position is authoritative in
        both directions — it may be *below* the re-count (``copy()`` resets
        the counter without clearing facts, so a dumped structure can carry
        more facts than version ticks).
        """
        if version < 0 or generation < 0:
            raise ValueError(
                f"cannot restore a negative lineage ({version}, {generation})"
            )
        self._version = version
        self._generation = generation

    @property
    def cardinality(self) -> int:
        """``|A|``: the number of domain elements."""
        return len(self._domain)

    # ------------------------------------------------------------------
    # Snapshot support: freezing and copy-on-write forking
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` pinned this structure's fact set."""
        return self._frozen

    def freeze(self) -> None:
        """Pin the fact set: every later mutation raises
        :class:`~repro.errors.FrozenStructureError`.  Irreversible — a
        frozen structure backs snapshot reads that must stay
        byte-identical forever; evolve the data through :meth:`fork`.
        """
        self._frozen = True

    def fork(self) -> "Structure":
        """A mutable copy-on-write fork sharing this structure's fact sets.

        O(#relations): both sides keep the same per-relation ``set``
        objects, marked shared; the first mutation of a shared relation
        (on either side) copies just that relation.  The domain (fixed
        after construction) and the rolling-fingerprint state are shared
        or copied cheaply, so fingerprinting the fork stays O(1) per
        later update.  The fork continues this structure's version
        lineage — its counter starts where the parent's stands, so every
        post-fork mutation yields a version the parent never had.
        Derived caches (Gaifman adjacency) rebuild lazily on the fork.
        """
        clone = Structure.__new__(Structure)
        clone.signature = self.signature
        clone._domain = self._domain  # fixed after construction; shared
        clone._domain_set = self._domain_set
        clone._relations = dict(self._relations)
        shared = set(self._relations)
        self._cow_shared |= shared
        clone._cow_shared = set(shared)
        clone._version = self._version
        clone._generation = self._generation + 1
        clone._caches_dirty = True
        clone._frozen = False
        # The fork starts unguarded — the session that forked it applies
        # the commit's ops before reinstating the guard on the new head.
        clone._write_guard = None
        clone._fp_header = self._fp_header
        clone._fp_acc = self._fp_acc
        clone._adjacency = {}
        clone._edge_support = {}
        clone._order = self._order
        return clone

    # ------------------------------------------------------------------
    # Content fingerprint (rolling)
    # ------------------------------------------------------------------

    def _header_digest(self) -> bytes:
        if self._fp_header is None:
            hasher = hashlib.sha256()
            for symbol in self.signature:
                hasher.update(f"{symbol.name}/{symbol.arity}".encode("utf-8"))
                hasher.update(b"\x1f")
            hasher.update(b"\x1e")
            for element in self._domain:
                hasher.update(repr(element).encode("utf-8"))
                hasher.update(b"\x1f")
            hasher.update(b"\x1e")
            self._fp_header = hasher.digest()
        return self._fp_header

    def content_fingerprint(self) -> str:
        """Content hash of the structure, maintained in O(1) per update.

        The fact set enters as an XOR accumulator of per-fact digests
        (:func:`_fact_digest`) — insertion-order independent, and updated
        with a single digest by :meth:`add_fact` / :meth:`remove_fact`
        once initialized — combined with a one-time header digest over
        signature and domain (immutable after construction).  The first
        call walks every fact (O(||A||)); every later call is O(1), so
        fingerprint-keyed caches (:mod:`repro.engine.cache`) survive
        tiny-update streams without rehashing the whole structure.
        Equal to :func:`repro.structures.serialize.fingerprint_full` by
        construction — the differential suite enforces it.
        """
        if self._fp_acc is None:
            acc = 0
            for name, facts in self._relations.items():
                for fact in facts:
                    acc ^= _fact_digest(name, fact)
            self._fp_acc = acc
        return hashlib.sha256(
            self._header_digest() + self._fp_acc.to_bytes(_FP_BYTES, "big")
        ).hexdigest()

    @property
    def size(self) -> int:
        """``||A||``: signature + domain + sum of relation sizes times arity."""
        relation_weight = sum(
            len(facts) * self.signature.arity(name)
            for name, facts in self._relations.items()
        )
        return len(self.signature) + len(self._domain) + relation_weight

    def facts(self, relation: str) -> FrozenSet[Fact]:
        """All tuples of the given relation (direct access, Section 2.1)."""
        if relation not in self._relations:
            raise SignatureError(f"unknown relation symbol {relation!r}")
        return frozenset(self._relations[relation])

    def has_fact(self, relation: str, *elements: Element) -> bool:
        """Naive membership test (the Storing-Theorem index is in storage/)."""
        if relation not in self._relations:
            raise SignatureError(f"unknown relation symbol {relation!r}")
        return tuple(elements) in self._relations[relation]

    def relation_names(self) -> Tuple[str, ...]:
        return self.signature.names()

    def iter_facts(self) -> Iterator[Tuple[str, Fact]]:
        """Iterate over all facts as ``(relation_name, tuple)`` pairs."""
        for name in self.signature.names():
            for fact in sorted(self._relations[name], key=self._fact_key):
                yield name, fact

    def _fact_key(self, fact: Fact):
        order = self.order
        return tuple(order.rank(element) for element in fact)

    # ------------------------------------------------------------------
    # Gaifman graph (Section 2.1)
    # ------------------------------------------------------------------

    def _rebuild_adjacency(self) -> None:
        self._adjacency = {element: set() for element in self._domain}
        self._edge_support = {}
        self._order = DomainOrder(self._domain)
        self._caches_dirty = False
        for facts in self._relations.values():
            for fact in facts:
                self._support_fact(fact, +1)

    def neighbors(self, element: Element) -> Set[Element]:
        """Gaifman-graph neighbors of ``element`` (excluding itself).

        The returned set is live — do not mutate it.
        """
        if self._caches_dirty:
            self._rebuild_adjacency()
        return self._adjacency[element]

    @property
    def degree(self) -> int:
        """degree(A): maximum degree of the Gaifman graph."""
        if self._caches_dirty:
            self._rebuild_adjacency()
        return max((len(neighbors) for neighbors in self._adjacency.values()), default=0)

    def adjacency(self) -> Mapping[Element, Set[Element]]:
        """The full Gaifman adjacency map (element -> live neighbor set)."""
        if self._caches_dirty:
            self._rebuild_adjacency()
        return self._adjacency

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def restrict_signature(self, names: Iterable[str]) -> "Structure":
        """The reduct ``A|q``: same domain, only the given relations.

        Used by Lemma 3.1: neighborhoods are computed in the reduct of A to
        the relation symbols occurring in the query.
        """
        wanted = [name for name in names if name in self.signature]
        restricted = Structure(self.signature.restrict(wanted), self._domain)
        for name in wanted:
            restricted._relations[name] = set(self._relations[name])
        restricted._caches_dirty = True
        return restricted

    def induced_substructure(self, elements: Iterable[Element]) -> "Structure":
        """The substructure induced on ``elements`` (kept in domain order)."""
        kept = set(elements)
        for element in kept:
            if element not in self._domain_set:
                raise ValueError(f"element {element!r} is not in the domain")
        ordered = [element for element in self._domain if element in kept]
        sub = Structure(self.signature, ordered)
        for name, facts in self._relations.items():
            sub._relations[name] = {
                fact for fact in facts if all(component in kept for component in fact)
            }
        sub._caches_dirty = True
        return sub

    def copy(self) -> "Structure":
        clone = Structure(self.signature, self._domain)
        for name, facts in self._relations.items():
            clone._relations[name] = set(facts)
        clone._caches_dirty = True
        return clone

    def __repr__(self) -> str:
        fact_count = sum(len(facts) for facts in self._relations.values())
        return (
            f"Structure(|A|={self.cardinality}, facts={fact_count}, "
            f"signature={self.signature!r})"
        )
