"""Standalone Gaifman-graph computations (Section 2.1).

:class:`repro.structures.structure.Structure` exposes cached adjacency; this
module adds graph-level queries needed throughout the pipeline: bounded
distance, bounded BFS, connectivity of small vertex sets, and degree
histograms for the low-degree diagnostics.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.structures.structure import Structure

Element = Hashable
INFINITY = float("inf")


def bounded_distance(structure: Structure, source: Element, target: Element, bound: int):
    """Distance between two elements if it is <= ``bound``, else ``None``.

    Runs a BFS from ``source`` cut off at depth ``bound``; cost is
    ``O(d^bound)`` for degree ``d``, independent of ``|A|``.
    """
    if source == target:
        return 0
    if bound <= 0:
        return None
    seen = {source}
    frontier = [source]
    for depth in range(1, bound + 1):
        next_frontier: List[Element] = []
        for element in frontier:
            for neighbor in structure.neighbors(element):
                if neighbor == target:
                    return depth
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        if not next_frontier:
            return None
        frontier = next_frontier
    return None


def within_distance(
    structure: Structure, source: Element, target: Element, bound: int
) -> bool:
    """True iff ``dist(source, target) <= bound`` in the Gaifman graph."""
    return bounded_distance(structure, source, target, bound) is not None


def ball(structure: Structure, center: Element, radius: int) -> Set[Element]:
    """The r-ball ``N_r(center)``: all elements at distance <= radius."""
    members = {center}
    frontier = [center]
    for _ in range(radius):
        next_frontier: List[Element] = []
        for element in frontier:
            for neighbor in structure.neighbors(element):
                if neighbor not in members:
                    members.add(neighbor)
                    next_frontier.append(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return members


def ball_of_set(structure: Structure, centers: Iterable[Element], radius: int) -> Set[Element]:
    """The union of r-balls around all ``centers``."""
    members: Set[Element] = set(centers)
    frontier = list(members)
    for _ in range(radius):
        next_frontier: List[Element] = []
        for element in frontier:
            for neighbor in structure.neighbors(element):
                if neighbor not in members:
                    members.add(neighbor)
                    next_frontier.append(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return members


def distances_from(structure: Structure, source: Element, bound: int) -> Dict[Element, int]:
    """Map every element within ``bound`` of ``source`` to its distance."""
    distances = {source: 0}
    queue = deque([source])
    while queue:
        element = queue.popleft()
        depth = distances[element]
        if depth == bound:
            continue
        for neighbor in structure.neighbors(element):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return distances


def tuple_is_connected(
    structure: Structure, elements: Sequence[Element], link_radius: int
) -> bool:
    """True iff the graph on ``elements`` with edges ``dist <= link_radius`` is connected.

    This is the paper's ``gamma_Pj`` condition (Section 4, Step 2): the
    r-neighborhood around a cluster tuple is connected exactly when the
    tuple's components form a connected graph at linking distance
    ``2r + 1``.
    """
    if not elements:
        return True
    distinct = list(dict.fromkeys(elements))
    remaining = set(distinct[1:])
    frontier = [distinct[0]]
    while frontier and remaining:
        element = frontier.pop()
        linked = [
            other
            for other in remaining
            if within_distance(structure, element, other, link_radius)
        ]
        for other in linked:
            remaining.discard(other)
            frontier.append(other)
    return not remaining


def connected_components(structure: Structure) -> List[Tuple[Element, ...]]:
    """The Gaifman graph's connected components, deterministically ordered.

    Components are discovered by BFS seeded in domain order (so the list
    order depends only on the structure's content, never on hash seeds)
    and each component is itself sorted by the domain order.  This is
    the partitioning substrate of :mod:`repro.shard`: elements in
    different components are at Gaifman distance infinity, so by locality
    they can never co-occur in one answer cluster or one r-ball — a
    component is the unit that may be moved to a shard wholesale.
    """
    seen: Set[Element] = set()
    components: List[Tuple[Element, ...]] = []
    rank = structure.order.rank
    for element in structure.domain:
        if element in seen:
            continue
        seen.add(element)
        members = [element]
        queue = deque((element,))
        while queue:
            current = queue.popleft()
            for neighbor in structure.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    members.append(neighbor)
                    queue.append(neighbor)
        components.append(tuple(sorted(members, key=rank)))
    return components


def degree_histogram(structure: Structure) -> Dict[int, int]:
    """Map each occurring Gaifman degree to the number of elements having it."""
    histogram: Dict[int, int] = {}
    for element in structure.domain:
        degree = len(structure.neighbors(element))
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def degree_profile(structure: Structure) -> Tuple[int, float]:
    """Return ``(max_degree, average_degree)`` of the Gaifman graph."""
    degrees = [len(structure.neighbors(element)) for element in structure.domain]
    if not degrees:
        return 0, 0.0
    return max(degrees), sum(degrees) / len(degrees)
