"""Seeded generators for low-degree structure classes (Section 2.3).

The paper's examples of low-degree classes are: structures of bounded
degree, structures of degree at most ``(log n)^c``, and arbitrary classes
padded with isolated elements (e.g. padded cliques — low degree but not
nowhere dense).  Every generator here is deterministic given its seed and
returns a :class:`~repro.structures.structure.Structure`.

Degree budgets are enforced exactly: generated structures satisfy
``degree(A) <= max_degree`` by construction.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.structures.signature import Signature
from repro.structures.structure import Structure

Element = Hashable

GRAPH_SIGNATURE = Signature.of(E=2)


def degree_bounded(constant: int) -> Callable[[int], int]:
    """Degree schedule ``d(n) = constant`` (a bounded-degree class)."""
    return lambda n: constant


def degree_log(power: float = 1.0, floor: int = 2) -> Callable[[int], int]:
    """Degree schedule ``d(n) = max(floor, (log2 n)^power)`` — low degree."""
    return lambda n: max(floor, int(math.log2(max(n, 2)) ** power))


def degree_power(exponent: float, floor: int = 2) -> Callable[[int], int]:
    """Degree schedule ``d(n) = max(floor, n^exponent)``.

    For ``exponent = delta`` fixed this is *not* a low-degree class, but it
    is exactly what the degree-sweep experiment (E6) needs to show where
    pseudo-linearity degrades.
    """
    return lambda n: max(floor, int(round(n ** exponent)))


def _bounded_degree_edges(
    n: int, max_degree: int, target_edges: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """Sample simple edges on ``range(n)`` with every degree <= max_degree."""
    degrees = [0] * n
    edges: set = set()
    attempts = 0
    max_attempts = 20 * target_edges + 100
    while len(edges) < target_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if degrees[u] >= max_degree or degrees[v] >= max_degree:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge in edges:
            continue
        edges.add(edge)
        degrees[u] += 1
        degrees[v] += 1
    return sorted(edges)


def random_graph(
    n: int,
    max_degree: int = 4,
    edge_density: float = 0.8,
    seed: int = 0,
    symmetric: bool = True,
) -> Structure:
    """A random graph on ``n`` vertices with Gaifman degree <= ``max_degree``.

    ``edge_density`` scales the number of edges relative to the maximum
    ``n * max_degree / 2`` allowed by the degree budget.  With
    ``symmetric=True`` both orientations of every edge are stored in ``E``
    (the Gaifman graph is undirected either way).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = random.Random(seed)
    target_edges = int(edge_density * n * max_degree / 2)
    edges = _bounded_degree_edges(n, max_degree, target_edges, rng)
    structure = Structure(GRAPH_SIGNATURE, range(n))
    for u, v in edges:
        structure.add_fact("E", u, v)
        if symmetric:
            structure.add_fact("E", v, u)
    return structure


def random_colored_graph(
    n: int,
    max_degree: int = 4,
    colors: Sequence[str] = ("B", "R"),
    color_probability: float = 0.5,
    edge_density: float = 0.8,
    seed: int = 0,
    symmetric: bool = True,
) -> Structure:
    """A random graph with unary color predicates.

    Each vertex independently gets each color with ``color_probability``.
    This is the workload family of the paper's running Example 2.3
    ("pairs of a blue and a red node not linked by an edge").
    """
    rng = random.Random(seed ^ 0x5EED)
    base = random_graph(
        n,
        max_degree=max_degree,
        edge_density=edge_density,
        seed=seed,
        symmetric=symmetric,
    )
    signature = base.signature.extend({color: 1 for color in colors})
    colored = Structure(signature, base.domain)
    for u, v in base.facts("E"):
        colored.add_fact("E", u, v)
    for vertex in colored.domain:
        for color in colors:
            if rng.random() < color_probability:
                colored.add_fact(color, vertex)
    return colored


def low_degree_graph(
    n: int,
    degree_schedule: Optional[Callable[[int], int]] = None,
    colors: Sequence[str] = ("B", "R"),
    seed: int = 0,
) -> Structure:
    """A colored graph whose degree follows ``degree_schedule(n)``
    (default: :func:`degree_log`)."""
    if degree_schedule is None:
        degree_schedule = degree_log()
    return random_colored_graph(
        n, max_degree=degree_schedule(n), colors=colors, seed=seed
    )


def padded_clique(
    clique_size: int,
    total_size: int,
    colors: Sequence[str] = (),
    seed: int = 0,
) -> Structure:
    """A clique of ``clique_size`` vertices padded with isolated elements.

    Section 2.3: padding an arbitrary class with isolated elements yields a
    low-degree class; padded cliques are low degree but *not* nowhere dense,
    which separates this paper's setting from [GKS17].  The class is low
    degree as long as ``clique_size <= total_size^delta``.
    """
    if clique_size > total_size:
        raise ValueError("clique_size must be <= total_size")
    rng = random.Random(seed)
    signature = GRAPH_SIGNATURE.extend({color: 1 for color in colors})
    structure = Structure(signature, range(total_size))
    for u in range(clique_size):
        for v in range(clique_size):
            if u != v:
                structure.add_fact("E", u, v)
    for vertex in range(total_size):
        for color in colors:
            if rng.random() < 0.5:
                structure.add_fact(color, vertex)
    return structure


def cycle_graph(n: int, colors: Sequence[str] = (), seed: int = 0) -> Structure:
    """A deterministic 2-regular cycle, optionally randomly colored."""
    rng = random.Random(seed)
    signature = GRAPH_SIGNATURE.extend({color: 1 for color in colors})
    structure = Structure(signature, range(n))
    for u in range(n):
        v = (u + 1) % n
        if u != v:
            structure.add_fact("E", u, v)
            structure.add_fact("E", v, u)
    for vertex in range(n):
        for color in colors:
            if rng.random() < 0.5:
                structure.add_fact(color, vertex)
    return structure


def grid_graph(rows: int, cols: int, colors: Sequence[str] = (), seed: int = 0) -> Structure:
    """A rows x cols grid (degree <= 4), optionally randomly colored."""
    rng = random.Random(seed)
    signature = GRAPH_SIGNATURE.extend({color: 1 for color in colors})
    vertices = [(r, c) for r in range(rows) for c in range(cols)]
    structure = Structure(signature, vertices)
    for r, c in vertices:
        for dr, dc in ((0, 1), (1, 0)):
            nr, nc = r + dr, c + dc
            if nr < rows and nc < cols:
                structure.add_fact("E", (r, c), (nr, nc))
                structure.add_fact("E", (nr, nc), (r, c))
    for vertex in vertices:
        for color in colors:
            if rng.random() < 0.5:
                structure.add_fact(color, vertex)
    return structure


def random_structure(
    signature: Signature,
    n: int,
    max_degree: int = 4,
    facts_per_relation: Optional[int] = None,
    seed: int = 0,
) -> Structure:
    """A random structure over an arbitrary signature with bounded degree.

    Facts are sampled uniformly but rejected whenever they would push the
    Gaifman degree of any participating element above ``max_degree``.  Used
    by tests to exercise non-binary signatures through the whole pipeline.
    """
    rng = random.Random(seed)
    structure = Structure(signature, range(n))
    gaifman_degree: Dict[Element, int] = {element: 0 for element in range(n)}
    neighbor_sets: Dict[Element, set] = {element: set() for element in range(n)}
    for symbol in signature:
        budget = facts_per_relation
        if budget is None:
            budget = max(1, n // max(1, symbol.arity))
        attempts = 0
        added = 0
        while added < budget and attempts < 20 * budget + 50:
            attempts += 1
            fact = tuple(rng.randrange(n) for _ in range(symbol.arity))
            distinct = set(fact)
            ok = True
            for element in distinct:
                new_neighbors = distinct - {element} - neighbor_sets[element]
                if gaifman_degree[element] + len(new_neighbors) > max_degree:
                    ok = False
                    break
            if not ok:
                continue
            if structure.has_fact(symbol.name, *fact):
                continue
            structure.add_fact(symbol.name, *fact)
            for element in distinct:
                new_neighbors = distinct - {element} - neighbor_sets[element]
                neighbor_sets[element] |= new_neighbors
                gaifman_degree[element] += len(new_neighbors)
            added += 1
    return structure


def random_bipartite(
    n_left: int,
    n_right: int,
    max_degree: int = 4,
    seed: int = 0,
) -> Structure:
    """A bipartite graph with unary predicates L and R marking the sides."""
    rng = random.Random(seed)
    signature = Signature.of(E=2, L=1, R=1)
    total = n_left + n_right
    structure = Structure(signature, range(total))
    for u in range(n_left):
        structure.add_fact("L", u)
    for v in range(n_left, total):
        structure.add_fact("R", v)
    degrees = [0] * total
    target = int(0.8 * min(n_left, n_right) * max_degree)
    attempts = 0
    edges = set()
    while len(edges) < target and attempts < 20 * target + 50:
        attempts += 1
        u = rng.randrange(n_left)
        v = n_left + rng.randrange(n_right)
        if degrees[u] >= max_degree or degrees[v] >= max_degree or (u, v) in edges:
            continue
        edges.add((u, v))
        degrees[u] += 1
        degrees[v] += 1
    for u, v in sorted(edges):
        structure.add_fact("E", u, v)
        structure.add_fact("E", v, u)
    return structure
