"""Neighborhood computation, Lemma 3.1 of the paper.

``NeighborhoodIndex`` computes, for every element ``a`` of the input
structure, the r-ball ``N_r(a)`` (a set) and on demand the r-neighborhood
``N_r(a)`` as an induced substructure.  The computation follows Lemma 3.1:
build the Gaifman graph of the reduct to the query's relation symbols, then
run ``r`` rounds of frontier expansion, for a total cost of
``O(|q| * n * d^{h(r)})``.

All balls are precomputed eagerly (that is the paper's algorithm and it
keeps later phases allocation-free); induced neighborhoods are materialized
lazily because only cluster evaluation needs them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Sequence, Set

from repro.structures.structure import Structure

Element = Hashable


class NeighborhoodIndex:
    """Precomputed r-balls for every element of a structure.

    Parameters
    ----------
    structure:
        The input structure ``A`` (or already a reduct ``A|q``).
    radius:
        The ball radius ``r``; must be >= 0.
    relation_names:
        If given, balls are computed in the reduct of ``structure`` to
        these relations (Lemma 3.1 computes ``N_r^{A|q}``).
    """

    def __init__(
        self,
        structure: Structure,
        radius: int,
        relation_names: Optional[Iterable[str]] = None,
    ):
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self.structure = structure
        self.radius = radius
        if relation_names is not None:
            self._reduct = structure.restrict_signature(relation_names)
        else:
            self._reduct = structure
        self._balls: Dict[Element, FrozenSet[Element]] = {}
        self._neighborhood_cache: Dict[Element, Structure] = {}
        self._compute_all_balls()

    def _compute_all_balls(self) -> None:
        reduct = self._reduct
        if self.radius == 0:
            for element in reduct.domain:
                self._balls[element] = frozenset((element,))
            return
        # One BFS per element; total O(n * d^r) as in Lemma 3.1.
        for element in reduct.domain:
            members: Set[Element] = {element}
            frontier = [element]
            for _ in range(self.radius):
                next_frontier = []
                for current in frontier:
                    for neighbor in reduct.neighbors(current):
                        if neighbor not in members:
                            members.add(neighbor)
                            next_frontier.append(neighbor)
                if not next_frontier:
                    break
                frontier = next_frontier
            self._balls[element] = frozenset(members)

    # ------------------------------------------------------------------

    def ball(self, element: Element) -> FrozenSet[Element]:
        """``N_r(a)`` as a frozenset."""
        return self._balls[element]

    def ball_of_tuple(self, elements: Sequence[Element]) -> FrozenSet[Element]:
        """``N_r(a-bar)``: union of the component balls."""
        result: Set[Element] = set()
        for element in elements:
            result |= self._balls[element]
        return frozenset(result)

    def within(self, left: Element, right: Element) -> bool:
        """True iff ``dist(left, right) <= radius``.

        Constant-time via the precomputed balls (this is the relation ``R``
        of the paper's Step 5, realized as set membership).
        """
        return right in self._balls[left]

    def neighborhood(self, element: Element) -> Structure:
        """The induced substructure on ``N_r(element)`` (cached)."""
        cached = self._neighborhood_cache.get(element)
        if cached is None:
            cached = self._reduct.induced_substructure(self._balls[element])
            self._neighborhood_cache[element] = cached
        return cached

    def neighborhood_of_tuple(self, elements: Sequence[Element]) -> Structure:
        """The induced substructure on ``N_r(a-bar)`` (not cached)."""
        return self._reduct.induced_substructure(self.ball_of_tuple(elements))

    @property
    def reduct(self) -> Structure:
        return self._reduct

    def max_ball_size(self) -> int:
        return max((len(ball) for ball in self._balls.values()), default=0)
