"""Relational signatures (Section 2.1 of the paper).

A signature is a finite set of relation symbols, each with a fixed arity
>= 1.  Signatures are immutable; structures validate facts against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

from repro.errors import SignatureError


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation symbol with a name and arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise SignatureError(
                f"relation {self.name!r} must have arity >= 1, got {self.arity}"
            )
        if not self.name:
            raise SignatureError("relation symbols need a non-empty name")

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Signature:
    """An immutable finite set of relation symbols, indexed by name."""

    __slots__ = ("_symbols",)

    def __init__(self, symbols: Union[Iterable[RelationSymbol], Mapping[str, int]]):
        by_name: Dict[str, RelationSymbol] = {}
        if isinstance(symbols, Mapping):
            symbols = [RelationSymbol(name, arity) for name, arity in symbols.items()]
        for symbol in symbols:
            if symbol.name in by_name and by_name[symbol.name] != symbol:
                raise SignatureError(
                    f"conflicting arities for relation {symbol.name!r}: "
                    f"{by_name[symbol.name].arity} vs {symbol.arity}"
                )
            by_name[symbol.name] = symbol
        self._symbols: Dict[str, RelationSymbol] = dict(
            sorted(by_name.items())
        )

    @classmethod
    def of(cls, **arities: int) -> "Signature":
        """Convenience constructor: ``Signature.of(E=2, B=1)``."""
        return cls(arities)

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._symbols.values())

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(tuple(self._symbols.values()))

    def __repr__(self) -> str:
        inner = ", ".join(str(symbol) for symbol in self)
        return f"Signature({inner})"

    def symbol(self, name: str) -> RelationSymbol:
        try:
            return self._symbols[name]
        except KeyError:
            raise SignatureError(f"unknown relation symbol {name!r}") from None

    def arity(self, name: str) -> int:
        return self.symbol(name).arity

    def names(self) -> Tuple[str, ...]:
        return tuple(self._symbols)

    @property
    def max_arity(self) -> int:
        return max((symbol.arity for symbol in self), default=0)

    def restrict(self, names: Iterable[str]) -> "Signature":
        """The sub-signature containing only the given relation names."""
        wanted = set(names)
        return Signature(
            [symbol for symbol in self if symbol.name in wanted]
        )

    def extend(self, other: Union["Signature", Mapping[str, int]]) -> "Signature":
        """A new signature with the symbols of both (arities must agree)."""
        if isinstance(other, Mapping):
            other = Signature(other)
        return Signature(list(self) + list(other))

    def is_binary(self) -> bool:
        """True if every relation has arity <= 2 (a *colored graph* signature)."""
        return self.max_arity <= 2
