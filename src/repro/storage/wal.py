"""Durable storage for session databases: snapshot + changeset WAL.

The paper's bargain is a heavy preprocessing phase bought once so that
enumeration is constant-delay forever after — which makes losing that
investment to a process restart especially galling.  :class:`DurableStore`
makes a :class:`repro.session.Database` restartable with the classic
snapshot-plus-write-ahead-log design:

``MANIFEST.json``
    Points at the current snapshot and records its lineage position
    (version, generation) and content fingerprint.  Swapped atomically
    (write to a temp file, fsync, ``os.replace``), so a crash during
    checkpoint leaves either the old or the new manifest — never a torn
    one.

``wal.00001.jsonl``, ``wal.00002.jsonl``, …
    The write-ahead log, segmented so a busy tail never outgrows one
    file: appends roll to a fresh segment once the active one passes
    ``segment_bytes``.  Each line is one JSON record per committed
    changeset — the PR 5 JSONL changeset format, framed with the
    commit's version interval and a CRC so a torn tail is detectable.
    Appends are flushed and fsync'd *before* the commit is acknowledged;
    recovery replays every intact record past the snapshot across all
    segments in order and truncates at the first torn record (an
    unacknowledged commit, by construction).  A checkpoint retires
    whole segments.  A pre-segmentation ``wal.jsonl`` is still read
    (oldest first) for stores written by earlier builds.

``warm-<version>.pickle``
    Optional spill of the warm pipeline cache (preprocessing output) so
    a reopened database answers its first query without re-running
    Proposition 3.4.  Strictly an accelerator: it is validated against
    the manifest lineage and silently ignored when stale or unreadable.
    Since format 2 the spill is *incremental*: each cached pipeline is
    pickled into its own blob (with the head structure factored out via
    a pickle persistent id), and a checkpoint re-pickles only the plans
    whose durable state changed since the last one — clean plans reuse
    their previous blob byte-for-byte.

The crash-safety contract: a commit is durable once ``db.apply()`` /
``Transaction.commit()`` returns.  Kill the process at any byte of any
WAL segment and :meth:`repro.session.Database.open` restores exactly the
acknowledged prefix of commits — fingerprint- and answer-identical to
the pre-crash state.

Replication readers use the *read-only* surface — :meth:`load_snapshot`
and :meth:`records_since` — which never truncates, rotates, or otherwise
mutates the directory: a follower may tail a leader's live store without
racing its appends.

Named crash points (:func:`repro.util.faults.crash_point`) mark the
moments where a process death is most damaging — ``wal.append.before`` /
``wal.append.torn`` / ``wal.append.after-sync``, ``checkpoint.
after-snapshot`` / ``checkpoint.after-manifest`` / ``checkpoint.done`` —
so the fault-injection suite can kill a store at each of them and prove
recovery.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import re
import warnings
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import DurabilityError, DurabilityWarning
from repro.structures import serialize
from repro.structures.structure import Structure
from repro.util.faults import crash_point

Element = Hashable
UpdateOp = Tuple[bool, str, Tuple[Element, ...]]

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.jsonl"  # pre-segmentation log, still read for old stores
FORMAT_VERSION = 1
WARM_FORMAT = 2
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^wal\.(\d{5,})\.jsonl$")


def segment_name(index: int) -> str:
    return f"wal.{index:05d}.jsonl"


def _decode_element(value):
    """JSON round-trip for elements: lists come back as tuples.

    Structure elements must be hashable; JSON has no tuple, so tuple
    elements (e.g. grid coordinates) are stored as lists and restored
    here.  Durable databases therefore require JSON-representable
    elements — ints, strings, and (nested) tuples thereof.
    """
    if isinstance(value, list):
        return tuple(_decode_element(item) for item in value)
    return value


def _encode_ops(ops: Sequence[UpdateOp]) -> list:
    return [
        [1 if insert else 0, relation, list(elements)]
        for insert, relation, elements in ops
    ]


def _decode_ops(raw) -> Tuple[UpdateOp, ...]:
    ops = []
    for insert, relation, elements in raw:
        ops.append(
            (bool(insert), relation, tuple(_decode_element(e) for e in elements))
        )
    return tuple(ops)


def _record_crc(payload: dict) -> int:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


@dataclass(frozen=True)
class WalRecord:
    """One acknowledged commit: the version interval it spans, the
    lineage generation it landed on, and its effective ops."""

    version_before: int
    version_after: int
    generation: int
    ops: Tuple[UpdateOp, ...]

    def to_line(self) -> str:
        payload = {
            "b": self.version_before,
            "v": self.version_after,
            "g": self.generation,
            "ops": _encode_ops(self.ops),
        }
        payload["c"] = _record_crc(
            {k: payload[k] for k in ("b", "v", "g", "ops")}
        )
        return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"

    @staticmethod
    def from_line(line: str) -> Optional["WalRecord"]:
        """Parse one WAL line; ``None`` when torn or corrupt."""
        try:
            payload = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        try:
            crc = payload["c"]
            body = {k: payload[k] for k in ("b", "v", "g", "ops")}
        except (KeyError, TypeError):
            return None
        if _record_crc(body) != crc:
            return None
        try:
            ops = _decode_ops(body["ops"])
        except (TypeError, ValueError):
            return None
        return WalRecord(
            version_before=body["b"],
            version_after=body["v"],
            generation=body["g"],
            ops=ops,
        )


@dataclass(frozen=True)
class RestoredState:
    """What :meth:`DurableStore.restore` hands back to the session."""

    structure: Structure
    warm_structure: Optional[Structure]
    warm_entries: Tuple[tuple, ...]
    records: Tuple[WalRecord, ...]
    truncated_bytes: int


@dataclass(frozen=True)
class CheckpointResult:
    """Outcome of one checkpoint: the snapshot's lineage position, how
    many warm pipelines were spilled (and how many reused their previous
    blob unchanged), and how many WAL records/bytes/segments the
    rotation retired."""

    version: int
    generation: int
    fingerprint: str
    warm_entries: int
    wal_records_retired: int
    path: str
    wal_bytes_retired: int = 0
    wal_segments_retired: int = 0
    warm_reused: int = 0


# Evaluator memo caches and armed enumerators rebuild on demand; they
# must never reach a spill blob, or a reused blob would resurrect memos
# computed against an older structure state.
_VOLATILE_EVALUATOR_ATTRS = ("_ball_cache", "_memo", "_unary_cache")


@contextmanager
def _volatile_stripped(pipeline):
    """Temporarily detach a pipeline's query-time caches for pickling.

    The live objects are swapped out (not cleared), so concurrent
    readers keep their warm caches; the pickled bytes see empty ones.
    """
    saved = []
    evaluator = getattr(pipeline, "evaluator", None)
    if evaluator is not None:
        for attr in _VOLATILE_EVALUATOR_ATTRS:
            current = getattr(evaluator, attr, None)
            if isinstance(current, dict) and current:
                saved.append((evaluator, attr, current))
                setattr(evaluator, attr, {})
    armed = pipeline.__dict__.pop("_armed_branches", None)
    try:
        yield
    finally:
        for owner, attr, value in saved:
            setattr(owner, attr, value)
        if armed is not None:
            pipeline.__dict__.setdefault("_armed_branches", armed)


_HEAD_PID = "repro-head-structure"


def _dumps_with_head(obj, head: Structure) -> bytes:
    """Pickle ``obj`` with the head structure factored out by reference,
    so per-entry blobs stay valid across checkpoints of a moving head."""
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
    pickler.persistent_id = lambda o: _HEAD_PID if o is head else None
    pickler.dump(obj)
    return buffer.getvalue()


def _loads_with_head(blob: bytes, head: Structure):
    unpickler = pickle.Unpickler(io.BytesIO(blob))

    def persistent_load(pid):
        if pid == _HEAD_PID:
            return head
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")

    unpickler.persistent_load = persistent_load
    return unpickler.load()


class DurableStore:
    """A directory holding one database: manifest, snapshot, WAL, spill.

    ``sync=False`` trades the fsync-per-commit durability guarantee for
    speed (data still reaches the OS on every append) — useful for tests
    and benchmarks; production stores should keep the default.
    ``segment_bytes`` bounds one WAL segment: appends roll to a fresh
    ``wal.NNNNN.jsonl`` once the active segment passes it.
    """

    def __init__(
        self,
        path,
        sync: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ):
        self.path = os.fspath(path)
        self.sync = sync
        self.segment_bytes = max(1, int(segment_bytes))
        self._wal_handle: Optional[io.TextIOWrapper] = None
        self._active_index = 0
        self._active_bytes = 0
        # Records since the last checkpoint; lazily seeded from the files
        # so stats() stays O(1) on the append path.
        self._wal_records: Optional[int] = None
        # Incremental spill: (normalized, order, eps) -> last pickled
        # blob, seeded from a format-2 warm file on restore and refreshed
        # per checkpoint; clean plans reuse their blob byte-for-byte.
        self._warm_blobs: Dict[tuple, bytes] = {}

    # -- lifecycle ------------------------------------------------------

    def exists(self) -> bool:
        return os.path.isfile(os.path.join(self.path, MANIFEST_NAME))

    def close(self) -> None:
        if self._wal_handle is not None:
            try:
                self._wal_handle.close()
            finally:
                self._wal_handle = None
                self._active_index = 0
                self._active_bytes = 0

    # -- low-level file helpers -----------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.path, segment_name(index))

    def segment_indices(self) -> List[int]:
        """Sorted indices of the numbered segments on disk."""
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        indices = []
        for name in names:
            match = _SEGMENT_RE.match(name)
            if match:
                indices.append(int(match.group(1)))
        indices.sort()
        return indices

    def wal_paths(self) -> List[str]:
        """Every WAL file in replay order (legacy single file first)."""
        paths = []
        legacy = os.path.join(self.path, WAL_NAME)
        if os.path.isfile(legacy):
            paths.append(legacy)
        paths.extend(self._segment_path(i) for i in self.segment_indices())
        return paths

    def _write_atomic(self, name: str, data: bytes) -> None:
        target = os.path.join(self.path, name)
        tmp = target + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        os.replace(tmp, target)
        if self.sync:
            self._sync_dir()

    def _sync_dir(self) -> None:
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            return  # e.g. Windows: directories are not fsync-able
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _read_manifest(self) -> dict:
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise DurabilityError(
                f"unreadable manifest at {self._manifest_path()}: {error}"
            ) from None
        if manifest.get("format") != FORMAT_VERSION:
            raise DurabilityError(
                f"unsupported store format {manifest.get('format')!r} "
                f"(this build reads format {FORMAT_VERSION})"
            )
        return manifest

    def manifest_version(self) -> int:
        """The snapshot base version (read-only; for tailing followers)."""
        return self._read_manifest()["version"]

    # -- checkpoint / initialize ----------------------------------------

    def initialize(self, structure: Structure) -> CheckpointResult:
        """Create the store directory with an initial snapshot."""
        os.makedirs(self.path, exist_ok=True)
        if self.exists():
            raise DurabilityError(f"{self.path} already holds a database")
        return self.checkpoint(structure, ())

    def checkpoint(
        self,
        structure: Structure,
        warm_entries: Sequence[tuple],
        dirty_keys: Optional[set] = None,
    ) -> CheckpointResult:
        """Rotate the log into a fresh snapshot (plus warm spill).

        Write order is the crash-safety argument: (1) snapshot and spill
        land under new names, (2) the manifest swaps atomically to point
        at them, (3) the WAL segments are removed, (4) superseded files
        are removed.  A crash between (2) and (3) leaves WAL records at
        or below the snapshot version; recovery skips them by version
        interval.

        ``warm_entries`` are ``(normalized, order, eps, pipeline)``
        tuples; ``dirty_keys`` names the ``(normalized, order, eps)``
        triples whose plan state changed since the previous checkpoint —
        everything else reuses its previous blob.  ``None`` (the default
        for legacy callers) re-pickles everything.
        """
        os.makedirs(self.path, exist_ok=True)
        fingerprint = structure.content_fingerprint()
        version, generation = structure.version, structure.generation
        snapshot_name = f"snapshot-{version}.struct"
        self._write_atomic(
            snapshot_name, serialize.dumps(structure).encode("utf-8")
        )
        crash_point("checkpoint.after-snapshot")
        warm_name, spilled, reused = self._spill_warm(
            structure, warm_entries, dirty_keys, fingerprint
        )

        previous = None
        if self.exists():
            previous = self._read_manifest()
        pre = self.stats()
        manifest = {
            "format": FORMAT_VERSION,
            "snapshot": snapshot_name,
            "warm": warm_name,
            "version": version,
            "generation": generation,
            "fingerprint": fingerprint,
        }
        self._write_atomic(
            MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        )
        crash_point("checkpoint.after-manifest")
        self._reset_wal()
        self._remove_superseded(previous, manifest)
        crash_point("checkpoint.done")
        return CheckpointResult(
            version=version,
            generation=generation,
            fingerprint=fingerprint,
            warm_entries=spilled,
            wal_records_retired=pre["wal_records"],
            path=self.path,
            wal_bytes_retired=pre["wal_bytes"],
            wal_segments_retired=pre["wal_segments"],
            warm_reused=reused,
        )

    def _spill_warm(
        self,
        structure: Structure,
        warm_entries: Sequence[tuple],
        dirty_keys: Optional[set],
        fingerprint: str,
    ) -> Tuple[Optional[str], int, int]:
        """Write the incremental (format 2) warm spill; returns
        ``(file name or None, entries spilled, blobs reused)``."""
        if not warm_entries:
            self._warm_blobs.clear()
            return None, 0, 0
        version, generation = structure.version, structure.generation
        try:
            structure_blob = pickle.dumps(
                structure, protocol=pickle.HIGHEST_PROTOCOL
            )
        except (
            pickle.PicklingError,
            TypeError,
            AttributeError,
            RecursionError,
        ) as error:
            # The spill is an accelerator, never a durability
            # requirement: unpicklable structures degrade to a cold
            # reopen.
            warnings.warn(
                f"dropping warm spill warm-{version}.pickle: the head "
                f"structure could not be pickled ({error!r}); the store "
                "stays durable but reopens cold",
                DurabilityWarning,
                stacklevel=3,
            )
            self._warm_blobs.clear()
            return None, 0, 0
        blobs: Dict[tuple, bytes] = {}
        entries = []
        reused = 0
        dropped = 0
        for entry in warm_entries:
            try:
                normalized, order_names, eps, pipeline = entry
            except (TypeError, ValueError):
                dropped += 1
                warnings.warn(
                    f"warm spill skips one malformed cache entry "
                    f"({entry!r})",
                    DurabilityWarning,
                    stacklevel=3,
                )
                continue
            key = (normalized, order_names, eps)
            blob = None
            if (
                dirty_keys is not None
                and key not in dirty_keys
                and key in self._warm_blobs
            ):
                blob = self._warm_blobs[key]
                reused += 1
            else:
                try:
                    with _volatile_stripped(pipeline):
                        blob = _dumps_with_head(pipeline, structure)
                except (
                    pickle.PicklingError,
                    TypeError,
                    AttributeError,
                    RecursionError,
                ) as error:
                    dropped += 1
                    warnings.warn(
                        f"warm spill skips one cached pipeline "
                        f"({normalized!r}): it could not be pickled "
                        f"({error!r})",
                        DurabilityWarning,
                        stacklevel=3,
                    )
                    continue
            blobs[key] = blob
            entries.append([normalized, order_names, eps, blob])
        self._warm_blobs = blobs
        if not entries:
            return None, 0, 0
        bundle = {
            "format": WARM_FORMAT,
            "fingerprint": fingerprint,
            "version": version,
            "generation": generation,
            "structure": structure_blob,
            "entries": entries,
        }
        warm_name = f"warm-{version}.pickle"
        self._write_atomic(
            warm_name, pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
        )
        return warm_name, len(entries), reused

    def _remove_superseded(
        self, previous: Optional[dict], current: dict
    ) -> None:
        if not previous:
            return
        for key in ("snapshot", "warm"):
            name = previous.get(key)
            if name and name not in (current.get("snapshot"), current.get("warm")):
                try:
                    os.remove(os.path.join(self.path, name))
                except OSError:
                    pass

    # -- WAL append ------------------------------------------------------

    def append(self, record: WalRecord) -> None:
        """Durably log one acknowledged commit (fsync before return)."""
        crash_point("wal.append.before")
        if self._wal_records is None:
            self._wal_records = self._count_wal_records()
        line = record.to_line()
        handle = self._active_handle(len(line.encode("utf-8")))
        # A torn append writes a partial record and dies — exactly what a
        # power cut mid-write leaves behind; recovery must truncate it.
        crash_point(
            "wal.append.torn",
            lambda: (handle.write(line[: max(1, len(line) // 2)]), handle.flush()),
        )
        written = handle.write(line)
        handle.flush()
        if self.sync:
            os.fsync(handle.fileno())
        crash_point("wal.append.after-sync")
        self._wal_records += 1
        self._active_bytes += written

    def _active_handle(self, incoming_bytes: int) -> io.TextIOWrapper:
        """The open active segment, rolling to a new one when full.

        Legacy ``wal.jsonl`` files are never appended to: the first
        append on an old store starts ``wal.00001.jsonl`` and the legacy
        file stays as the oldest history until a checkpoint retires it.
        """
        if (
            self._wal_handle is not None
            and self._active_bytes + incoming_bytes > self.segment_bytes
            and self._active_bytes > 0
        ):
            self.close()
        if self._wal_handle is None:
            indices = self.segment_indices()
            index = indices[-1] if indices else 1
            try:
                size = os.path.getsize(self._segment_path(index))
            except OSError:
                size = 0
            if size > 0 and size + incoming_bytes > self.segment_bytes:
                index += 1
                size = 0
            os.makedirs(self.path, exist_ok=True)
            self._wal_handle = open(
                self._segment_path(index), "a", encoding="utf-8", newline=""
            )
            self._active_index = index
            self._active_bytes = size
        return self._wal_handle

    def _reset_wal(self) -> None:
        """Retire every WAL file (checkpoint made them redundant)."""
        self.close()
        for path in self.wal_paths():
            try:
                os.remove(path)
            except OSError:
                pass
        if self.sync:
            self._sync_dir()
        self._wal_records = 0

    def _count_wal_records(self) -> int:
        total = 0
        for path in self.wal_paths():
            try:
                with open(path, "rb") as handle:
                    total += sum(1 for _ in handle)
            except OSError:
                pass
        return total

    def stats(self) -> dict:
        """WAL accumulation since the last checkpoint rotation.

        ``wal_records`` counts acknowledged commits sitting in the log,
        ``wal_bytes`` their on-disk size across ``wal_segments`` files —
        the recovery debt a reopen would replay, and the signal for
        *when to checkpoint*.  All drop to zero when :meth:`checkpoint`
        rotates the log.
        """
        if self._wal_records is None:
            self._wal_records = self._count_wal_records()
        if self._wal_handle is not None:
            self._wal_handle.flush()
        paths = self.wal_paths()
        wal_bytes = 0
        for path in paths:
            try:
                wal_bytes += os.path.getsize(path)
            except OSError:
                pass
        return {
            "wal_records": self._wal_records,
            "wal_bytes": wal_bytes,
            "wal_segments": len(paths),
            "path": self.path,
        }

    # -- restore ---------------------------------------------------------

    def _scan_file(self, path: str) -> Tuple[List[WalRecord], int, int]:
        """Parse one WAL file: intact records, valid bytes, total bytes.

        The valid prefix ends at the first record that is unterminated,
        unparsable, or CRC-mismatched — a torn tail from a crash
        mid-append; everything after it was never acknowledged.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return [], 0, 0
        records: List[WalRecord] = []
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # unterminated final line: torn
            line = data[offset : newline + 1]
            try:
                record = WalRecord.from_line(line.decode("utf-8"))
            except UnicodeDecodeError:
                record = None
            if record is None:
                break
            records.append(record)
            offset = newline + 1
        return records, offset, len(data)

    def _scan_wal(self):
        """Scan every segment in order, stopping at the first torn file.

        Returns ``(records, scans)`` where ``scans`` is a list of
        ``(path, valid_bytes, total_bytes, dropped_whole_file)`` — the
        truncation plan :meth:`restore` executes.  Once one file tears,
        every later segment is dropped whole: its records postdate an
        unacknowledged write and were never acknowledged either.
        """
        records: List[WalRecord] = []
        scans = []
        torn = False
        for path in self.wal_paths():
            if torn:
                scans.append((path, 0, None, True))
                continue
            file_records, valid, total = self._scan_file(path)
            scans.append((path, valid, total, False))
            records.extend(file_records)
            if valid < total:
                torn = True
        return records, scans

    def records_since(
        self, after_version: int, limit: Optional[int] = None
    ) -> Tuple[List[WalRecord], bool]:
        """Read-only tail for replication: every intact record with
        ``version_after > after_version``, in order, without touching
        the files (no truncation — a live leader may own them).

        Returns ``(records, more)`` where ``more`` flags a hit ``limit``
        (further records exist).  Parsing stops at the first torn line
        — an in-flight append the follower will pick up next poll.
        """
        records: List[WalRecord] = []
        more = False
        for path in self.wal_paths():
            file_records, valid, total = self._scan_file(path)
            for record in file_records:
                if record.version_after <= after_version:
                    continue
                if limit is not None and len(records) >= limit:
                    more = True
                    return records, more
                records.append(record)
            if valid < total:
                break  # torn in-flight tail: stop, never skip past it
        return records, more

    def load_snapshot(self) -> Tuple[Structure, dict]:
        """Read-only snapshot load: manifest + validated structure.

        Shared by :meth:`restore` and by replication followers seeding
        from a leader's live directory — it never truncates the WAL or
        otherwise writes, so it is safe against a store another process
        is appending to.
        """
        manifest = self._read_manifest()
        snapshot_path = os.path.join(self.path, manifest["snapshot"])
        try:
            structure = serialize.load_file(snapshot_path)
        except Exception as error:
            raise DurabilityError(
                f"unreadable snapshot {snapshot_path}: {error}"
            ) from None
        if structure.content_fingerprint() != manifest["fingerprint"]:
            raise DurabilityError(
                f"snapshot {manifest['snapshot']} does not match the "
                "manifest fingerprint; the store is corrupt"
            )
        if (
            structure.version != manifest["version"]
            or structure.generation != manifest["generation"]
        ):
            raise DurabilityError(
                f"snapshot lineage ({structure.version}, "
                f"{structure.generation}) disagrees with the manifest "
                f"({manifest['version']}, {manifest['generation']})"
            )
        return structure, manifest

    def restore(self, load_warm: bool = True) -> RestoredState:
        """Load the snapshot (warm spill when valid) and the intact WAL
        tail, truncating any torn suffix left by a crash."""
        structure, manifest = self.load_snapshot()

        warm_structure: Optional[Structure] = None
        warm_entries: Tuple[tuple, ...] = ()
        if load_warm and manifest.get("warm"):
            warm_structure, warm_entries = self._load_warm(
                manifest, os.path.join(self.path, manifest["warm"])
            )

        records, scans = self._scan_wal()
        self._wal_records = len(records)
        truncated = 0
        for path, valid, total, drop_whole in scans:
            if drop_whole:
                try:
                    truncated += os.path.getsize(path)
                    os.remove(path)
                except OSError:
                    pass
            elif total is not None and valid < total:
                # Drop the torn tail so future appends start on a record
                # boundary.  The dropped bytes were never acknowledged.
                truncated += total - valid
                with open(path, "rb+") as handle:
                    handle.truncate(valid)
                    handle.flush()
                    if self.sync:
                        os.fsync(handle.fileno())
        return RestoredState(
            structure=structure,
            warm_structure=warm_structure,
            warm_entries=warm_entries,
            records=tuple(records),
            truncated_bytes=truncated,
        )

    def _load_warm(
        self, manifest: dict, warm_path: str
    ) -> Tuple[Optional[Structure], Tuple[tuple, ...]]:
        try:
            with open(warm_path, "rb") as handle:
                bundle = pickle.load(handle)
            if (
                bundle["fingerprint"] != manifest["fingerprint"]
                or bundle["version"] != manifest["version"]
                or bundle["generation"] != manifest["generation"]
            ):
                return None, ()
            if bundle.get("format") == WARM_FORMAT:
                structure = pickle.loads(bundle["structure"])
                if structure.content_fingerprint() != manifest["fingerprint"]:
                    return None, ()
                entries = []
                blobs: Dict[tuple, bytes] = {}
                for normalized, order_names, eps, blob in bundle["entries"]:
                    pipeline = _loads_with_head(blob, structure)
                    entries.append((normalized, order_names, eps, pipeline))
                    blobs[(normalized, order_names, eps)] = blob
                # Seed the reuse cache: plans that stay clean keep these
                # exact bytes at the next checkpoint.
                self._warm_blobs = blobs
                return structure, tuple(entries)
            # Format 1 (pre-segmentation builds): one bundle holding the
            # live structure and entries directly.
            structure = bundle["structure"]
            if structure.content_fingerprint() != manifest["fingerprint"]:
                return None, ()
            return structure, tuple(bundle["entries"])
        except Exception as error:
            # Spill corruption must never block recovery — anything can
            # go wrong inside pickle.load of a damaged file (OSError,
            # EOFError, UnpicklingError, arbitrary errors from unpickled
            # content), so the breadth here is deliberate; the warning
            # keeps it from being silent.
            warnings.warn(
                "ignoring unreadable warm spill "
                f"{os.path.basename(warm_path)} ({error!r}); recovery "
                "continues cold from snapshot + WAL",
                DurabilityWarning,
                stacklevel=2,
            )
            return None, ()
