"""Durable storage for session databases: snapshot + changeset WAL.

The paper's bargain is a heavy preprocessing phase bought once so that
enumeration is constant-delay forever after — which makes losing that
investment to a process restart especially galling.  :class:`DurableStore`
makes a :class:`repro.session.Database` restartable with the classic
snapshot-plus-write-ahead-log design:

``MANIFEST.json``
    Points at the current snapshot and records its lineage position
    (version, generation) and content fingerprint.  Swapped atomically
    (write to a temp file, fsync, ``os.replace``), so a crash during
    checkpoint leaves either the old or the new manifest — never a torn
    one.

``snapshot-<version>.struct``
    The structure in the :mod:`repro.structures.serialize` text format,
    whose ``#!`` directives round-trip the version/generation lineage.

``wal.jsonl``
    One JSON record per committed changeset — the PR 5 JSONL changeset
    format, framed with the commit's version interval and a CRC so a
    torn tail is detectable.  Appends are flushed and fsync'd *before*
    the commit is acknowledged; recovery replays every intact record past
    the snapshot and truncates the first torn one (an unacknowledged
    commit, by construction).

``warm-<version>.pickle``
    Optional spill of the warm pipeline cache (preprocessing output) so
    a reopened database answers its first query without re-running
    Proposition 3.4.  Strictly an accelerator: it is validated against
    the manifest lineage and silently ignored when stale or unreadable.

The crash-safety contract: a commit is durable once ``db.apply()`` /
``Transaction.commit()`` returns.  Kill the process at any byte of the
WAL file and :meth:`repro.session.Database.open` restores exactly the
acknowledged prefix of commits — fingerprint- and answer-identical to
the pre-crash state.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import warnings
import zlib
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.errors import DurabilityError, DurabilityWarning
from repro.structures import serialize
from repro.structures.structure import Structure

Element = Hashable
UpdateOp = Tuple[bool, str, Tuple[Element, ...]]

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.jsonl"
FORMAT_VERSION = 1


def _decode_element(value):
    """JSON round-trip for elements: lists come back as tuples.

    Structure elements must be hashable; JSON has no tuple, so tuple
    elements (e.g. grid coordinates) are stored as lists and restored
    here.  Durable databases therefore require JSON-representable
    elements — ints, strings, and (nested) tuples thereof.
    """
    if isinstance(value, list):
        return tuple(_decode_element(item) for item in value)
    return value


def _encode_ops(ops: Sequence[UpdateOp]) -> list:
    return [
        [1 if insert else 0, relation, list(elements)]
        for insert, relation, elements in ops
    ]


def _decode_ops(raw) -> Tuple[UpdateOp, ...]:
    ops = []
    for insert, relation, elements in raw:
        ops.append(
            (bool(insert), relation, tuple(_decode_element(e) for e in elements))
        )
    return tuple(ops)


def _record_crc(payload: dict) -> int:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


@dataclass(frozen=True)
class WalRecord:
    """One acknowledged commit: the version interval it spans, the
    lineage generation it landed on, and its effective ops."""

    version_before: int
    version_after: int
    generation: int
    ops: Tuple[UpdateOp, ...]

    def to_line(self) -> str:
        payload = {
            "b": self.version_before,
            "v": self.version_after,
            "g": self.generation,
            "ops": _encode_ops(self.ops),
        }
        payload["c"] = _record_crc(
            {k: payload[k] for k in ("b", "v", "g", "ops")}
        )
        return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"

    @staticmethod
    def from_line(line: str) -> Optional["WalRecord"]:
        """Parse one WAL line; ``None`` when torn or corrupt."""
        try:
            payload = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        try:
            crc = payload["c"]
            body = {k: payload[k] for k in ("b", "v", "g", "ops")}
        except (KeyError, TypeError):
            return None
        if _record_crc(body) != crc:
            return None
        try:
            ops = _decode_ops(body["ops"])
        except (TypeError, ValueError):
            return None
        return WalRecord(
            version_before=body["b"],
            version_after=body["v"],
            generation=body["g"],
            ops=ops,
        )


@dataclass(frozen=True)
class RestoredState:
    """What :meth:`DurableStore.restore` hands back to the session."""

    structure: Structure
    warm_structure: Optional[Structure]
    warm_entries: Tuple[tuple, ...]
    records: Tuple[WalRecord, ...]
    truncated_bytes: int


@dataclass(frozen=True)
class CheckpointResult:
    """Outcome of one checkpoint: the snapshot's lineage position, how
    many warm pipelines were spilled, and how many WAL records (and
    bytes) the rotation retired."""

    version: int
    generation: int
    fingerprint: str
    warm_entries: int
    wal_records_retired: int
    path: str
    wal_bytes_retired: int = 0


class DurableStore:
    """A directory holding one database: manifest, snapshot, WAL, spill.

    ``sync=False`` trades the fsync-per-commit durability guarantee for
    speed (data still reaches the OS on every append) — useful for tests
    and benchmarks; production stores should keep the default.
    """

    def __init__(self, path, sync: bool = True):
        self.path = os.fspath(path)
        self.sync = sync
        self._wal_handle: Optional[io.TextIOWrapper] = None
        # Records since the last checkpoint; lazily seeded from the file
        # so stats() stays O(1) on the append path.
        self._wal_records: Optional[int] = None

    # -- lifecycle ------------------------------------------------------

    def exists(self) -> bool:
        return os.path.isfile(os.path.join(self.path, MANIFEST_NAME))

    def close(self) -> None:
        if self._wal_handle is not None:
            try:
                self._wal_handle.close()
            finally:
                self._wal_handle = None

    # -- low-level file helpers -----------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    def _wal_path(self) -> str:
        return os.path.join(self.path, WAL_NAME)

    def _write_atomic(self, name: str, data: bytes) -> None:
        target = os.path.join(self.path, name)
        tmp = target + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        os.replace(tmp, target)
        if self.sync:
            self._sync_dir()

    def _sync_dir(self) -> None:
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            return  # e.g. Windows: directories are not fsync-able
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _read_manifest(self) -> dict:
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise DurabilityError(
                f"unreadable manifest at {self._manifest_path()}: {error}"
            ) from None
        if manifest.get("format") != FORMAT_VERSION:
            raise DurabilityError(
                f"unsupported store format {manifest.get('format')!r} "
                f"(this build reads format {FORMAT_VERSION})"
            )
        return manifest

    # -- checkpoint / initialize ----------------------------------------

    def initialize(self, structure: Structure) -> CheckpointResult:
        """Create the store directory with an initial snapshot."""
        os.makedirs(self.path, exist_ok=True)
        if self.exists():
            raise DurabilityError(f"{self.path} already holds a database")
        return self.checkpoint(structure, ())

    def checkpoint(
        self, structure: Structure, warm_entries: Sequence[tuple]
    ) -> CheckpointResult:
        """Rotate the log into a fresh snapshot (plus warm spill).

        Write order is the crash-safety argument: (1) snapshot and spill
        land under new names, (2) the manifest swaps atomically to point
        at them, (3) the WAL truncates, (4) superseded files are removed.
        A crash between (2) and (3) leaves WAL records at or below the
        snapshot version; recovery skips them by version interval.
        """
        os.makedirs(self.path, exist_ok=True)
        fingerprint = structure.content_fingerprint()
        version, generation = structure.version, structure.generation
        snapshot_name = f"snapshot-{version}.struct"
        self._write_atomic(
            snapshot_name, serialize.dumps(structure).encode("utf-8")
        )
        warm_name: Optional[str] = None
        spilled = 0
        if warm_entries:
            # One bundle holding the head structure AND the entries, so
            # pickle preserves the structure<->pipeline identity and the
            # restored head is the very object the warm plans point at.
            bundle = {
                "fingerprint": fingerprint,
                "version": version,
                "generation": generation,
                "structure": structure,
                "entries": tuple(warm_entries),
            }
            try:
                blob = pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
            except (
                pickle.PicklingError,
                TypeError,
                AttributeError,
                RecursionError,
            ) as error:
                # The spill is an accelerator, never a durability
                # requirement: unpicklable pipelines (exotic elements,
                # user-defined formula atoms) degrade to a cold reopen.
                warnings.warn(
                    f"dropping warm spill warm-{version}.pickle: "
                    f"{len(warm_entries)} cached pipeline(s) could not be "
                    f"pickled ({error!r}); the store stays durable but "
                    "reopens cold",
                    DurabilityWarning,
                    stacklevel=2,
                )
                warm_name = None
            else:
                warm_name = f"warm-{version}.pickle"
                self._write_atomic(warm_name, blob)
                spilled = len(warm_entries)

        previous = None
        if self.exists():
            previous = self._read_manifest()
        pre = self.stats()
        retired = pre["wal_records"]
        retired_bytes = pre["wal_bytes"]
        manifest = {
            "format": FORMAT_VERSION,
            "snapshot": snapshot_name,
            "warm": warm_name,
            "version": version,
            "generation": generation,
            "fingerprint": fingerprint,
        }
        self._write_atomic(
            MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
        )
        self._truncate_wal()
        self._remove_superseded(previous, manifest)
        return CheckpointResult(
            version=version,
            generation=generation,
            fingerprint=fingerprint,
            warm_entries=spilled,
            wal_records_retired=retired,
            path=self.path,
            wal_bytes_retired=retired_bytes,
        )

    def _remove_superseded(
        self, previous: Optional[dict], current: dict
    ) -> None:
        if not previous:
            return
        for key in ("snapshot", "warm"):
            name = previous.get(key)
            if name and name not in (current.get("snapshot"), current.get("warm")):
                try:
                    os.remove(os.path.join(self.path, name))
                except OSError:
                    pass

    # -- WAL append ------------------------------------------------------

    def append(self, record: WalRecord) -> None:
        """Durably log one acknowledged commit (fsync before return)."""
        if self._wal_records is None:
            self._wal_records = self._count_wal_records()
        if self._wal_handle is None:
            self._wal_handle = open(
                self._wal_path(), "a", encoding="utf-8", newline=""
            )
        handle = self._wal_handle
        handle.write(record.to_line())
        handle.flush()
        if self.sync:
            os.fsync(handle.fileno())
        self._wal_records += 1

    def _truncate_wal(self) -> None:
        self.close()
        with open(self._wal_path(), "w", encoding="utf-8") as handle:
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        self._wal_records = 0

    def _count_wal_records(self) -> int:
        try:
            with open(self._wal_path(), "rb") as handle:
                return sum(1 for _ in handle)
        except OSError:
            return 0

    def stats(self) -> dict:
        """WAL accumulation since the last checkpoint rotation.

        ``wal_records`` counts acknowledged commits sitting in the log,
        ``wal_bytes`` their on-disk size — the recovery debt a reopen
        would replay, and the signal for *when to checkpoint*.  Both
        drop to zero when :meth:`checkpoint` rotates the log.
        """
        if self._wal_records is None:
            self._wal_records = self._count_wal_records()
        if self._wal_handle is not None:
            self._wal_handle.flush()
        try:
            wal_bytes = os.path.getsize(self._wal_path())
        except OSError:
            wal_bytes = 0
        return {
            "wal_records": self._wal_records,
            "wal_bytes": wal_bytes,
            "path": self.path,
        }

    # -- restore ---------------------------------------------------------

    def _scan_wal(self) -> Tuple[List[WalRecord], int, int]:
        """Parse the WAL: intact records, valid byte length, total length.

        The valid prefix ends at the first record that is unterminated,
        unparsable, or CRC-mismatched — a torn tail from a crash
        mid-append; everything after it was never acknowledged.
        """
        try:
            with open(self._wal_path(), "rb") as handle:
                data = handle.read()
        except OSError:
            return [], 0, 0
        records: List[WalRecord] = []
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # unterminated final line: torn
            line = data[offset : newline + 1]
            try:
                record = WalRecord.from_line(line.decode("utf-8"))
            except UnicodeDecodeError:
                record = None
            if record is None:
                break
            records.append(record)
            offset = newline + 1
        return records, offset, len(data)

    def restore(self, load_warm: bool = True) -> RestoredState:
        """Load the snapshot (warm spill when valid) and the intact WAL
        tail, truncating any torn suffix left by a crash."""
        manifest = self._read_manifest()
        snapshot_path = os.path.join(self.path, manifest["snapshot"])
        try:
            structure = serialize.load_file(snapshot_path)
        except Exception as error:
            raise DurabilityError(
                f"unreadable snapshot {snapshot_path}: {error}"
            ) from None
        if structure.content_fingerprint() != manifest["fingerprint"]:
            raise DurabilityError(
                f"snapshot {manifest['snapshot']} does not match the "
                "manifest fingerprint; the store is corrupt"
            )
        if (
            structure.version != manifest["version"]
            or structure.generation != manifest["generation"]
        ):
            raise DurabilityError(
                f"snapshot lineage ({structure.version}, "
                f"{structure.generation}) disagrees with the manifest "
                f"({manifest['version']}, {manifest['generation']})"
            )

        warm_structure: Optional[Structure] = None
        warm_entries: Tuple[tuple, ...] = ()
        if load_warm and manifest.get("warm"):
            warm_structure, warm_entries = self._load_warm(
                manifest, os.path.join(self.path, manifest["warm"])
            )

        records, valid_bytes, total_bytes = self._scan_wal()
        self._wal_records = len(records)
        if valid_bytes < total_bytes:
            # Drop the torn tail so future appends start on a record
            # boundary.  The dropped bytes were never acknowledged.
            with open(self._wal_path(), "rb+") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                if self.sync:
                    os.fsync(handle.fileno())
        return RestoredState(
            structure=structure,
            warm_structure=warm_structure,
            warm_entries=warm_entries,
            records=tuple(records),
            truncated_bytes=total_bytes - valid_bytes,
        )

    def _load_warm(
        self, manifest: dict, warm_path: str
    ) -> Tuple[Optional[Structure], Tuple[tuple, ...]]:
        try:
            with open(warm_path, "rb") as handle:
                bundle = pickle.load(handle)
            if (
                bundle["fingerprint"] != manifest["fingerprint"]
                or bundle["version"] != manifest["version"]
                or bundle["generation"] != manifest["generation"]
            ):
                return None, ()
            structure = bundle["structure"]
            if structure.content_fingerprint() != manifest["fingerprint"]:
                return None, ()
            return structure, tuple(bundle["entries"])
        except Exception as error:
            # Spill corruption must never block recovery — anything can
            # go wrong inside pickle.load of a damaged file (OSError,
            # EOFError, UnpicklingError, arbitrary errors from unpickled
            # content), so the breadth here is deliberate; the warning
            # keeps it from being silent.
            warnings.warn(
                "ignoring unreadable warm spill "
                f"{os.path.basename(warm_path)} ({error!r}); recovery "
                "continues cold from snapshot + WAL",
                DurabilityWarning,
                stacklevel=2,
            )
            return None, ()
