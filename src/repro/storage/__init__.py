"""RAM-model substrate: the Storing Theorem trie (Theorem 2.1), the
constant-time fact index (Corollary 2.2), and RAM step accounting."""

from repro.storage.cost_model import CostMeter, tick
from repro.storage.fact_index import AdjacencyIndex, FactIndex
from repro.storage.trie import DictBackend, ElementTrie, StoringTrie, store_function

__all__ = [
    "AdjacencyIndex",
    "CostMeter",
    "DictBackend",
    "ElementTrie",
    "FactIndex",
    "StoringTrie",
    "store_function",
    "tick",
]
