"""RAM-model substrate: the Storing Theorem trie (Theorem 2.1), the
constant-time fact index (Corollary 2.2), RAM step accounting, and the
snapshot + write-ahead-log durability layer for session databases."""

from repro.storage.cost_model import CostMeter, tick
from repro.storage.fact_index import AdjacencyIndex, FactIndex
from repro.storage.trie import DictBackend, ElementTrie, StoringTrie, store_function
from repro.storage.wal import (
    CheckpointResult,
    DurableStore,
    RestoredState,
    WalRecord,
)

__all__ = [
    "AdjacencyIndex",
    "CheckpointResult",
    "CostMeter",
    "DictBackend",
    "DurableStore",
    "ElementTrie",
    "FactIndex",
    "RestoredState",
    "StoringTrie",
    "WalRecord",
    "store_function",
    "tick",
]
