"""Constant-time fact testing (Corollary 2.2) and adjacency lists.

After a preprocessing of time ``O(d^r * n^{1+eps})`` the :class:`FactIndex`
answers ``A |= R(a-bar)?`` in time independent of ``n`` and ``d``: one
Storing-Theorem lookup per relation.  It also materializes the adjacency
lists the naive ``O(d)`` test of the paper's remark would use, because the
enumeration phase needs to *iterate* neighbors, not only test edges.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Sequence, Tuple

from repro.storage.trie import ElementTrie
from repro.structures.structure import Structure

Element = Hashable


class FactIndex:
    """Per-relation Storing-Theorem tries over one structure."""

    def __init__(self, structure: Structure, eps: float = 0.5, backend: str = "trie"):
        self.structure = structure
        self.eps = eps
        order = structure.order
        n = structure.cardinality
        self._tries: Dict[str, ElementTrie] = {}
        for symbol in structure.signature:
            trie = ElementTrie(n, symbol.arity, order.rank, eps=eps, backend=backend)
            for fact in structure.facts(symbol.name):
                trie.store(fact, True)
            self._tries[symbol.name] = trie

    def holds(self, relation: str, elements: Sequence[Element]) -> bool:
        """Test ``A |= R(a-bar)`` in constant time (Corollary 2.2)."""
        trie = self._tries.get(relation)
        if trie is None:
            return False
        return trie.lookup(elements) is not None

    def edge(self, relation: str, left: Element, right: Element) -> bool:
        """Binary-relation convenience wrapper for ``holds``."""
        return self.holds(relation, (left, right))

    def symmetric_edge(self, relation: str, left: Element, right: Element) -> bool:
        """Test ``E'(left, right) = E(left, right) or E(right, left)``.

        This is the paper's symmetrized edge predicate ``E'`` used by the
        skip function (Section 3.6).
        """
        return self.holds(relation, (left, right)) or self.holds(
            relation, (right, left)
        )


class AdjacencyIndex:
    """Gaifman adjacency as frozensets, for neighbor iteration.

    The paper's remark below Corollary 2.2 describes exactly this
    structure: a linear-time pass building adjacency lists, giving an
    ``O(d)`` edge test and — what the skip-function computation needs —
    iteration over the at most ``d`` neighbors of an element.
    """

    def __init__(self, structure: Structure):
        self.structure = structure
        self._adjacency: Dict[Element, FrozenSet[Element]] = dict(
            structure.adjacency()
        )

    def neighbors(self, element: Element) -> FrozenSet[Element]:
        return self._adjacency.get(element, frozenset())

    def adjacent(self, left: Element, right: Element) -> bool:
        return right in self._adjacency.get(left, frozenset())

    def blocked(self, candidate: Element, blockers: Sequence[Element]) -> bool:
        """True iff ``candidate`` is Gaifman-adjacent to any blocker."""
        neighbors = self._adjacency.get(candidate, frozenset())
        return any(blocker in neighbors for blocker in blockers)
