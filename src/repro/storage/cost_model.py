"""Uniform-cost RAM step counting (Section 2.2).

Wall-clock delays in CPython are noisy (allocator, GC, branch caches); the
paper's claims are about *RAM steps*.  :class:`CostMeter` counts abstract
steps at the places the algorithms would issue RAM operations, so the
benchmark harness can demonstrate "constant delay" as a flat *step* count
per output, independent of ``|A|`` — exactly the quantity Theorem 2.7
bounds.

The meter is optional everywhere: passing ``meter=None`` costs one ``if``
per instrumented site.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class CostMeter:
    """Counts abstract RAM steps, grouped by operation label."""

    __slots__ = ("steps", "by_label", "_marks")

    def __init__(self) -> None:
        self.steps = 0
        self.by_label: Dict[str, int] = {}
        self._marks: List[int] = []

    def tick(self, label: str = "step", count: int = 1) -> None:
        """Record ``count`` RAM steps attributed to ``label``."""
        self.steps += count
        self.by_label[label] = self.by_label.get(label, 0) + count

    def mark(self) -> None:
        """Remember the current step count (e.g. at each enumeration output)."""
        self._marks.append(self.steps)

    def deltas(self) -> List[int]:
        """Step counts between consecutive marks: the per-output delays."""
        return [
            later - earlier
            for earlier, later in zip(self._marks, self._marks[1:])
        ]

    @property
    def max_delta(self) -> int:
        gaps = self.deltas()
        return max(gaps) if gaps else 0

    def reset(self) -> None:
        self.steps = 0
        self.by_label.clear()
        self._marks.clear()

    def snapshot(self) -> Dict[str, int]:
        return dict(self.by_label)

    def __repr__(self) -> str:
        return f"CostMeter(steps={self.steps}, labels={len(self.by_label)})"


def tick(meter: Optional[CostMeter], label: str = "step", count: int = 1) -> None:
    """Module-level helper so call sites stay one-liners."""
    if meter is not None:
        meter.tick(label, count)
