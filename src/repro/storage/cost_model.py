"""Uniform-cost RAM step counting (Section 2.2).

Wall-clock delays in CPython are noisy (allocator, GC, branch caches); the
paper's claims are about *RAM steps*.  :class:`CostMeter` counts abstract
steps at the places the algorithms would issue RAM operations, so the
benchmark harness can demonstrate "constant delay" as a flat *step* count
per output, independent of ``|A|`` — exactly the quantity Theorem 2.7
bounds.

The meter is optional everywhere: passing ``meter=None`` costs one ``if``
per instrumented site.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class CostMeter:
    """Counts abstract RAM steps, grouped by operation label."""

    __slots__ = ("steps", "by_label", "_marks")

    def __init__(self) -> None:
        self.steps = 0
        self.by_label: Dict[str, int] = {}
        self._marks: List[int] = []

    def tick(self, label: str = "step", count: int = 1) -> None:
        """Record ``count`` RAM steps attributed to ``label``."""
        self.steps += count
        self.by_label[label] = self.by_label.get(label, 0) + count

    def mark(self) -> None:
        """Remember the current step count (e.g. at each enumeration output)."""
        self._marks.append(self.steps)

    def deltas(self) -> List[int]:
        """Step counts between consecutive marks: the per-output delays."""
        return [
            later - earlier
            for earlier, later in zip(self._marks, self._marks[1:])
        ]

    @property
    def max_delta(self) -> int:
        gaps = self.deltas()
        return max(gaps) if gaps else 0

    def reset(self) -> None:
        self.steps = 0
        self.by_label.clear()
        self._marks.clear()

    def snapshot(self) -> Dict[str, int]:
        return dict(self.by_label)

    def __repr__(self) -> str:
        return f"CostMeter(steps={self.steps}, labels={len(self.by_label)})"


def tick(meter: Optional[CostMeter], label: str = "step", count: int = 1) -> None:
    """Module-level helper so call sites stay one-liners."""
    if meter is not None:
        meter.tick(label, count)


# ----------------------------------------------------------------------
# Parallel-execution heuristics (used by repro.engine)
# ----------------------------------------------------------------------

# Below this many estimated steps a pool costs more than it saves.
THREAD_WORK_THRESHOLD = 20_000
# Above this many estimated steps the GIL makes threads pointless and the
# per-process pipeline rebuild amortizes; switch to processes.
PROCESS_WORK_THRESHOLD = 500_000

_WORK_CAP = 10**15

# -- answer-transport cost terms (process mode ships answers back) -----
#
# Ballpark bytes one answer *value* costs on the wire: pickled tuples of
# small ints run ~8-12 bytes/value once tuple/memo opcodes are amortized;
# the columnar codec is bounded by the intern-id width (<= 4 bytes for
# any realistic domain) before offset narrowing and compression shrink it
# further.  One RAM step per machine word moved keeps the term in the
# same unit as the work estimates.
PICKLE_BYTES_PER_VALUE = 12
COLUMNAR_BYTES_PER_VALUE = 4
TRANSFER_BYTES_PER_STEP = 8

# The columnar transport aims chunks at this many bytes: big enough to
# amortize per-chunk headers and the zlib call, small enough that the
# parent's first page never waits on a megabyte of undecoded rows.
TARGET_CHUNK_BYTES = 1 << 16
MIN_CHUNK_ROWS = 64
MAX_CHUNK_ROWS = 8192


def default_chunk_rows(arity: int, id_width: int) -> int:
    """Rows per transport chunk when the caller does not choose.

    Sized off the cost model's byte target: ``chunk_rows`` such that one
    encoded chunk lands near :data:`TARGET_CHUNK_BYTES`, clamped so tiny
    arities do not produce million-row chunks (first-page latency) and
    huge arities still amortize chunk headers.
    """
    row_bytes = max(arity * id_width, 1)
    return max(MIN_CHUNK_ROWS, min(MAX_CHUNK_ROWS, TARGET_CHUNK_BYTES // row_bytes))


def estimate_rows(list_sizes: Sequence[int]) -> int:
    """Pessimistic answer-count bound for one branch: the (capped)
    product of its block-list lengths — the shared input of the work,
    transfer, and explain-report estimates."""
    rows = 1
    for size in list_sizes:
        if size == 0:
            return 0
        rows *= size
        if rows >= _WORK_CAP:
            return _WORK_CAP
    return rows


def estimate_transfer_work(
    list_sizes: Sequence[int],
    arity: int,
    bytes_per_value: int,
    shard_sizes: Optional[Sequence[int]] = None,
) -> int:
    """RAM-step proxy for shipping one branch's answers to the parent.

    The branch's answer count is bounded by :func:`estimate_rows` (the
    same pessimistic bound :func:`estimate_branch_work` uses); each
    answer moves ``arity * bytes_per_value`` bytes across the process
    boundary at :data:`TRANSFER_BYTES_PER_STEP` bytes per step.

    ``shard_sizes`` — per-shard row counts when the branch is split
    across region shards or work-unit slices — switches the estimate
    from serialized to *overlapped* transfer: with the streaming chunk
    mailbox every shard ships while the others still enumerate, so the
    critical path is the largest shard plus the remainder amortized
    across the pipeline, not the plain sum.  Without this, a
    large-but-well-sharded workload ranks as expensive as an unsharded
    one and the mode chooser misranks it against serial execution.
    """
    rows = estimate_rows(list_sizes)
    if shard_sizes:
        per_shard = [max(size, 0) for size in shard_sizes if size > 0]
        if per_shard:
            total = sum(per_shard)
            # Scale the row bound by each shard's share, then take the
            # overlapped critical path: max + (rest / lanes).
            scaled = [rows * size // total for size in per_shard]
            heaviest = max(scaled)
            rows = heaviest + (sum(scaled) - heaviest) // len(scaled)
    return min(rows * arity * bytes_per_value // TRANSFER_BYTES_PER_STEP, _WORK_CAP)


def estimate_branch_work(list_sizes: Sequence[int], graph_degree: int) -> int:
    """A RAM-step proxy for enumerating one branch ``(P, t)``.

    The branch's answer count is bounded by the product of its block-list
    lengths; each output costs a constant number of skip probes whose
    fan-out scales with the colored-graph degree.  The estimate is
    deliberately pessimistic (no credit for skip pruning) — it only needs
    to *rank* branches and workloads, not predict wall-clock.
    """
    work = 1
    for size in list_sizes:
        if size == 0:
            return 0
        work *= size
        if work >= _WORK_CAP:
            return _WORK_CAP
    return min(work * (graph_degree + 1), _WORK_CAP)


def estimate_count_work(list_sizes: Sequence[int], graph_degree: int) -> int:
    """A RAM-step proxy for *counting* one branch ``(P, t)`` (Lemma 3.6).

    The inclusion-exclusion recursion resolves one negated adjacency pair
    per level, so a ``b``-block branch has ``2^(b choose 2)`` leaves; each
    leaf walks its start-node lists with degree-bounded extension.  Like
    :func:`estimate_branch_work` this only needs to *rank* workloads, not
    predict wall-clock — counting never materializes the (possibly
    quadratic) answer set, so its work is far below the enumeration
    estimate for the same branch.
    """
    blocks = len(list_sizes)
    pairs = blocks * (blocks - 1) // 2
    if pairs >= 50:  # 2**50 alone dwarfs the cap
        return _WORK_CAP
    leaves = 2 ** pairs
    per_leaf = max(sum(list_sizes), 1) * (graph_degree + 1)
    return min(leaves * per_leaf, _WORK_CAP)


def choose_execution_mode(
    branch_works: Sequence[int],
    workers: int,
    thread_threshold: int = THREAD_WORK_THRESHOLD,
    process_threshold: int = PROCESS_WORK_THRESHOLD,
    transfer_work: Optional[int] = None,
) -> str:
    """Pick ``"serial"``, ``"thread"``, or ``"process"`` for a workload.

    * one worker, or small total work (pool setup dominates): serial —
      note a *single* heavy branch is still parallel-worthy, since the
      executor shards within branches;
    * medium total work: threads (cheap to spawn; the structure is small
      enough that sharing the parent's pipeline beats pickling it);
    * large total work: processes (each worker rebuilds the pipeline from
      the picklable spec once and the CPU-bound enumeration scales past
      the GIL) — *unless* ``transfer_work`` (the estimated cost of
      shipping the answers back, :func:`estimate_transfer_work`) would
      eat the multi-core speedup: answers cross the process boundary on
      the serialized parent side, so when moving them costs more than
      half the compute, threads win despite the GIL.
    """
    if workers <= 1:
        return "serial"
    total = sum(work for work in branch_works if work > 0)
    if total < thread_threshold:
        return "serial"
    if total < process_threshold:
        return "thread"
    if transfer_work is not None and 2 * transfer_work > total:
        return "thread"
    return "process"
