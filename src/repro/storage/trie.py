"""The Storing Theorem data structure (Theorem 2.1, after [SSV20]).

Stores a partial k-ary function ``f`` with domain contained in ``[n]^k``
such that:

* computation time and storage are ``O(|dom(f)| * n^eps)``,
* lookup time depends only on ``k`` and ``eps``.

The structure is a trie of depth ``ceil(k / eps')`` and fan-out ``n^eps'``:
every key tuple is flattened to an integer in ``[n^k]`` and split into
fixed-width digits; each trie node is a plain array of children indexed by
one digit.  Lookups perform exactly ``depth`` array accesses — constant for
fixed ``k`` and ``eps`` — with no hashing and no dependence on ``n``.

A ``dict`` backend is also provided (``backend="dict"``): on a RAM, a
hash table is the pragmatic realization of the same interface, and the
benchmark E8 compares the two.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

_VOID = object()


class StoringTrie:
    """Theorem 2.1 storage for a partial function ``[n]^k -> value``.

    Keys are tuples of integers in ``range(n)``.  Use
    :class:`ElementTrie` for keys over arbitrary domain elements.
    """

    __slots__ = ("n", "k", "eps", "fanout_bits", "depth", "_root", "_size", "_node_count")

    def __init__(self, n: int, k: int, eps: float = 0.5):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.n = n
        self.k = k
        self.eps = eps
        key_bits = max(1, k * max(1, math.ceil(math.log2(max(n, 2)))))
        # Fan-out n^eps means eps * log2(n) bits per trie level.
        self.fanout_bits = max(1, math.ceil(eps * math.log2(max(n, 2))))
        self.depth = max(1, math.ceil(key_bits / self.fanout_bits))
        self._root: List = [_VOID] * (1 << self.fanout_bits)
        self._size = 0
        self._node_count = 1

    # ------------------------------------------------------------------

    def _flatten(self, key: Sequence[int]) -> int:
        if len(key) != self.k:
            raise ValueError(f"expected {self.k}-tuples, got {len(key)}-tuple")
        flat = 0
        for component in key:
            if not 0 <= component < self.n:
                raise ValueError(
                    f"key component {component} out of range(0, {self.n})"
                )
            flat = flat * self.n + component
        return flat

    def _digits(self, flat: int) -> Iterator[int]:
        mask = (1 << self.fanout_bits) - 1
        shift = (self.depth - 1) * self.fanout_bits
        for _ in range(self.depth):
            yield (flat >> shift) & mask
            shift -= self.fanout_bits

    # ------------------------------------------------------------------

    def store(self, key: Sequence[int], value) -> None:
        """Insert or overwrite ``f(key) = value``."""
        node = self._root
        digits = list(self._digits(self._flatten(key)))
        for digit in digits[:-1]:
            child = node[digit]
            if child is _VOID or not isinstance(child, list):
                child = [_VOID] * (1 << self.fanout_bits)
                node[digit] = child
                self._node_count += 1
            node = child
        last = digits[-1]
        if node[last] is _VOID:
            self._size += 1
        node[last] = ("leaf", value)

    def lookup(self, key: Sequence[int]):
        """Return ``f(key)``, or None ("void") when key is outside dom(f)."""
        node = self._root
        for digit in self._digits(self._flatten(key)):
            entry = node[digit]
            if entry is _VOID:
                return None
            node = entry
        # After the final digit, ``node`` is the ("leaf", value) cell.
        return node[1]

    def __contains__(self, key: Sequence[int]) -> bool:
        node = self._root
        for digit in self._digits(self._flatten(key)):
            entry = node[digit]
            if entry is _VOID:
                return False
            node = entry
        return True

    def __len__(self) -> int:
        return self._size

    @property
    def node_count(self) -> int:
        """Number of allocated trie nodes (storage accounting for E8)."""
        return self._node_count

    @property
    def slots_allocated(self) -> int:
        """Total array slots allocated: node_count * 2^fanout_bits."""
        return self._node_count * (1 << self.fanout_bits)


class DictBackend:
    """Hash-table realization of the same partial-function interface."""

    __slots__ = ("k", "_table")

    def __init__(self, k: int):
        self.k = k
        self._table = {}

    def store(self, key: Sequence[int], value) -> None:
        if len(key) != self.k:
            raise ValueError(f"expected {self.k}-tuples, got {len(key)}-tuple")
        self._table[tuple(key)] = value

    def lookup(self, key: Sequence[int]):
        return self._table.get(tuple(key))

    def __contains__(self, key: Sequence[int]) -> bool:
        return tuple(key) in self._table

    def __len__(self) -> int:
        return len(self._table)


class ElementTrie:
    """Storing-Theorem storage keyed by tuples of domain *elements*.

    Wraps :class:`StoringTrie` (or the dict backend) with the structure's
    linear order, so callers can use raw domain elements as keys.  ``rank``
    must be a callable mapping elements to ``range(n)``.
    """

    __slots__ = ("_rank", "_inner")

    def __init__(
        self,
        n: int,
        k: int,
        rank,
        eps: float = 0.5,
        backend: str = "trie",
    ):
        self._rank = rank
        if backend == "trie":
            self._inner = StoringTrie(n, k, eps)
        elif backend == "dict":
            self._inner = DictBackend(k)
        else:
            raise ValueError(f"unknown backend {backend!r}")

    def store(self, key: Sequence[Hashable], value) -> None:
        self._inner.store([self._rank(element) for element in key], value)

    def lookup(self, key: Sequence[Hashable]):
        return self._inner.lookup([self._rank(element) for element in key])

    def __contains__(self, key: Sequence[Hashable]) -> bool:
        return [self._rank(element) for element in key] in self._inner

    def __len__(self) -> int:
        return len(self._inner)


def store_function(
    pairs: Iterable[Tuple[Sequence[int], object]],
    n: int,
    k: int,
    eps: float = 0.5,
) -> StoringTrie:
    """Bulk-build a :class:`StoringTrie` from ``(key, value)`` pairs."""
    trie = StoringTrie(n, k, eps)
    for key, value in pairs:
        trie.store(key, value)
    return trie
