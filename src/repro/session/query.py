"""The :class:`Query` plan object and its :class:`QueryPlan` explanation.

``db.query("...")`` preprocesses once (through the session's pipeline
cache) and returns a :class:`Query` exposing the paper's three
operations — :meth:`Query.count` (Theorem 2.5), :meth:`Query.test`
(Theorem 2.6), :meth:`Query.answers` (Theorem 2.7, constant delay) —
plus :meth:`Query.explain`, which reports the chosen plan: branch count,
shard layout, execution backend, and the cost-model estimates behind the
choice.

A ``Query`` is a *live* view of the session: after
``db.insert_fact()`` / ``db.remove_fact()`` it transparently re-resolves
its pipeline — O(1) when the plan was locally maintained, a rebuild
otherwise.  :class:`~repro.session.answers.Answers` handles, by
contrast, are pinned snapshots: a mutation makes an outstanding handle
raise :class:`repro.errors.StaleResultError`.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.counting import count_answers
from repro.core.testing import test_answer
from repro.engine.executor import (
    branch_works,
    count_works,
    plan_work_units,
    resolve_chunk_rows,
    transfer_works,
)
from repro.engine.transport import (
    estimate_encoded_bytes,
    resolve_transport,
    width_for,
)
from repro.errors import EngineError
from repro.fo.syntax import Formula, Var
from repro.session.answers import Answers, EncodedAnswers
from repro.session.backends import ExecutionPlan, PoolBackend, resolve_backend
from repro.storage.cost_model import PICKLE_BYTES_PER_VALUE, estimate_rows

Element = Hashable


def _estimated_rows(pipeline) -> int:
    """Pessimistic answer-count bound (the cost model's per-branch
    capped product, summed over branches)."""
    return sum(
        estimate_rows([len(node_list) for node_list in branch.lists])
        for branch in pipeline.branches
    )


@dataclass(frozen=True)
class QueryPlan:
    """What :meth:`Query.explain` returns: the decisions, made inspectable.

    ``backend`` / ``count_backend`` are the concrete execution modes the
    cost model (or a forced backend) resolves to for this plan —
    the same decision procedure the engine applies at pull time, so the
    report matches what actually runs.
    """

    query: str
    variables: Tuple[str, ...]
    backend_requested: str
    backend: str
    count_backend: str
    workers: int
    branch_count: int
    shards: Tuple[Tuple[int, int, Optional[int]], ...]
    branch_costs: Tuple[int, ...]
    count_costs: Tuple[int, ...]
    trivial: Optional[bool]
    cached: bool = field(default=False)
    maintained: bool = field(default=False)
    # Answer-transport report: which codec ships process-mode answers
    # back ("columnar" / "pickle"; "none" = in-process zero-copy), the
    # chunk bound, and the estimated parent-received bytes.
    transport: str = "none"
    chunk_rows: Optional[int] = None
    transfer_bytes: int = 0
    transfer_costs: Tuple[int, ...] = ()
    # Snapshot pinning: the structure version the plan resolves against,
    # and whether that version is pinned by a snapshot (a pinned plan
    # never re-resolves; commits fork away from under it).
    at_version: Optional[int] = None
    pinned: bool = False
    # Replication: queries through a FollowerDatabase report the replica
    # role and how many versions the follower trailed its leader when
    # the plan was resolved (None = primary, lag not applicable).
    role: str = "primary"
    lag: Optional[int] = None
    # Observed runtime layout (None until an Answers handle from this
    # Query actually moved chunks): the transfer-stats report — chunks
    # shipped, bytes and rows received, and per-source attribution
    # keyed by work-unit label (``b0[0:]``-style, or ``shard0`` for
    # sharded gathers) — so ``--explain`` shows what *ran*, not only
    # what was estimated.
    runtime: Optional[dict] = field(default=None, compare=False)

    @property
    def total_cost(self) -> int:
        return sum(self.branch_costs)

    def describe(self) -> str:
        """A human-readable account of the plan (CLI ``--explain``)."""
        if self.transport == "none":
            transport_line = "transport: none (in-process, zero-copy)"
        else:
            transport_line = (
                f"transport: {self.transport} (chunk_rows: {self.chunk_rows}, "
                f"est. {self.transfer_bytes} bytes to parent)"
            )
        lines = [
            f"query: {self.query}",
            f"variables: ({', '.join(self.variables)})",
            f"backend: {self.backend} (requested: {self.backend_requested}, "
            f"count: {self.count_backend}, workers: {self.workers})",
            transport_line,
            f"branches: {self.branch_count}, shards: {len(self.shards)}",
            f"estimated work: {self.total_cost} steps "
            f"(count: {sum(self.count_costs)})",
            f"pipeline: {'trivially ' + str(self.trivial) if self.trivial is not None else 'built'}"
            f"{', cached' if self.cached else ''}"
            f"{', dynamically maintained' if self.maintained else ''}",
        ]
        if self.at_version is not None:
            lines.append(
                f"version: {self.at_version}"
                f"{' (snapshot-pinned)' if self.pinned else ' (live head)'}"
            )
        if self.role != "primary":
            lines.append(
                f"role: {self.role}"
                + (
                    f" (lag: {self.lag} version(s) behind the leader)"
                    if self.lag is not None
                    else ""
                )
            )
        if self.shards:
            layout = ", ".join(
                f"b{branch}[{start}:{'' if stop is None else stop}]"
                for branch, start, stop in self.shards
            )
            lines.append(f"shard layout: {layout}")
        if self.runtime:
            lines.append(
                f"runtime: {self.runtime.get('chunks', 0)} chunk(s), "
                f"{self.runtime.get('bytes_received', 0)} bytes, "
                f"{self.runtime.get('rows', 0)} rows received"
            )
            for label, entry in sorted(
                (self.runtime.get("sources") or {}).items()
            ):
                first_at = entry.get("first_at")
                done_at = entry.get("done_at")
                streamed = (
                    "yes"
                    if first_at is not None
                    and done_at is not None
                    and first_at < done_at
                    else "no"
                )
                lines.append(
                    f"  {label}: chunks={entry.get('chunks', 0)}, "
                    f"bytes={entry.get('bytes', 0)}, "
                    f"rows={entry.get('rows', 0)}, streamed={streamed}"
                )
        return "\n".join(lines)


class Query:
    """One prepared query inside a :class:`repro.session.Database`."""

    def __init__(
        self,
        database,
        formula: Formula,
        order: Optional[Tuple[Var, ...]] = None,
        backend=None,
        skip_mode: Optional[str] = None,
        workers: Optional[int] = None,
        budget=None,
        chunk_rows: Optional[int] = None,
        transport: Optional[str] = None,
        snapshot=None,
    ):
        self._db = database
        self._snapshot = snapshot
        self._formula = formula
        self._order = order
        self._backend = resolve_backend(backend)
        self._skip_mode = skip_mode or database.skip_mode
        self._workers = workers if workers is not None else database.workers
        self._budget = budget
        if chunk_rows is not None and chunk_rows < 1:
            raise EngineError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self._chunk_rows = chunk_rows
        self._transport = resolve_transport(transport) if transport else None
        if snapshot is not None:
            # The query holds its own version pin: it must keep serving
            # the snapshot's version even after the snapshot itself is
            # closed (commits keep forking instead of refreshing this
            # pipeline in place).  Released on garbage collection.
            self._pin = snapshot._pin_for_handle()
            self._pin_finalizer = weakref.finalize(self, self._pin.release)
            self._pipeline, self._key = snapshot._prepare(
                formula, order=order, budget=budget
            )
        else:
            self._pin = None
            self._pin_finalizer = None
            self._pipeline, self._key = database._prepare(
                formula, order=order, budget=budget
            )
        self._resolved_version = self._pipeline.structure.version
        self._cached_count: Optional[Tuple[int, int]] = None
        # The most recent Answers handle this query produced, so
        # explain() can report the observed transfer layout next to the
        # cost-model estimates.
        self._last_answers: Optional[Answers] = None

    # -- plan resolution ----------------------------------------------

    def _resolve(self):
        """The current pipeline: re-resolved after session commits.

        A snapshot-pinned query never re-resolves — it stays on its
        version by contract.  A live query is O(1) while the head is
        unchanged, a cache hit when the plan was dynamically maintained
        (or still fresh), and a rebuild only when the session had to
        invalidate it.
        """
        if self._snapshot is not None:
            return self._pipeline
        if self._db.structure.version != self._resolved_version:
            self._pipeline, self._key = self._db._prepare(
                self._formula, order=self._order, budget=self._budget
            )
            self._resolved_version = self._pipeline.structure.version
        return self._pipeline

    @property
    def snapshot(self):
        """The :class:`~repro.session.snapshot.Snapshot` this query is
        pinned to (``None`` for a live head query)."""
        return self._snapshot

    @contextmanager
    def _pinned(self):
        """Resolve and hold a version pin for one read operation.

        While the pin is held a concurrent commit takes the fork path,
        so the resolved pipeline cannot be refreshed in place mid-read
        (same guarantee :meth:`answers` gives its handles).  Snapshot
        queries are pinned by construction.
        """
        if self._snapshot is not None:
            yield self._resolve()
            return
        while True:
            pipeline = self._resolve()
            pin = self._db._pin_current(self._resolved_version)
            if pin is not None:
                break
        try:
            yield pipeline
        finally:
            pin.release()

    @property
    def pipeline(self):
        """The underlying preprocessing output (current as of this call)."""
        return self._resolve()

    @property
    def formula(self) -> Formula:
        return self._formula

    @property
    def variables(self) -> Tuple[Var, ...]:
        """The free variables, in answer-tuple order."""
        return self._pipeline.variables

    @property
    def arity(self) -> int:
        return self._pipeline.arity

    @property
    def backend(self) -> str:
        """The requested execution strategy ("auto" unless forced)."""
        return self._backend.name

    def _execution_plan(self, pipeline) -> ExecutionPlan:
        return ExecutionPlan(
            pipeline,
            skip_mode=self._skip_mode,
            workers=self._workers,
            spec_key=self._key,
            executor=None,
            pool=self._db.pool,
            chunk_rows=self._chunk_rows,
            transport=self._transport,
        )

    # -- the three operations ------------------------------------------

    def count(self) -> int:
        """``|q(A)|`` (Theorem 2.5).  Cached until the next update
        (snapshot-pinned queries never see one)."""
        with self._pinned() as pipeline:
            if self._snapshot is not None:
                version = self._snapshot.version
            else:
                version = self._resolved_version
            if (
                self._cached_count is not None
                and self._cached_count[0] == version
            ):
                return self._cached_count[1]
            self._db._check_open()
            if pipeline.trivial is not None:
                value = count_answers(pipeline)
            else:
                value = self._backend.count(self._execution_plan(pipeline))
            self._cached_count = (version, value)
            return value

    def test(self, candidate: Sequence[Element]) -> bool:
        """Constant-time membership test (Theorem 2.6)."""
        with self._pinned() as pipeline:
            return test_answer(pipeline, candidate)

    def answers(
        self,
        limit: Optional[int] = None,
        project: Optional[Tuple[int, ...]] = None,
    ) -> Answers:
        """A fresh :class:`Answers` handle (Theorem 2.7, constant delay).

        The handle *pins* the structure version it was planned against:
        a commit that overlaps it forks the database head and leaves the
        pinned version frozen, so the handle streams to completion
        byte-identical to pre-commit serial enumeration — it never
        raises :class:`~repro.errors.StaleResultError` — while the
        ``Query`` itself stays live (re-resolving to the new head).
        Cancel, fully drop, or garbage-collect the handle to release
        the pin.

        ``limit`` is the early-stop path (what ``LIMIT k`` compiles
        to): the handle serves exactly the first ``min(|q(A)|, limit)``
        answers of the serial order, and production stops after that —
        O(limit) enumeration work instead of materializing everything.

        ``project`` keeps only those answer columns, in that order
        (what a qlang SELECT list compiles to).  Rows stay 1:1 with the
        enumeration — duplicates are *not* collapsed — and in process
        mode the drop happens worker-side, before encoding.
        """
        self._db._check_open()
        if self._snapshot is not None:
            pipeline = self._resolve()
            pin = self._snapshot._pin_for_handle()
        else:
            # Pin-or-retry: _pin_current is atomic with commits, so a
            # won pin guarantees the resolved pipeline is never
            # refreshed in place under this handle.
            while True:
                pipeline = self._resolve()
                pin = self._db._pin_current(self._resolved_version)
                if pin is not None:
                    break
        handle = Answers(
            pipeline,
            backend=self._backend,
            skip_mode=self._skip_mode,
            workers=self._workers,
            spec_key=self._key,
            pool=self._db.pool,
            chunk_rows=self._chunk_rows,
            transport=self._transport,
            pin=pin,
            version_source=self._db._head_version,
            row_budget=limit,
            project_columns=project,
        )
        self._last_answers = handle
        return handle

    def answers_encoded(self, chunk_rows: Optional[int] = None) -> EncodedAnswers:
        """The answers as encoded columnar wire chunks.

        The serve tier's passthrough path: chunks come straight off the
        enumeration workers (in process mode never decoded here) and can
        be forwarded byte-for-byte to a network peer, which rebuilds
        rows from :attr:`EncodedAnswers.intern_elements`.  Pin semantics
        match :meth:`answers` — the handle pins its version until
        exhausted, closed, or collected.
        """
        self._db._check_open()
        if self._snapshot is not None:
            pipeline = self._resolve()
            pin = self._snapshot._pin_for_handle()
        else:
            while True:
                pipeline = self._resolve()
                pin = self._db._pin_current(self._resolved_version)
                if pin is not None:
                    break
        return EncodedAnswers(
            pipeline,
            skip_mode=self._skip_mode,
            workers=self._workers,
            spec_key=self._key,
            pool=self._db.pool,
            chunk_rows=chunk_rows if chunk_rows is not None else self._chunk_rows,
            pin=pin,
        )

    def __iter__(self):
        return iter(self.answers())

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release a snapshot-pinned query's version pin.  Idempotent.

        Outstanding :class:`Answers` / :class:`EncodedAnswers` handles
        hold their *own* pins and are unaffected; a live-head query
        holds no pin and this is a no-op.  The serve tier calls this as
        soon as a cursor's handle exists, so each cursor costs exactly
        one pinned version against the retention budget.
        """
        pin, self._pin = self._pin, None
        if self._pin_finalizer is not None:
            self._pin_finalizer.detach()
            self._pin_finalizer = None
        if pin is not None:
            pin.release()

    # -- introspection -------------------------------------------------

    def explain(self) -> QueryPlan:
        """The chosen plan: branches, shards, backend, cost estimates.

        After an :meth:`answers` handle from this query has actually
        moved chunks, the plan additionally carries ``runtime`` — the
        observed transfer layout (chunks shipped, bytes and rows
        received, per-work-unit attribution with streamed-before-done
        flags) from the handle's :class:`TransferStats`."""
        pipeline = self._resolve()
        plan = self._execution_plan(pipeline)
        if pipeline.trivial is not None:
            mode, workers = "serial", 1
            count_mode = "serial"
        elif isinstance(self._backend, PoolBackend):
            mode, workers = self._backend.resolve(plan)
            count_mode, _ = self._backend.resolve_count(plan)
        else:
            # A custom backend decides internally; report its name.
            mode, workers = self._backend.name, plan.workers or 0
            count_mode = self._backend.name
        shards: Tuple[Tuple[int, int, Optional[int]], ...] = ()
        if pipeline.trivial is None and mode != "serial":
            shards = tuple(plan_work_units(pipeline, workers))
        transport = "none"
        chunk_rows: Optional[int] = None
        transfer_bytes = 0
        transfer_costs: Tuple[int, ...] = ()
        if pipeline.trivial is None and mode == "process":
            transport = resolve_transport(self._transport)
            transfer_costs = tuple(transfer_works(pipeline, transport))
            rows = _estimated_rows(pipeline)
            arity = pipeline.arity
            if transport == "columnar":
                chunk_rows = resolve_chunk_rows(pipeline, self._chunk_rows)
                id_width = width_for(max(pipeline.structure.cardinality - 1, 0))
                transfer_bytes = estimate_encoded_bytes(
                    rows, arity, id_width, chunk_rows
                )
            else:
                transfer_bytes = rows * arity * PICKLE_BYTES_PER_VALUE
        return QueryPlan(
            query=str(self._formula),
            variables=tuple(v.name for v in pipeline.variables),
            backend_requested=self._backend.name,
            backend=mode,
            count_backend=count_mode,
            workers=workers,
            branch_count=pipeline.branch_count,
            shards=shards,
            branch_costs=tuple(branch_works(pipeline)),
            count_costs=tuple(count_works(pipeline)),
            trivial=pipeline.trivial,
            cached=self._key is not None,
            maintained=self._db._is_maintained(self._key),
            transport=transport,
            chunk_rows=chunk_rows,
            transfer_bytes=transfer_bytes,
            transfer_costs=transfer_costs,
            at_version=self._resolved_version,
            pinned=self._snapshot is not None,
            runtime=self._observed_runtime(),
        )

    def _observed_runtime(self) -> Optional[dict]:
        """The last handle's transfer report, if anything actually ran."""
        handle = self._last_answers
        if handle is None:
            return None
        stats = handle.transport_stats
        if stats is None or not stats.chunks:
            return None
        runtime = stats.as_dict()
        runtime["backend_used"] = handle.backend_used
        return runtime

    def stats(self) -> dict:
        """Preprocessing statistics (graph size, branches, radii, ...)."""
        return self._resolve().stats()

    def __repr__(self) -> str:
        return (
            f"Query({str(self._formula)!r}, backend={self._backend.name!r})"
        )
