"""Snapshot-isolated reads: one pinned version, the full query surface.

``db.snapshot()`` returns a :class:`Snapshot` — an immutable view of the
database at the fingerprint/version the call observed.  Reads through it
(``snapshot.query(...)`` → :class:`~repro.session.query.Query` →
:class:`~repro.session.answers.Answers`, sync *and* async) never block
writers and never go stale: while a snapshot (or any answers handle)
pins a version, a committing transaction moves the database head to a
copy-on-write fork and freezes the old structure, so the pinned readers
keep enumerating their version byte-identically — no
:class:`~repro.errors.StaleResultError` on the session API.

Pinning also retains the version's cached pipelines
(:meth:`repro.engine.cache.PipelineCache.retain`): repeated snapshot
queries stay cache-hits.  Closing the snapshot (``close()`` /
``with`` / garbage collection) releases the pin; once the last pin on a
superseded version drops, its derived state is purged.
"""

from __future__ import annotations

import weakref
from typing import Hashable, Optional, Sequence, Union

from repro.engine.cache import coerce_order
from repro.errors import EngineError, StaleResultError
from repro.fo import coerce_formula
from repro.fo.syntax import Formula, Var
from repro.qlang import compile_select, is_select, parse_select
from repro.session.query import Query
from repro.structures.structure import Structure

Element = Hashable


class Snapshot:
    """An immutable, version-pinned read view of one :class:`Database`.

    Quick start::

        with db.snapshot() as snap:
            q = snap.query("B(x) & R(y) & ~E(x,y)")
            before = q.answers().all()
            db.apply(changeset)          # writers proceed freely
            assert q.answers().all() == before   # pinned, byte-identical

    The snapshot observes exactly the facts present when
    ``db.snapshot()`` ran; commits after that are invisible to it.  It
    shares the session's pipeline cache, worker pool, and backends —
    only the structure version is pinned.
    """

    def __init__(
        self,
        database,
        structure: Structure,
        fingerprint: str,
        version: int,
        pin,
        tag: Optional[str] = None,
    ):
        self._db = database
        self._structure = structure
        self._fingerprint = fingerprint
        self._version = version
        # The generation-tagged cache/pin key (distinct from the pure
        # content fingerprint: a later head returning to this content
        # must not reach this version's cached pipelines).
        self._tag = tag if tag is not None else fingerprint
        self._pin = pin
        self._closed = False
        # GC safety net: a dropped-without-close snapshot must not pin
        # its version (and retain its cached pipelines) forever.
        self._finalizer = weakref.finalize(self, pin.release)

    # -- introspection -------------------------------------------------

    @property
    def structure(self) -> Structure:
        """The pinned structure (do not mutate; frozen once superseded)."""
        return self._structure

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def version(self) -> int:
        return self._version

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this Snapshot is closed")
        self._db._check_open()
        if self._structure.version != self._version:
            # Only a *direct* structure mutation (bypassing the session)
            # can move a pinned structure; the legacy uncoordinated
            # contract applies.
            raise StaleResultError(
                "the snapshot's structure was mutated directly (version "
                f"{self._version} -> {self._structure.version}); "
                "snapshot isolation only covers session commits"
            )

    # -- the read surface ----------------------------------------------

    def query(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        backend=None,
        skip_mode: Optional[str] = None,
        workers: Optional[int] = None,
        budget=None,
        chunk_rows: Optional[int] = None,
        transport: Optional[str] = None,
    ) -> Query:
        """Plan ``query`` against the pinned version.

        Same surface as :meth:`Database.query`; the returned
        :class:`Query` (and every :class:`Answers` handle it creates)
        stays on this snapshot's version no matter what commits later.

        qlang ``SELECT`` statements compile here too — against the
        pinned version — and return a
        :class:`repro.qlang.CompiledQuery`.
        """
        self._check_open()
        if isinstance(query, str) and is_select(query):
            if order is not None:
                raise EngineError(
                    "a qlang SELECT statement fixes its own column "
                    "order; drop the order= argument"
                )
            return compile_select(
                parse_select(query),
                self,
                backend=backend,
                skip_mode=skip_mode,
                workers=workers,
                budget=budget,
                chunk_rows=chunk_rows,
                transport=transport,
            )
        return Query(
            self._db,
            coerce_formula(query),
            order=coerce_order(order),
            backend=backend,
            skip_mode=skip_mode,
            workers=workers,
            budget=budget,
            chunk_rows=chunk_rows,
            transport=transport,
            snapshot=self,
        )

    def count(self, query, order=None, **options) -> int:
        """Convenience: ``snapshot.query(...).count()``."""
        return self.query(query, order=order, **options).count()

    def test(self, query, candidate: Sequence[Element], **options) -> bool:
        """Convenience: ``snapshot.query(...).test(candidate)``."""
        return self.query(query, **options).test(candidate)

    # -- plumbing for Query/Answers ------------------------------------

    def _prepare(self, formula, order=None, budget=None):
        db = self._db
        db._structure_lock.acquire_read()
        try:
            return db._prepare_at(
                self._structure,
                self._tag,
                coerce_formula(formula),
                coerce_order(order),
                budget,
            )
        finally:
            db._structure_lock.release_read()

    def _pin_for_handle(self):
        """A fresh pin for an :class:`Answers` handle derived from this
        snapshot (the handle may outlive the snapshot's own pin)."""
        return self._db._retain(self._tag)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Release the version pin.  Idempotent.

        Outstanding :class:`Answers` handles created through this
        snapshot hold their own pins and keep working; new
        ``snapshot.query(...)`` calls raise.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        self._pin.release()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Snapshot(version={self._version}, "
            f"fingerprint={self._fingerprint[:12]}..., {state})"
        )
