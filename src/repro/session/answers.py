"""The one answers handle: paged / streamed / counted, sync *and* async.

:class:`Answers` unifies what used to be two objects —
``repro.engine.batch.ResultHandle`` (sync pulls) and
``repro.engine.aio.AsyncResultHandle`` (awaitable facade) — behind a
single handle returned by :meth:`repro.session.Query.answers`:

* **sync**: ``page`` / ``stream`` / ``all`` / ``count`` / ``test`` /
  ``cancel`` / ``for answer in answers``;
* **async**: ``apage`` / ``astream`` / ``aall`` / ``acount`` / ``atest``
  / ``acancel`` / ``async for answer in answers`` — blocking pulls run on
  a worker thread, the loop never stalls, and cancelling the awaiting
  task propagates into the engine (pool slots are released instead of
  computing unread answers).

Semantics shared by both faces:

* answers materialize in branch-index order (shards in slice order), so
  the full sequence is byte-identical to serial enumeration;
* the handle is *pinned* to the structure version it was planned
  against: a session handle holds a version pin, so a concurrent
  commit forks the database head and leaves this handle's version
  frozen — it streams to completion byte-identically, and never raises
  :class:`repro.errors.StaleResultError`.  The pin is released the
  moment the source is exhausted (``all()`` / a drained ``stream()`` /
  ``astream()`` / a page past the end): a fully-consumed handle is
  *sealed* — complete and self-contained, serving its materialized
  answers forever — so retaining it cannot force copy-on-write forks
  on later commits.  Cancel and garbage collection release the pin
  too.  Only a *direct* structure mutation (bypassing the session)
  still raises on an unsealed handle, and the legacy engine facades
  (``ResultHandle``) keep the historical raise-on-any-commit contract
  via ``stale_policy="raise"``;
* after :meth:`cancel`, every access raises
  :class:`repro.errors.CancelledResultError`; a cancelled handle never
  serves the partial prefix it may have pulled.

The legacy classes remain importable as thin shims over this one.
"""

from __future__ import annotations

import asyncio
import threading
import weakref
from itertools import islice
from typing import (
    AsyncIterator,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.counting import trivial_count
from repro.core.enumeration import trivial_answers
from repro.core.pipeline import Pipeline
from repro.core.testing import test_answer
from repro.engine.executor import resolve_chunk_rows, run_branches_raw
from repro.engine.pool import WorkerPool
from repro.engine.transport import TransferStats
from repro.errors import (
    CancelledResultError,
    EngineError,
    QueryError,
    StaleResultError,
)
from repro.session.backends import (
    ExecutionBackend,
    ExecutionPlan,
    resolve_backend,
)

Element = Hashable
Answer = Tuple[Element, ...]

DEFAULT_PAGE_SIZE = 100


class Answers:
    """Unified access to one prepared query's answer sequence.

    The *merge* is lazy — pages pull only as many branch chunks as they
    need.  In serial mode partial consumption only pays for the branches
    it touched; in thread/process mode every work unit is submitted to
    the pool on first access (they compute concurrently), and laziness
    governs only when results are drained.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        backend: Optional[ExecutionBackend] = None,
        skip_mode: str = "lazy",
        workers: Optional[int] = None,
        spec_key: Optional[tuple] = None,
        executor=None,
        pool: Optional[WorkerPool] = None,
        chunk_rows: Optional[int] = None,
        transport: Optional[str] = None,
        pin=None,
        version_source=None,
        stale_policy: str = "pin",
        row_budget: Optional[int] = None,
        project_columns: Optional[Tuple[int, ...]] = None,
    ):
        if stale_policy not in ("pin", "raise"):
            raise EngineError(
                f"stale_policy must be 'pin' or 'raise', got {stale_policy!r}"
            )
        if row_budget is not None and row_budget < 0:
            raise EngineError(
                f"row_budget must be >= 0, got {row_budget}"
            )
        self._row_budget = row_budget
        if project_columns is not None:
            project_columns = tuple(project_columns)
            if any(
                not isinstance(i, int) or i < 0 or i >= pipeline.arity
                for i in project_columns
            ):
                raise EngineError(
                    f"project_columns {project_columns!r} out of range for "
                    f"arity {pipeline.arity}"
                )
        self._project_columns = project_columns
        self._pipeline = pipeline
        self._structure = pipeline.structure
        self._version = pipeline.structure.version
        # Snapshot pinning: `pin` keeps the session from refreshing this
        # pipeline in place (commits fork instead); `version_source`
        # reports the database head's version so `stale` stays
        # informative across forks; policy "raise" restores the legacy
        # raise-on-any-commit contract for the engine facades.
        self._pin = pin
        self._version_source = version_source
        self._source_version = (
            version_source() if version_source is not None else None
        )
        self._stale_policy = stale_policy
        self._pin_finalizer = (
            weakref.finalize(self, pin.release) if pin is not None else None
        )
        self._backend = resolve_backend(backend)
        self._plan = ExecutionPlan(
            pipeline,
            skip_mode=skip_mode,
            workers=workers,
            spec_key=spec_key,
            executor=executor,
            pool=pool,
            chunk_rows=chunk_rows,
            transport=transport,
            transfer_stats=TransferStats(),
            row_budget=row_budget,
            project_columns=project_columns,
        )
        self._answers: List[Answer] = []
        self._source: Optional[Iterator[List[Answer]]] = None
        self._count: Optional[int] = None
        self._done = False
        self._sealed = False
        self._answer_set: Optional[set] = None
        self._cancelled = False
        # Async machinery (created lazily on first awaitable access).
        self._alock: Optional[asyncio.Lock] = None
        self._sync = threading.Lock()
        self._pull_active = False
        self._cancel_requested = False

    # -- introspection -------------------------------------------------

    @property
    def backend(self) -> str:
        """The requested strategy name (``auto`` until forced)."""
        return self._backend.name

    @property
    def backend_used(self) -> Optional[str]:
        """The concrete mode enumeration ran under (None before any pull,
        ``"serial"`` for trivial pipelines)."""
        return self._plan.used_mode

    @property
    def count_backend_used(self) -> Optional[str]:
        """The concrete mode the count ran under (None before count())."""
        return self._plan.used_count_mode

    @property
    def transport_used(self) -> Optional[str]:
        """The answer transport of the last run (``"columnar"`` /
        ``"pickle"`` in process mode, ``"none"`` for in-process zero-copy,
        ``None`` before any pull)."""
        return self._plan.used_transport

    @property
    def transport_stats(self):
        """Received-bytes accounting of the columnar transport
        (:class:`repro.engine.transport.TransferStats`; zeros for
        in-process modes and the pickle transport)."""
        return self._plan.transfer_stats

    # -- liveness ------------------------------------------------------

    def _check_live(self) -> None:
        if self._cancelled:
            raise CancelledResultError("this answers handle was cancelled")
        if self._sealed:
            # Complete and self-contained: the answers are materialized
            # and the pin is gone, so later commits — which may refresh
            # the shared pipeline in place — cannot perturb what this
            # handle serves.
            return
        if self._structure.version != self._version:
            # Session commits can never move a pinned handle's structure
            # (they fork the head instead); only a direct mutation — or,
            # for un-pinned legacy handles, an in-place commit — lands
            # here.
            raise StaleResultError(
                "the structure changed after this handle was created "
                f"(version {self._version} -> {self._structure.version}); "
                "re-run the query"
            )
        if (
            self._stale_policy == "raise"
            and self._version_source is not None
            and self._version_source() != self._source_version
        ):
            raise StaleResultError(
                "the database committed past this handle (version "
                f"{self._source_version} -> {self._version_source()}); "
                "re-run the query (session handles pin their version "
                "instead of raising)"
            )

    @property
    def stale(self) -> bool:
        """Whether the database moved past this handle's version.

        A pinned session handle keeps serving its version byte-
        identically even when stale — staleness is informative, not an
        error, unless the legacy ``stale_policy="raise"`` applies.
        """
        if self._structure.version != self._version:
            return True
        if self._version_source is not None:
            return self._version_source() != self._source_version
        return False

    @property
    def pinned(self) -> bool:
        """True while this handle holds a version pin on its session."""
        return self._pin is not None and not self._pin.released

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def row_budget(self):
        """The early-stop bound this handle was created with (``None``
        = unbudgeted): it serves at most this many answers."""
        return self._row_budget

    @property
    def project_columns(self):
        """The SELECT-list pushdown this handle was created with
        (``None`` = full answer tuples): each served row keeps only
        these answer columns, in this order."""
        return self._project_columns

    # -- lazy production -----------------------------------------------

    def _ensure_source(self) -> None:
        if self._source is not None or self._done:
            return
        if self._pipeline.trivial is not None:
            self._plan.used_mode = "serial"
            self._plan.used_transport = "none"
            answers = trivial_answers(self._pipeline)
            if self._project_columns is not None:
                columns = self._project_columns
                answers = (
                    tuple(row[i] for i in columns) for row in answers
                )
            if self._row_budget is not None:
                answers = islice(answers, self._row_budget)
            self._source = iter([list(answers)])
        else:
            self._source = self._backend.run(self._plan)

    def _pull(self, needed: Optional[int]) -> None:
        """Materialize branch chunks until ``needed`` answers (or all)."""
        self._ensure_source()
        while not self._done and (
            needed is None or len(self._answers) < needed
        ):
            assert self._source is not None
            try:
                chunk = next(self._source)
            except StopIteration:
                self._done = True
                self._source = None
                self._seal()
            except BaseException:
                # A worker failure mid-production leaves a dead generator
                # and an unusable prefix; reset so a retry re-executes
                # from scratch instead of serving partial answers as if
                # they were complete.
                self._source = None
                self._answers = []
                raise
            else:
                self._answers.extend(chunk)

    def _seal(self) -> None:
        """Exhaustion makes the handle self-contained: release the pin.

        The fork-proliferation fix — a fully-consumed handle no longer
        forces copy-on-write forks on every later commit.  The answer
        count and a membership set are fixed from the materialized list
        (enumeration partitions the answer set exactly, so both agree
        with the counting/testing algorithms at the pinned version), and
        the staleness check is retired: nothing this handle serves can
        change anymore.  Legacy ``stale_policy="raise"`` handles keep
        their historical contract and never seal.
        """
        if self._sealed or self._stale_policy != "pin":
            return
        self._sealed = True
        if self._count is None:
            self._count = len(self._answers)
        self._answer_set = set(self._answers)
        self._release_pin()

    # -- the synchronous access paths ----------------------------------

    def page(self, index: int, size: int = DEFAULT_PAGE_SIZE) -> List[Answer]:
        """The ``index``-th page (0-based) of ``size`` answers.

        Liveness comes first: a cancelled (or stale) handle raises its
        liveness error even for malformed page arguments, so sealed,
        unsealed, and cancelled handles present one error contract.
        """
        self._check_live()
        if index < 0 or size < 1:
            raise EngineError(
                f"bad page request (index={index}, size={size})"
            )
        self._pull((index + 1) * size)
        return self._answers[index * size : (index + 1) * size]

    def stream(self) -> Iterator[Answer]:
        """Yield answers one by one; staleness is re-checked per answer."""
        position = 0
        while True:
            self._check_live()
            if position < len(self._answers):
                yield self._answers[position]
                position += 1
                continue
            if self._done:
                return
            before = len(self._answers)
            self._pull(before + 1)
            if len(self._answers) == before and self._done:
                return

    def all(self) -> List[Answer]:
        """Materialize and return every answer (serial order)."""
        self._check_live()
        self._pull(None)
        return list(self._answers)

    def count(self) -> int:
        """``|q(A)|`` via the counting algorithm (no enumeration).

        Per-branch counts run through the backend (cost-model decided for
        ``auto``, over the session pool when one is attached); the result
        is exactly :func:`repro.core.counting.count_answers`.  Cached: the
        handle is pinned to one structure version (any mutation raises),
        so the count can never go stale.  After :meth:`cancel` this raises
        :class:`repro.errors.CancelledResultError` — it never computes
        from, or returns, a partially pulled handle.
        """
        self._check_live()
        if self._count is None:
            if self._row_budget is not None:
                # A budgeted handle counts what it *serves*:
                # min(|q(A)|, budget).  Materializing is O(budget) rows
                # thanks to the early-stop path, and seals the handle.
                self._pull(None)
                self._count = len(self._answers)
            elif self._pipeline.trivial is not None:
                self._plan.used_count_mode = "serial"
                self._count = trivial_count(self._pipeline)
            else:
                self._count = self._backend.count(self._plan)
        return self._count

    def test(self, candidate: Sequence[Element]) -> bool:
        """Constant-time membership test against this query.

        A sealed handle answers from its materialized answer set (the
        shared pipeline may since have been maintained past this
        handle's version) with the same error contract as the testing
        algorithm: :class:`~repro.errors.QueryError` on arity mismatch
        or out-of-domain elements.  A *budgeted* handle serves only its
        first ``row_budget`` answers, so membership means "in the
        served prefix" — it materializes (O(budget)) and checks that.
        """
        self._check_live()
        if self._row_budget is not None or self._project_columns is not None:
            # Budgeted / projected handles serve a derived row sequence;
            # membership is against the rows actually served, so
            # materialize and answer from the sealed set.
            self._pull(None)
        if self._sealed:
            candidate = tuple(candidate)
            arity = (
                len(self._project_columns)
                if self._project_columns is not None
                else self._pipeline.arity
            )
            if len(candidate) != arity:
                raise QueryError(
                    f"expected a {arity}-tuple, got "
                    f"{len(candidate)}-tuple"
                )
            for element in candidate:
                if element not in self._structure:
                    raise QueryError(
                        f"element {element!r} is not in the domain"
                    )
            assert self._answer_set is not None
            return candidate in self._answer_set
        return test_answer(self._pipeline, candidate)

    def cancel(self) -> None:
        """Stop producing; subsequent access raises CancelledResultError.

        Safe to call from any thread, including while an async pull is in
        flight on a worker thread: the handle is marked cancelled
        immediately (later accesses raise), but closing the branch
        generator — which cannot happen while it is executing — is
        deferred until that pull retires.
        """
        if self._cancelled:
            return
        self._cancelled = True
        self._release_pin()
        with self._sync:
            if self._pull_active:
                self._cancel_requested = True
                return
        self._close_source()

    def _release_pin(self) -> None:
        """Give the version pin back to the session (idempotent)."""
        pin, self._pin = self._pin, None
        if self._pin_finalizer is not None:
            self._pin_finalizer.detach()
            self._pin_finalizer = None
        if pin is not None:
            pin.release()

    def _close_source(self) -> None:
        source, self._source = self._source, None
        if source is not None and hasattr(source, "close"):
            source.close()

    def __iter__(self) -> Iterator[Answer]:
        return self.stream()

    # -- the awaitable access paths ------------------------------------
    #
    # One lock serializes async access: the sync pull path is not
    # re-entrant, and one query's answers arrive in one order anyway.
    # Concurrency across *different* handles is the intended scaling
    # axis.  Cancellation must never run concurrently with a pull (the
    # branch generator cannot be closed while executing), so a cancel
    # arriving during an in-flight pull is deferred to its retirement.

    def _async_lock(self) -> asyncio.Lock:
        if self._alock is None:
            self._alock = asyncio.Lock()
        return self._alock

    async def _acall(self, fn, *args):
        async with self._async_lock():
            loop = asyncio.get_running_loop()
            with self._sync:
                self._pull_active = True
            future = loop.run_in_executor(None, self._pull_wrapper, fn, args)
            try:
                # shield: a task cancellation must not cancel the inner
                # future — the wrapper is guaranteed to run (and retire
                # the pull) even if it was still queued when cancelled.
                return await asyncio.shield(future)
            except asyncio.CancelledError:
                # The worker thread cannot be interrupted mid-pull;
                # request cancellation — it lands the moment the
                # in-flight pull retires, releasing its pool futures.
                self._cancel_quietly()
                # The abandoned pull's outcome is intentionally unread.
                future.add_done_callback(
                    lambda f: f.exception() if not f.cancelled() else None
                )
                raise

    def _pull_wrapper(self, fn, args):
        """Run one blocking pull; honor a cancel deferred while it ran."""
        try:
            return fn(*args)
        finally:
            with self._sync:
                self._pull_active = False
                requested = self._cancel_requested
                self._cancel_requested = False
            if requested:
                self._close_source()

    def _cancel_quietly(self) -> None:
        """Cancel without raising (cancel() defers past in-flight pulls)."""
        try:
            self.cancel()
        except Exception:  # pragma: no cover - cancel() does not raise today
            pass

    async def apage(
        self, index: int, size: int = DEFAULT_PAGE_SIZE
    ) -> List[Answer]:
        """The ``index``-th page, pulled off-loop."""
        return await self._acall(self.page, index, size)

    async def aall(self) -> List[Answer]:
        """Every answer (serial order), pulled off-loop."""
        return await self._acall(self.all)

    async def acount(self) -> int:
        """``|q(A)|`` via the (possibly parallel) counting engine."""
        return await self._acall(self.count)

    async def atest(self, candidate: Sequence[Element]) -> bool:
        """Constant-time membership test, off-loop."""
        return await self._acall(self.test, candidate)

    def astream(
        self, page_size: int = DEFAULT_PAGE_SIZE
    ) -> "_AnswerStream":
        """An async iterator over the answers; pulls happen a page at a
        time (off-loop).

        Abandoning the stream (``break``, task cancellation, ``aclose``)
        cancels the handle — a partially consumed stream does not keep
        pool workers busy, and its version pin is released the moment
        the abandonment is observable: a ``CancelledError`` landing in a
        pull releases it before propagating, and a task cancelled while
        the iterator sits *between* pulls releases it when the dead
        task's frame drops the iterator (synchronous refcount
        finalization — not the event loop's lazily-scheduled
        async-generator cleanup, which used to leak the pin until loop
        shutdown).  A fully drained stream seals the handle instead.
        """
        return _AnswerStream(self, page_size)

    def _abandoned_stream(self) -> None:
        """Release an abandoned :meth:`astream` iterator's hold.

        Called from the iterator's finalizer (any thread) and from its
        error paths; a sealed or already-cancelled handle needs nothing
        — cancelling a *sealed* handle would only revoke answers it can
        serve forever.
        """
        if not self._sealed and not self._cancelled:
            self._cancel_quietly()

    async def acancel(self) -> None:
        """Cancel the handle (deferred past any in-flight pull)."""
        async with self._async_lock():
            self._cancel_quietly()

    def __aiter__(self) -> AsyncIterator[Answer]:
        return self.astream()


class _AnswerStream:
    """The async iterator behind :meth:`Answers.astream`.

    A dedicated iterator object instead of an async generator, because
    abandonment must be *deterministic*: an abandoned async generator's
    ``finally`` runs only when the event loop gets around to its
    scheduled ``aclose()`` (or at ``shutdown_asyncgens``), which left
    the handle's version pin held long after the consuming task was
    cancelled mid-iteration.  Here every abandonment path is synchronous:

    * cancellation landing in a pull is caught in :meth:`__anext__` and
      cancels the handle before re-raising;
    * a task cancelled while the iterator is suspended *between* pulls
      drops its last reference when the task's frame is destroyed — the
      ``weakref.finalize`` below then cancels the handle immediately
      (refcount finalization, no collector pass needed);
    * clean exhaustion detaches the finalizer first, so a fully drained
      stream leaves the handle sealed (pin already released), never
      cancelled.
    """

    __slots__ = (
        "_handle",
        "_page_size",
        "_index",
        "_buffer",
        "_pos",
        "_ending",
        "_finished",
        "_finalizer",
        "__weakref__",
    )

    def __init__(self, handle: Answers, page_size: int):
        if page_size < 1:
            raise EngineError(f"page_size must be >= 1, got {page_size}")
        self._handle = handle
        self._page_size = page_size
        self._index = 0
        self._buffer: List[Answer] = []
        self._pos = 0
        self._ending = False  # final (short) page pulled; drain and stop
        self._finished = False
        self._finalizer = weakref.finalize(self, handle._abandoned_stream)

    def _finish(self, cancel: bool) -> None:
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._finished = True
        if cancel:
            self._handle._abandoned_stream()

    def __aiter__(self) -> "_AnswerStream":
        return self

    async def __anext__(self) -> Answer:
        if self._pos < len(self._buffer):
            answer = self._buffer[self._pos]
            self._pos += 1
            return answer
        if self._finished or self._ending:
            self._finish(cancel=False)
            raise StopAsyncIteration
        handle = self._handle
        try:
            page = await handle._acall(handle.page, self._index, self._page_size)
        except BaseException:
            # CancelledError from a torn-down task, StaleResultError,
            # worker failures — the stream is over either way; release
            # the handle's hold before propagating.
            self._finish(cancel=True)
            raise
        self._index += 1
        if len(page) < self._page_size:
            self._ending = True
        if not page:
            self._finish(cancel=False)
            raise StopAsyncIteration
        self._buffer = page
        self._pos = 1
        return page[0]

    async def aclose(self) -> None:
        """Close the stream; cancels the handle unless fully drained."""
        if self._finished:
            return
        drained = self._ending and self._pos >= len(self._buffer)
        self._finish(cancel=not drained)


class EncodedAnswers:
    """One query's answers as *encoded* columnar wire chunks.

    The substrate of the serve tier's ``wire="columnar"`` cursors:
    :meth:`chunks` yields the byte buffers produced by
    :func:`repro.engine.executor.run_branches_raw` — in process mode
    they come straight off the workers, never decoded in this process
    (``transport_stats.rows`` stays 0), so a server can forward them
    worker→socket.  The receiving side rebuilds rows with
    ``ColumnarCodec(InternTable(intern_elements))``; concatenated, they
    equal the serial enumeration order exactly.

    Pin semantics match :class:`Answers`: the handle holds a version
    pin, released on exhaustion, :meth:`close`, or garbage collection —
    never leaked.  The stream is forward-only and single-consumer.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        skip_mode: str = "lazy",
        workers: Optional[int] = None,
        spec_key: Optional[tuple] = None,
        pool: Optional[WorkerPool] = None,
        chunk_rows: Optional[int] = None,
        pin=None,
    ):
        self._pipeline = pipeline
        self._skip_mode = skip_mode
        self._workers = workers
        self._spec_key = spec_key
        self._pool = pool
        self._requested_chunk_rows = chunk_rows
        self._stats = TransferStats()
        self._pin = pin
        self._pin_finalizer = (
            weakref.finalize(self, pin.release) if pin is not None else None
        )
        self._source: Optional[Iterator[bytes]] = None
        self._closed = False
        self._exhausted = False

    # -- introspection -------------------------------------------------

    @property
    def columns(self) -> Tuple[str, ...]:
        """Answer column names, in row order."""
        return tuple(v.name for v in self._pipeline.variables)

    @property
    def arity(self) -> int:
        return self._pipeline.arity

    @property
    def intern_elements(self) -> list:
        """The intern table's element list, in id order — ship this once
        (it is the entire decode context a receiver needs)."""
        return list(self._pipeline.intern_table.elements)

    @property
    def chunk_rows(self) -> int:
        """The resolved per-chunk row bound."""
        return resolve_chunk_rows(self._pipeline, self._requested_chunk_rows)

    @property
    def transport_stats(self) -> TransferStats:
        """Byte/chunk accounting; ``rows`` counts *decoded* rows and
        stays 0 on the passthrough path — the acceptance observable."""
        return self._stats

    @property
    def pinned(self) -> bool:
        return self._pin is not None and not self._pin.released

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    # -- the stream ----------------------------------------------------

    def next_chunk(self) -> Optional[bytes]:
        """The next encoded chunk, or ``None`` at end of stream
        (blocking; run off-loop in async servers)."""
        if self._closed:
            raise EngineError("this EncodedAnswers stream is closed")
        if self._exhausted:
            return None
        if self._source is None:
            self._source = run_branches_raw(
                self._pipeline,
                workers=self._workers,
                skip_mode=self._skip_mode,
                spec_key=self._spec_key,
                pool=self._pool,
                chunk_rows=self._requested_chunk_rows,
                transfer_stats=self._stats,
            )
        try:
            return next(self._source)
        except StopIteration:
            self._exhausted = True
            self._source = None
            self._release_pin()
            return None
        except BaseException:
            self.close()
            raise

    def chunks(self) -> Iterator[bytes]:
        """Iterate the encoded chunks (single consumer, forward only)."""
        while True:
            buf = self.next_chunk()
            if buf is None:
                return
            yield buf

    # -- lifecycle -----------------------------------------------------

    def _release_pin(self) -> None:
        pin, self._pin = self._pin, None
        if self._pin_finalizer is not None:
            self._pin_finalizer.detach()
            self._pin_finalizer = None
        if pin is not None:
            pin.release()

    def close(self) -> None:
        """Stop producing and release the version pin.  Idempotent.

        Abandons any un-pulled work units (their pool futures are
        cancelled through the source generator's close).
        """
        if self._closed:
            return
        self._closed = True
        source, self._source = self._source, None
        if source is not None:
            source.close()
        self._release_pin()

    def __enter__(self) -> "EncodedAnswers":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = (
            "closed"
            if self._closed
            else ("exhausted" if self._exhausted else "open")
        )
        return (
            f"EncodedAnswers(arity={self.arity}, "
            f"chunks={self._stats.chunks}, {state})"
        )
