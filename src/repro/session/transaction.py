"""Transactional batch updates for the session API.

The paper's dynamic theorem keeps constant-delay enumeration alive under
single-tuple updates via local recomputation; a service, though, sees
*changesets* — bursts of inserts and deletes that should pay the
bookkeeping once, not once per fact.  This module provides the write
surface of :class:`repro.session.Database`:

* :class:`Changeset` — an ordered, signature-validated buffer of
  ``(insert, relation, elements)`` operations with replay semantics
  identical to ``add_fact``/``remove_fact`` one-by-one;
* :class:`Transaction` — the ``with db.transaction() as tx:`` context
  manager that buffers ``tx.insert_fact`` / ``tx.remove_fact`` /
  ``tx.insert_many`` and commits atomically on clean exit (an exception
  rolls back by discarding the buffer — the database is untouched);
* :class:`CommitResult` — what a commit reports: submitted vs effective
  ops, version and fingerprint movement, how many cached plans were
  maintained in one pass, and whether the commit had to fork the
  structure because live snapshots pinned the old version.

A commit costs one structure-lock acquisition, one rolling-fingerprint
roll, one :class:`repro.core.dynamic.PipelineMaintainer` pass per cached
plan over the *whole* batch, and one cache re-key — regardless of the
changeset size.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.dynamic import UpdateOp
from repro.errors import SignatureError, TransactionError
from repro.structures.signature import Signature
from repro.structures.structure import Structure

Element = Hashable

_INSERT_WORDS = {"insert", "add", "+", "i"}
_REMOVE_WORDS = {"remove", "delete", "-", "d"}


def coerce_op(op) -> UpdateOp:
    """Normalize one changeset operation to ``(insert, relation, elements)``.

    Accepts the canonical triple with a bool flag, or the spelled-out
    forms ``("insert"|"remove", relation, elements)`` the CLI and JSONL
    loader produce.
    """
    try:
        kind, relation, elements = op
    except (TypeError, ValueError):
        raise TransactionError(
            f"changeset operations are (op, relation, elements) triples; "
            f"got {op!r}"
        ) from None
    if isinstance(kind, str):
        word = kind.lower()
        if word in _INSERT_WORDS:
            insert = True
        elif word in _REMOVE_WORDS:
            insert = False
        else:
            raise TransactionError(
                f"unknown changeset op {kind!r}; use 'insert' or 'remove'"
            )
    else:
        insert = bool(kind)
    if not isinstance(relation, str):
        raise TransactionError(
            f"relation name must be a string, got {relation!r}"
        )
    try:
        elements = tuple(elements)
    except TypeError:
        raise TransactionError(
            f"elements of {relation!r} must be a sequence, got {elements!r}"
        ) from None
    return insert, relation, elements


class Changeset:
    """An ordered buffer of fact updates, validated against a signature.

    Validation happens at *record* time (unknown symbol, wrong arity,
    and — when a structure is bound — elements outside the domain), so a
    malformed changeset never reaches the commit path: atomic commits
    need every precondition checked before the first mutation.
    """

    def __init__(
        self,
        signature: Optional[Signature] = None,
        structure: Optional[Structure] = None,
        ops: Optional[Iterable] = None,
    ):
        if structure is not None and signature is None:
            signature = structure.signature
        self._signature = signature
        self._structure = structure
        self._ops: List[UpdateOp] = []
        for op in ops or ():
            insert, relation, elements = coerce_op(op)
            self._record(insert, relation, elements)

    def _record(
        self, insert: bool, relation: str, elements: Tuple[Element, ...]
    ) -> None:
        if self._signature is not None:
            symbol = self._signature.symbol(relation)  # raises SignatureError
            if len(elements) != symbol.arity:
                raise SignatureError(
                    f"{relation} has arity {symbol.arity}, got "
                    f"{len(elements)} arguments"
                )
        if insert and self._structure is not None:
            # Domain membership only gates inserts; removing a fact over
            # unknown elements is a no-op (the legacy remove contract).
            for element in elements:
                if element not in self._structure:
                    # ValueError to match Structure.add_fact's contract.
                    raise ValueError(
                        f"element {element!r} is not in the domain"
                    )
        self._ops.append((insert, relation, elements))

    # -- the write surface ---------------------------------------------

    def insert_fact(self, relation: str, *elements: Element) -> "Changeset":
        """Buffer one insertion; returns self for chaining."""
        self._record(True, relation, tuple(elements))
        return self

    def remove_fact(self, relation: str, *elements: Element) -> "Changeset":
        """Buffer one deletion; returns self for chaining."""
        self._record(False, relation, tuple(elements))
        return self

    def insert_many(
        self, relation: str, facts: Iterable[Sequence[Element]]
    ) -> "Changeset":
        """Buffer a bulk insertion of ``facts`` into one relation."""
        for fact in facts:
            self._record(True, relation, tuple(fact))
        return self

    def remove_many(
        self, relation: str, facts: Iterable[Sequence[Element]]
    ) -> "Changeset":
        """Buffer a bulk deletion of ``facts`` from one relation."""
        for fact in facts:
            self._record(False, relation, tuple(fact))
        return self

    # -- introspection -------------------------------------------------

    @property
    def ops(self) -> Tuple[UpdateOp, ...]:
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[UpdateOp]:
        return iter(self._ops)

    def __repr__(self) -> str:
        inserts = sum(1 for insert, _, _ in self._ops if insert)
        return (
            f"Changeset(ops={len(self._ops)}, inserts={inserts}, "
            f"removes={len(self._ops) - inserts})"
        )


def load_changeset_jsonl(
    lines: Iterable,
    signature: Optional[Signature] = None,
    structure: Optional[Structure] = None,
    max_record_bytes: Optional[int] = None,
) -> Changeset:
    """Parse a JSONL changeset (the ``repro update --file`` format).

    One operation per line::

        {"op": "insert", "relation": "E", "elements": [0, 1]}
        {"op": "remove", "relation": "B", "elements": [3]}

    Blank lines and ``#`` comments are skipped.  Elements are taken as
    the JSON values verbatim (ints stay ints, strings stay strings).

    Lines may be ``str`` or ``bytes`` (the network path hands bytes
    straight off the socket).  Every malformed input — bad JSON,
    non-UTF-8 bytes, or a record longer than ``max_record_bytes`` —
    raises :class:`~repro.errors.TransactionError` naming the offending
    line, never an unhandled decode exception; the serve tier maps that
    to an HTTP 400.
    """
    changeset = Changeset(signature=signature, structure=structure)
    for number, line in enumerate(lines, start=1):
        if isinstance(line, (bytes, bytearray, memoryview)):
            raw = bytes(line)
            if max_record_bytes is not None and len(raw) > max_record_bytes:
                raise TransactionError(
                    f"changeset line {number}: record is {len(raw)} bytes "
                    f"(limit {max_record_bytes})"
                )
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise TransactionError(
                    f"changeset line {number}: not valid UTF-8 ({error})"
                ) from None
        elif max_record_bytes is not None:
            size = len(line.encode("utf-8"))
            if size > max_record_bytes:
                raise TransactionError(
                    f"changeset line {number}: record is {size} bytes "
                    f"(limit {max_record_bytes})"
                )
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TransactionError(
                f"changeset line {number}: bad JSON ({error})"
            ) from None
        if not isinstance(record, dict) or not {
            "op",
            "relation",
            "elements",
        } <= set(record):
            raise TransactionError(
                f"changeset line {number}: need keys op/relation/elements, "
                f"got {record!r}"
            )
        insert, relation, elements = coerce_op(
            (record["op"], record["relation"], record["elements"])
        )
        try:
            changeset._record(insert, relation, elements)
        except (SignatureError, TransactionError, ValueError) as error:
            # ValueError covers out-of-domain elements; re-raise with
            # the line number so the CLI reports a clean error.
            raise TransactionError(
                f"changeset line {number}: {error}"
            ) from None
    return changeset


@dataclass(frozen=True)
class CommitResult:
    """What one atomic commit did.

    ``ops_effective`` counts the net fact changes actually applied
    (no-ops and remove-then-reinsert pairs cancel); ``maintained_plans``
    is how many cached pipelines were refreshed with one local
    recomputation pass each; ``forked`` reports whether live snapshots
    pinned the pre-commit version, making the commit move the database
    to a copy-on-write fork (the old head stays frozen for its readers)
    instead of maintaining in place.
    """

    ops_submitted: int
    ops_effective: int
    version_before: int
    version_after: int
    fingerprint_before: str
    fingerprint_after: str
    maintained_plans: int = 0
    forked: bool = False

    @property
    def changed(self) -> bool:
        return self.ops_effective > 0

    def __bool__(self) -> bool:
        return self.changed


class Transaction:
    """Buffered writes committed atomically on clean ``with``-exit.

    Usage::

        with db.transaction() as tx:
            tx.insert_fact("E", 0, 1)
            tx.remove_fact("B", 3)
            tx.insert_many("B", [(4,), (5,)])
        tx.result.ops_effective   # the commit already happened

    Writes validate eagerly (signature arity, domain membership); an
    exception inside the block rolls back by discarding the buffer —
    the structure, cache, and fingerprint are untouched.  A finished
    transaction (committed or rolled back) rejects further use.
    """

    def __init__(self, database):
        self._db = database
        self._changeset: Optional[Changeset] = Changeset(
            structure=database.structure
        )
        self.result: Optional[CommitResult] = None

    # -- state ----------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._changeset is not None and self.result is None

    def _buffer(self) -> Changeset:
        if self._changeset is None:
            raise TransactionError(
                "this transaction is finished (committed or rolled back); "
                "open a new one with db.transaction()"
            )
        return self._changeset

    # -- the write surface ----------------------------------------------

    def insert_fact(self, relation: str, *elements: Element) -> "Transaction":
        self._buffer().insert_fact(relation, *elements)
        return self

    def remove_fact(self, relation: str, *elements: Element) -> "Transaction":
        self._buffer().remove_fact(relation, *elements)
        return self

    def insert_many(
        self, relation: str, facts: Iterable[Sequence[Element]]
    ) -> "Transaction":
        self._buffer().insert_many(relation, facts)
        return self

    def remove_many(
        self, relation: str, facts: Iterable[Sequence[Element]]
    ) -> "Transaction":
        self._buffer().remove_many(relation, facts)
        return self

    def __len__(self) -> int:
        return len(self._buffer())

    # -- lifecycle -------------------------------------------------------

    def commit(self) -> CommitResult:
        """Apply the buffered changeset atomically; finish the transaction."""
        changeset = self._buffer()
        self._changeset = None
        self.result = self._db.apply(changeset)
        return self.result

    def rollback(self) -> None:
        """Discard the buffer; the database was never touched."""
        self._changeset = None

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.rollback()
        elif self.active:
            self.commit()

    def __repr__(self) -> str:
        if self.result is not None:
            return f"Transaction(committed, {self.result.ops_effective} effective)"
        if self._changeset is None:
            return "Transaction(rolled back)"
        return f"Transaction(open, {len(self._changeset)} buffered)"
