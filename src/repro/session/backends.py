"""Pluggable execution strategies for the session layer.

An :class:`ExecutionBackend` decides *where* a plan's branch work runs —
serially in the caller, on the session's shared thread pool, or across
worker processes — while the answer semantics stay identical in every
mode: the deterministic branch-order merge makes the output
byte-identical to serial enumeration, and per-branch counting sums to the
exact serial count.

The default is :data:`AUTO`, which applies the cost-model heuristics
(:func:`repro.engine.executor.decide_mode` /
:func:`~repro.engine.executor.decide_count_mode`) per plan; callers force
a strategy with ``db.query(..., backend="process")`` or by passing any
object implementing the protocol.  Asyncio is not a pool mode but a
front-end property: every :class:`repro.session.Answers` handle exposes
``async`` access that drives whichever backend the plan chose off the
event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, List, Optional, Protocol, Tuple, runtime_checkable

from repro.core.pipeline import Pipeline
from repro.engine.executor import (
    decide_count_mode,
    decide_mode,
    parallel_count,
    resolve_chunk_rows,
    run_branches,
)
from repro.engine.pool import WorkerPool
from repro.engine.transport import TransferStats, resolve_transport
from repro.errors import EngineError

Element = Hashable
Answer = Tuple[Element, ...]


@dataclass
class ExecutionPlan:
    """Everything a backend needs to run one prepared query.

    ``pool`` is the session-owned :class:`WorkerPool` (lazily started);
    ``executor`` is the legacy caller-managed override that takes
    precedence over it.  ``chunk_rows`` / ``transport`` configure the
    process-mode answer transport (``None`` = cost-model default chunk
    size, columnar codec); ``transfer_stats`` collects the columnar
    path's received-bytes accounting.  ``used_mode`` /
    ``used_count_mode`` / ``used_transport`` record what actually ran,
    for :meth:`repro.session.Query.explain` and the differential suite.

    Snapshot contract: ``pipeline`` (and ``pipeline.structure``) may
    belong to a *pinned* version whose structure is frozen — a commit
    has moved the session head to a copy-on-write fork.  Backends must
    treat both as strictly read-only; process-mode workers that rebuild
    the pipeline from its spec receive the frozen structure by value,
    so every execution mode enumerates the pinned version
    byte-identically.
    """

    pipeline: Pipeline
    skip_mode: str = "lazy"
    workers: Optional[int] = None
    spec_key: Optional[tuple] = None
    executor: object = None
    pool: Optional[WorkerPool] = None
    chunk_rows: Optional[int] = None
    transport: Optional[str] = None
    # Early-stop: the run yields at most this many rows (min(total,
    # budget), byte-identical prefix), cancelling abandoned work units.
    row_budget: Optional[int] = None
    # SELECT-list pushdown: answer columns to keep (1:1 row-preserving;
    # process workers drop the rest before encoding).
    project_columns: Optional[Tuple[int, ...]] = None
    transfer_stats: Optional[TransferStats] = field(default=None, compare=False)
    used_mode: Optional[str] = field(default=None, compare=False)
    used_count_mode: Optional[str] = field(default=None, compare=False)
    used_transport: Optional[str] = field(default=None, compare=False)


@runtime_checkable
class ExecutionBackend(Protocol):
    """The strategy protocol: produce branch chunks, and count.

    ``run`` must yield per-branch answer lists in branch-index order
    (shards in slice order) so the merged stream equals the serial
    enumeration; ``count`` must return exactly
    :func:`repro.core.counting.count_answers`.
    """

    name: str

    def run(self, plan: ExecutionPlan) -> Iterator[List[Answer]]: ...

    def count(self, plan: ExecutionPlan) -> int: ...


class PoolBackend:
    """The built-in strategy family over :mod:`repro.engine.executor`.

    ``mode=None`` is the cost-model-driven automatic backend; a concrete
    ``mode`` pins every plan to that execution mode.
    """

    def __init__(self, name: str, mode: Optional[str]):
        self.name = name
        self._mode = mode

    def __repr__(self) -> str:
        return f"<ExecutionBackend {self.name!r}>"

    def resolve(self, plan: ExecutionPlan) -> Tuple[str, int]:
        """The concrete ``(mode, workers)`` enumeration would use."""
        return decide_mode(
            plan.pipeline, plan.workers, self._mode, transport=plan.transport
        )

    def resolve_count(self, plan: ExecutionPlan) -> Tuple[str, int]:
        """The concrete ``(mode, workers)`` counting would use."""
        return decide_count_mode(plan.pipeline, plan.workers, self._mode)

    def run(self, plan: ExecutionPlan) -> Iterator[List[Answer]]:
        mode, workers = self.resolve(plan)
        if (
            self._mode is None
            and plan.row_budget is not None
            and mode != "serial"
            and plan.row_budget
            <= resolve_chunk_rows(plan.pipeline, plan.chunk_rows)
        ):
            # Constant delay bounds a budgeted run's useful work to
            # O(budget) rows; for small budgets pool startup and shard
            # materialization dominate, so auto stays serial.  A forced
            # backend keeps its mode (the budget still truncates it).
            mode, workers = "serial", 1
        plan.used_mode = mode
        plan.used_transport = (
            resolve_transport(plan.transport) if mode == "process" else "none"
        )
        return run_branches(
            plan.pipeline,
            workers=workers,
            mode=mode,
            skip_mode=plan.skip_mode,
            spec_key=plan.spec_key,
            executor=plan.executor,
            pool=plan.pool,
            chunk_rows=plan.chunk_rows,
            transport=plan.transport,
            transfer_stats=plan.transfer_stats,
            row_budget=plan.row_budget,
            project_columns=plan.project_columns,
        )

    def count(self, plan: ExecutionPlan) -> int:
        mode, workers = self.resolve_count(plan)
        plan.used_count_mode = mode
        return parallel_count(
            plan.pipeline,
            workers=workers,
            mode=mode,
            spec_key=plan.spec_key,
            executor=plan.executor,
            pool=plan.pool,
        )


AUTO = PoolBackend("auto", None)
SERIAL = PoolBackend("serial", "serial")
THREAD = PoolBackend("thread", "thread")
PROCESS = PoolBackend("process", "process")

BACKENDS = {
    backend.name: backend for backend in (AUTO, SERIAL, THREAD, PROCESS)
}


def resolve_backend(spec) -> ExecutionBackend:
    """Accept ``None`` (= auto), a backend name, or a backend object."""
    if spec is None:
        return AUTO
    if isinstance(spec, str):
        backend = BACKENDS.get(spec)
        if backend is None:
            raise EngineError(
                f"unknown backend {spec!r}; choose from "
                f"{sorted(BACKENDS)} or pass an ExecutionBackend"
            )
        return backend
    if callable(getattr(spec, "run", None)) and callable(
        getattr(spec, "count", None)
    ):
        return spec
    raise EngineError(
        f"backend must be None, a name, or an ExecutionBackend; got "
        f"{type(spec).__name__}"
    )
