"""The unified session API: one :class:`Database`, every query mode.

The paper exposes exactly three operations — count (Theorem 2.5), test
(Theorem 2.6), constant-delay enumerate (Theorem 2.7).  This package
exposes exactly one way to reach them::

    from repro.session import Database

    with Database(structure, workers=4) as db:
        q = db.query("B(x) & R(y) & ~E(x,y)")
        q.count()
        q.test((0, 2))
        answers = q.answers()          # one handle: sync AND async
        answers.page(0, size=50)
        async for a in answers: ...    # same object, off-loop pulls
        print(q.explain().describe())  # branches, shards, backend, costs
        db.insert_fact("B", 3)         # maintained plans stay fresh

Execution strategy (serial / thread / process) is chosen per plan by the
cost model and overridable via ``db.query(..., backend=...)`` — see
:mod:`repro.session.backends`.  The legacy front-ends (``prepare``,
``DynamicQuery``, ``QueryBatch``, ``AsyncQueryBatch``) remain as thin
deprecated shims over this layer.
"""

from repro.session.answers import DEFAULT_PAGE_SIZE, Answers
from repro.session.backends import (
    AUTO,
    BACKENDS,
    PROCESS,
    SERIAL,
    THREAD,
    ExecutionBackend,
    ExecutionPlan,
    PoolBackend,
    resolve_backend,
)
from repro.session.database import Database
from repro.session.query import Query, QueryPlan

__all__ = [
    "AUTO",
    "Answers",
    "BACKENDS",
    "DEFAULT_PAGE_SIZE",
    "Database",
    "ExecutionBackend",
    "ExecutionPlan",
    "PROCESS",
    "PoolBackend",
    "Query",
    "QueryPlan",
    "SERIAL",
    "THREAD",
    "resolve_backend",
]
