"""The unified session API: one :class:`Database`, every query mode.

The paper exposes exactly three operations — count (Theorem 2.5), test
(Theorem 2.6), constant-delay enumerate (Theorem 2.7).  This package
exposes exactly one way to reach them::

    from repro.session import Database

    with Database(structure, workers=4) as db:
        q = db.query("B(x) & R(y) & ~E(x,y)")
        q.count()
        q.test((0, 2))
        answers = q.answers()          # one handle: sync AND async
        answers.page(0, size=50)
        async for a in answers: ...    # same object, off-loop pulls
        print(q.explain().describe())  # branches, shards, backend, costs
        with db.transaction() as tx:   # one maintenance pass per plan
            tx.insert_fact("B", 3)
            tx.insert_many("E", [(0, 3), (3, 0)])
        with db.snapshot() as snap:    # version-pinned reads
            snap.query("B(x)").count() # never goes stale

Reads are snapshot-isolated: ``db.snapshot()`` pins a version, and
every ``Answers`` handle stays on the version it was planned against —
a concurrent commit forks the head copy-on-write instead of raising
``StaleResultError``.  Writes batch through ``db.transaction()`` /
``db.apply(changeset)``: one lock acquisition, one fingerprint roll,
one maintenance pass per cached plan, one cache re-key per commit.

Execution strategy (serial / thread / process) is chosen per plan by the
cost model and overridable via ``db.query(..., backend=...)`` — see
:mod:`repro.session.backends`.  The legacy front-ends (``prepare``,
``DynamicQuery``, ``QueryBatch``, ``AsyncQueryBatch``) remain as thin
deprecated shims over this layer.
"""

from repro.session.answers import DEFAULT_PAGE_SIZE, Answers, EncodedAnswers
from repro.session.backends import (
    AUTO,
    BACKENDS,
    PROCESS,
    SERIAL,
    THREAD,
    ExecutionBackend,
    ExecutionPlan,
    PoolBackend,
    resolve_backend,
)
from repro.session.database import Database
from repro.session.query import Query, QueryPlan
from repro.session.snapshot import Snapshot
from repro.session.transaction import (
    Changeset,
    CommitResult,
    Transaction,
    load_changeset_jsonl,
)

__all__ = [
    "AUTO",
    "Answers",
    "BACKENDS",
    "Changeset",
    "CommitResult",
    "DEFAULT_PAGE_SIZE",
    "Database",
    "EncodedAnswers",
    "ExecutionBackend",
    "ExecutionPlan",
    "PROCESS",
    "PoolBackend",
    "Query",
    "QueryPlan",
    "SERIAL",
    "Snapshot",
    "THREAD",
    "Transaction",
    "load_changeset_jsonl",
    "resolve_backend",
]
