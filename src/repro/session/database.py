""":class:`Database` — the one session object every front-end plugs into.

A ``Database`` owns, for one structure:

* the **pipeline cache** (:class:`repro.engine.cache.PipelineCache`),
  keyed by ``(structure fingerprint, normalized formula, order, eps)``;
* the shared **colored-graph templates** (cluster enumeration depends
  only on ``(arity, link radius)``, so equal-shape queries clone one
  template instead of re-enumerating);
* a lazily-started, crash-restarting **worker pool**
  (:class:`repro.engine.pool.WorkerPool`) that serial workloads never
  pay for;
* the **dynamic maintainers**: every cached plan the local-recomputation
  machinery supports (:class:`repro.core.dynamic.PipelineMaintainer`) is
  kept fresh *in place* through :meth:`insert_fact` /
  :meth:`remove_fact`, while ineligible plans get targeted invalidation
  — the session never throws away the whole cache just because one fact
  changed.

``db.query("...")`` returns a :class:`repro.session.Query` plan object
with ``.count() / .test(tuple) / .answers() / .explain()``; execution
strategy is chosen per plan by the cost model and overridable with
``backend=`` (see :mod:`repro.session.backends`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Tuple, Union

from repro.core.colored_graph import ColoredGraph, build_colored_graph
from repro.core.dynamic import PipelineMaintainer, supports_maintenance
from repro.core.pipeline import Pipeline
from repro.engine.cache import CacheKey, PipelineCache, coerce_order
from repro.engine.pool import WorkerPool
from repro.errors import EngineError
from repro.fo import coerce_formula
from repro.fo.syntax import Formula, Var
from repro.session.query import Query
from repro.structures.serialize import fingerprint
from repro.structures.structure import Structure

Element = Hashable


class Database:
    """One structure, one cache, one pool — every query mode in one place.

    Quick start::

        from repro.session import Database

        with Database(structure, workers=4) as db:
            q = db.query("B(x) & R(y) & ~E(x,y)")
            q.count()                     # Theorem 2.5
            q.test((0, 2))                # Theorem 2.6
            for answer in q.answers():    # Theorem 2.7, constant delay
                ...
            db.insert_fact("B", 3)        # maintained plans stay fresh
            q.count()                     # reflects the update
    """

    def __init__(
        self,
        structure: Structure,
        eps: float = 0.5,
        workers: Optional[int] = None,
        skip_mode: str = "lazy",
        cache_capacity: int = 64,
        share_graphs: bool = True,
        maintain: bool = True,
    ):
        if workers is not None and workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self.structure = structure
        self.eps = eps
        self.workers = workers
        self.skip_mode = skip_mode
        self.share_graphs = share_graphs
        self.maintain = maintain
        self.pool = WorkerPool(workers)
        self.cache = PipelineCache(cache_capacity)
        self._graph_templates: Dict[Tuple[int, int], ColoredGraph] = {}
        self._maintainers: Dict[CacheKey, PipelineMaintainer] = {}
        self._fingerprint = fingerprint(structure)
        self._version = structure.version
        self._closed = False

    # -- the public query surface --------------------------------------

    def query(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        backend=None,
        skip_mode: Optional[str] = None,
        workers: Optional[int] = None,
        budget=None,
    ) -> Query:
        """Preprocess (or cache-hit) ``query`` and return its plan object.

        ``backend`` forces an execution strategy (``"serial"`` /
        ``"thread"`` / ``"process"``, or any
        :class:`~repro.session.backends.ExecutionBackend`); the default
        ``"auto"`` lets the cost model decide per plan.  ``budget`` (a
        :class:`repro.fo.localize.LocalizationBudget`) bypasses the cache
        — budgets change pipeline shape and are not part of the cache
        key.
        """
        self._check_open()
        return Query(
            self,
            coerce_formula(query),
            order=coerce_order(order),
            backend=backend,
            skip_mode=skip_mode,
            workers=workers,
            budget=budget,
        )

    def count(self, query, order=None, **options) -> int:
        """Convenience: ``db.query(...).count()``."""
        return self.query(query, order=order, **options).count()

    def test(self, query, candidate: Sequence[Element], **options) -> bool:
        """Convenience: ``db.query(...).test(candidate)``."""
        return self.query(query, **options).test(candidate)

    # -- dynamic updates -----------------------------------------------

    def insert_fact(self, relation: str, *elements: Element) -> bool:
        """Insert a fact; keep maintainable cached plans fresh in place.

        Returns ``True`` when the structure changed (the fact was new).
        Plans the local-recomputation maintainer supports are updated in
        ``O(d^h(|q|))`` — independent of ``n`` — and stay cache-hits;
        only the ineligible plans are invalidated (targeted, not
        whole-cache).
        """
        self._check_open()
        self._refresh()
        if self.structure.has_fact(relation, *elements):
            return False
        return self._apply_update(True, relation, elements)

    def remove_fact(self, relation: str, *elements: Element) -> bool:
        """Delete a fact; same maintenance contract as :meth:`insert_fact`."""
        self._check_open()
        self._refresh()
        if not self.structure.has_fact(relation, *elements):
            return False
        return self._apply_update(False, relation, elements)

    def _apply_update(
        self, insert: bool, relation: str, elements: Tuple[Element, ...]
    ) -> bool:
        self._prune_maintainers()
        # Phase 1: each maintainer's reach *before* the mutation (a
        # deleted edge used to provide connectivity).
        pre_regions = {
            key: maintainer.reach(elements)
            for key, maintainer in self._maintainers.items()
        }
        if insert:
            self.structure.add_fact(relation, *elements)
        else:
            self.structure.remove_fact(relation, *elements)
        # Phase 2: local recomputation on every maintained plan.
        for key, maintainer in self._maintainers.items():
            region = pre_regions[key] | maintainer.reach(elements)
            maintainer.refresh(elements, region)
        # Phase 3: targeted invalidation.  Maintained plans move to the
        # new fingerprint key (still cache-hits); everything else for the
        # old fingerprint is dropped; graph templates are
        # structure-derived, so they rebuild on demand.
        old_fingerprint = self._fingerprint
        self._fingerprint = fingerprint(self.structure)
        self._version = self.structure.version
        self._graph_templates.clear()
        kept = self.cache.rekey(
            old_fingerprint,
            self._fingerprint,
            keep=set(self._maintainers),
        )
        self._maintainers = {
            (self._fingerprint,) + key[1:]: maintainer
            for key, maintainer in self._maintainers.items()
        }
        assert kept == len(self._maintainers), "maintained plan lost its entry"
        return True

    # -- structure staleness -------------------------------------------

    @property
    def structure_fingerprint(self) -> str:
        self._refresh()
        return self._fingerprint

    def _refresh(self) -> None:
        """Detect *external* mutations and invalidate every derived cache.

        Updates applied through :meth:`insert_fact` / :meth:`remove_fact`
        never reach this path; a direct ``structure.add_fact`` by the
        caller does, and costs the full fingerprint-keyed invalidation —
        the maintainers never saw the pre-update neighborhoods, so their
        pipelines cannot be trusted.
        """
        if self.structure.version == self._version:
            return
        stale_fingerprint = self._fingerprint
        self._fingerprint = fingerprint(self.structure)
        self._version = self.structure.version
        self._graph_templates.clear()
        self._maintainers.clear()
        self.cache.invalidate(stale_fingerprint)

    def invalidate(self) -> None:
        """Drop every cached pipeline, maintainer, and graph template."""
        self._graph_templates.clear()
        self._maintainers.clear()
        self.cache.invalidate()
        self._fingerprint = fingerprint(self.structure)
        self._version = self.structure.version

    # -- shared preprocessing ------------------------------------------

    def _graph_factory(
        self, structure, evaluator, arity, link_radius, max_nodes=5_000_000
    ):
        """Clone-from-template colored graph construction."""
        key = (arity, link_radius)
        template = self._graph_templates.get(key)
        if template is None:
            template = build_colored_graph(
                structure, evaluator, arity, link_radius, max_nodes=max_nodes
            )
            self._graph_templates[key] = template
        return template.clone()

    def _prepare(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        budget=None,
    ) -> Tuple[Pipeline, Optional[CacheKey]]:
        """The cached pipeline for a query (building it on a miss)."""
        self._refresh()
        if budget is not None:
            # Budgets change pipeline shape but are not part of the cache
            # key; budgeted plans are built fresh and never cached.
            pipeline = Pipeline(
                self.structure,
                coerce_formula(query),
                order=coerce_order(order),
                eps=self.eps,
                budget=budget,
            )
            return pipeline, None
        pipeline, key = self.cache.get_or_build(
            self.structure,
            query,
            order=order,
            eps=self.eps,
            structure_fingerprint=self._fingerprint,
            graph_factory=self._graph_factory if self.share_graphs else None,
        )
        if (
            self.maintain
            and key not in self._maintainers
            and supports_maintenance(pipeline)
        ):
            self._maintainers[key] = PipelineMaintainer(pipeline)
        self._prune_maintainers()
        return pipeline, key

    def _prune_maintainers(self) -> None:
        """Cache evictions may drop maintained plans; never maintain
        pipelines nothing can hit anymore."""
        if self._maintainers:
            self._maintainers = {
                key: maintainer
                for key, maintainer in self._maintainers.items()
                if key in self.cache
            }

    def _is_maintained(self, key: Optional[CacheKey]) -> bool:
        return key is not None and key in self._maintainers

    # -- observability -------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cache + template + maintainer + pool observability counters."""
        stats = self.cache.stats()
        stats["graph_templates"] = len(self._graph_templates)
        stats["maintained_plans"] = len(self._maintainers)
        stats.update(
            {f"pool_{key}": value for key, value in self.pool.stats().items()}
        )
        return stats

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this Database session is closed")

    def close(self) -> None:
        """Shut down the owned worker pool.  Idempotent.

        Outstanding :class:`~repro.session.answers.Answers` handles keep
        any answers they already pulled; new queries (and new parallel
        pulls through the pool) raise :class:`repro.errors.EngineError`.
        """
        if self._closed:
            return
        self._closed = True
        self.pool.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Database(n={self.structure.cardinality}, "
            f"cache={len(self.cache)}, maintained={len(self._maintainers)}, "
            f"{state})"
        )
