""":class:`Database` — the one session object every front-end plugs into.

A ``Database`` owns, for one structure:

* the **pipeline cache** (:class:`repro.engine.cache.PipelineCache`),
  keyed by ``(structure fingerprint, normalized formula, order, eps)``;
* the shared **colored-graph templates** (cluster enumeration depends
  only on ``(arity, link radius)``, so equal-shape queries clone one
  template instead of re-enumerating);
* a lazily-started, crash-restarting **worker pool**
  (:class:`repro.engine.pool.WorkerPool`) that serial workloads never
  pay for;
* the **dynamic maintainers**: every cached plan the local-recomputation
  machinery supports (:class:`repro.core.dynamic.PipelineMaintainer`) is
  kept fresh *in place* through :meth:`insert_fact` /
  :meth:`remove_fact`, while ineligible plans get targeted invalidation
  — the session never throws away the whole cache just because one fact
  changed.

``db.query("...")`` returns a :class:`repro.session.Query` plan object
with ``.count() / .test(tuple) / .answers() / .explain()``; execution
strategy is chosen per plan by the cost model and overridable with
``backend=`` (see :mod:`repro.session.backends`).
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Optional, Sequence, Tuple, Union

from repro.core.colored_graph import ColoredGraph, build_colored_graph
from repro.core.dynamic import PipelineMaintainer, supports_maintenance
from repro.core.pipeline import Pipeline
from repro.engine.cache import CacheKey, PipelineCache, cache_key, coerce_order
from repro.engine.pool import WorkerPool
from repro.errors import EngineError
from repro.fo import coerce_formula
from repro.fo.syntax import Formula, Var
from repro.session.query import Query
from repro.structures.serialize import fingerprint
from repro.structures.structure import Structure

Element = Hashable


class _ReadWriteLock:
    """Many concurrent readers XOR one writer, writer-preferring.

    Pipeline builds hold the read side (they overlap freely — that is
    the whole point of the per-key build locks), while
    ``insert_fact``/``remove_fact`` hold the write side, so a mutation
    can never tear a build's structure reads or let a pre-update
    pipeline land in the post-update cache.  Writer preference keeps a
    steady query stream from starving updates.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class Database:
    """One structure, one cache, one pool — every query mode in one place.

    Quick start::

        from repro.session import Database

        with Database(structure, workers=4) as db:
            q = db.query("B(x) & R(y) & ~E(x,y)")
            q.count()                     # Theorem 2.5
            q.test((0, 2))                # Theorem 2.6
            for answer in q.answers():    # Theorem 2.7, constant delay
                ...
            db.insert_fact("B", 3)        # maintained plans stay fresh
            q.count()                     # reflects the update
    """

    def __init__(
        self,
        structure: Structure,
        eps: float = 0.5,
        workers: Optional[int] = None,
        skip_mode: str = "lazy",
        cache_capacity: int = 64,
        share_graphs: bool = True,
        maintain: bool = True,
    ):
        if workers is not None and workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self.structure = structure
        self.eps = eps
        self.workers = workers
        self.skip_mode = skip_mode
        self.share_graphs = share_graphs
        self.maintain = maintain
        self.pool = WorkerPool(workers)
        self.cache = PipelineCache(cache_capacity)
        # Keyed by (structure fingerprint, arity, link_radius).
        self._graph_templates: Dict[Tuple[str, int, int], ColoredGraph] = {}
        self._maintainers: Dict[CacheKey, PipelineMaintainer] = {}
        self._fingerprint = fingerprint(structure)
        self._version = structure.version
        self._closed = False
        # Concurrency: the session is thread-safe.  Shared mutable state
        # (cache, templates, maintainers, fingerprint) hides behind one
        # short-critical-section RLock; the *expensive* pipeline builds
        # run outside it under per-cache-key locks, so two cold queries
        # with distinct keys build concurrently while two racing calls
        # for the same key build once (the loser blocks, then cache-hits).
        self._state_lock = threading.RLock()
        # Builds read the structure concurrently; session updates write.
        self._structure_lock = _ReadWriteLock()
        self._locks_guard = threading.Lock()
        # key -> [lock, lease count]; entries live only while a build (or
        # a waiter) holds a lease, so the registry is bounded by the
        # number of in-flight prepares.
        self._build_locks: Dict[CacheKey, list] = {}
        self._template_locks: Dict[Tuple[str, int, int], threading.Lock] = {}

    # -- the public query surface --------------------------------------

    def query(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        backend=None,
        skip_mode: Optional[str] = None,
        workers: Optional[int] = None,
        budget=None,
        chunk_rows: Optional[int] = None,
        transport: Optional[str] = None,
    ) -> Query:
        """Preprocess (or cache-hit) ``query`` and return its plan object.

        ``backend`` forces an execution strategy (``"serial"`` /
        ``"thread"`` / ``"process"``, or any
        :class:`~repro.session.backends.ExecutionBackend`); the default
        ``"auto"`` lets the cost model decide per plan.  ``budget`` (a
        :class:`repro.fo.localize.LocalizationBudget`) bypasses the cache
        — budgets change pipeline shape and are not part of the cache
        key.  ``chunk_rows`` / ``transport`` override the process-mode
        answer transport (default: columnar codec, cost-model chunk
        size; ``transport="pickle"`` restores the legacy whole-list
        transfer).
        """
        self._check_open()
        return Query(
            self,
            coerce_formula(query),
            order=coerce_order(order),
            backend=backend,
            skip_mode=skip_mode,
            workers=workers,
            budget=budget,
            chunk_rows=chunk_rows,
            transport=transport,
        )

    def count(self, query, order=None, **options) -> int:
        """Convenience: ``db.query(...).count()``."""
        return self.query(query, order=order, **options).count()

    def test(self, query, candidate: Sequence[Element], **options) -> bool:
        """Convenience: ``db.query(...).test(candidate)``."""
        return self.query(query, **options).test(candidate)

    # -- dynamic updates -----------------------------------------------

    def insert_fact(self, relation: str, *elements: Element) -> bool:
        """Insert a fact; keep maintainable cached plans fresh in place.

        Returns ``True`` when the structure changed (the fact was new).
        Plans the local-recomputation maintainer supports are updated in
        ``O(d^h(|q|))`` — independent of ``n`` — and stay cache-hits;
        only the ineligible plans are invalidated (targeted, not
        whole-cache).
        """
        self._check_open()
        self._structure_lock.acquire_write()
        try:
            with self._state_lock:
                self._refresh_locked()
                if self.structure.has_fact(relation, *elements):
                    return False
                return self._apply_update_locked(True, relation, elements)
        finally:
            self._structure_lock.release_write()

    def remove_fact(self, relation: str, *elements: Element) -> bool:
        """Delete a fact; same maintenance contract as :meth:`insert_fact`."""
        self._check_open()
        self._structure_lock.acquire_write()
        try:
            with self._state_lock:
                self._refresh_locked()
                if not self.structure.has_fact(relation, *elements):
                    return False
                return self._apply_update_locked(False, relation, elements)
        finally:
            self._structure_lock.release_write()

    def _apply_update_locked(
        self, insert: bool, relation: str, elements: Tuple[Element, ...]
    ) -> bool:
        self._prune_maintainers()
        # Phase 1: each maintainer's reach *before* the mutation (a
        # deleted edge used to provide connectivity).
        pre_regions = {
            key: maintainer.reach(elements)
            for key, maintainer in self._maintainers.items()
        }
        if insert:
            self.structure.add_fact(relation, *elements)
        else:
            self.structure.remove_fact(relation, *elements)
        # Phase 2: local recomputation on every maintained plan.
        for key, maintainer in self._maintainers.items():
            region = pre_regions[key] | maintainer.reach(elements)
            maintainer.refresh(elements, region)
        # Phase 3: targeted invalidation.  Maintained plans move to the
        # new fingerprint key (still cache-hits); everything else for the
        # old fingerprint is dropped; graph templates are
        # structure-derived, so they rebuild on demand.
        old_fingerprint = self._fingerprint
        self._fingerprint = fingerprint(self.structure)
        self._version = self.structure.version
        self._graph_templates.clear()
        with self._locks_guard:
            self._template_locks.clear()
        kept = self.cache.rekey(
            old_fingerprint,
            self._fingerprint,
            keep=set(self._maintainers),
        )
        self._maintainers = {
            (self._fingerprint,) + key[1:]: maintainer
            for key, maintainer in self._maintainers.items()
        }
        assert kept == len(self._maintainers), "maintained plan lost its entry"
        return True

    # -- structure staleness -------------------------------------------

    @property
    def structure_fingerprint(self) -> str:
        with self._state_lock:
            self._refresh_locked()
            return self._fingerprint

    def _refresh(self) -> None:
        with self._state_lock:
            self._refresh_locked()

    def _refresh_locked(self) -> None:
        """Detect *external* mutations and invalidate every derived cache.

        Updates applied through :meth:`insert_fact` / :meth:`remove_fact`
        never reach this path; a direct ``structure.add_fact`` by the
        caller does, and costs the full fingerprint-keyed invalidation —
        the maintainers never saw the pre-update neighborhoods, so their
        pipelines cannot be trusted.
        """
        if self.structure.version == self._version:
            return
        stale_fingerprint = self._fingerprint
        self._fingerprint = fingerprint(self.structure)
        self._version = self.structure.version
        self._graph_templates.clear()
        with self._locks_guard:
            self._template_locks.clear()
        self._maintainers.clear()
        self.cache.invalidate(stale_fingerprint)

    def invalidate(self) -> None:
        """Drop every cached pipeline, maintainer, and graph template."""
        with self._state_lock:
            self._graph_templates.clear()
            self._maintainers.clear()
            self.cache.invalidate()
            self._fingerprint = fingerprint(self.structure)
            self._version = self.structure.version
        with self._locks_guard:
            self._template_locks.clear()

    # -- shared preprocessing ------------------------------------------

    def _lease_build_lock(self, key: CacheKey) -> threading.Lock:
        """Take a lease on the per-cache-key build lock.

        Distinct keys get distinct locks, so cold builds of *different*
        queries overlap; racing builds of the *same* key serialize and
        the loser lands on the winner's cache entry.  Leasing (instead
        of pruning idle locks) guarantees a lock handed to one thread is
        never replaced under another: the entry lives exactly as long as
        some prepare holds a lease, so the registry is bounded by the
        number of concurrent prepares.  Pair with
        :meth:`_release_build_lock`.
        """
        with self._locks_guard:
            entry = self._build_locks.get(key)
            if entry is None:
                entry = self._build_locks[key] = [threading.Lock(), 0]
            entry[1] += 1
            return entry[0]

    def _release_build_lock(self, key: CacheKey) -> None:
        with self._locks_guard:
            entry = self._build_locks.get(key)
            if entry is not None:
                entry[1] -= 1
                if entry[1] <= 0:
                    del self._build_locks[key]

    def _template_lock_for(self, key) -> threading.Lock:
        with self._locks_guard:
            lock = self._template_locks.get(key)
            if lock is None:
                lock = self._template_locks[key] = threading.Lock()
            return lock

    def _graph_factory(
        self, structure, evaluator, arity, link_radius, max_nodes=5_000_000
    ):
        """Clone-from-template colored graph construction.

        Guarded per ``(fingerprint, arity, link_radius)``: concurrent
        cold builds of equal-shape queries enumerate cluster tuples
        once; different shapes build their templates in parallel.  The
        fingerprint in the key makes a template built against one
        structure state unreachable after any mutation, even the
        uncoordinated direct-mutation kind.
        """
        with self._state_lock:
            key = (self._fingerprint, arity, link_radius)
        with self._template_lock_for(key):
            template = self._graph_templates.get(key)
            if template is None:
                template = build_colored_graph(
                    structure, evaluator, arity, link_radius, max_nodes=max_nodes
                )
                self._graph_templates[key] = template
        return template.clone()

    def _prepare(
        self,
        query: Union[Formula, str],
        order: Optional[Sequence[Union[Var, str]]] = None,
        budget=None,
    ) -> Tuple[Pipeline, Optional[CacheKey]]:
        """The cached pipeline for a query (building it on a miss).

        Thread-safe: the whole prepare holds the structure lock's *read*
        side (session updates hold the write side, so a mutation can
        neither tear a build's structure reads nor slip between key
        computation and cache insertion), cache bookkeeping runs under
        the session state lock, and the expensive :class:`Pipeline`
        build runs under the key's own lease
        (:meth:`_lease_build_lock`) — distinct cold queries no longer
        serialize their builds behind one another.  Mutating the
        structure *directly* (not through the session) remains
        uncoordinated: the legacy contract — stale handles, full
        fingerprint-keyed invalidation at the next access — applies.
        """
        formula = coerce_formula(query)
        variable_order = coerce_order(order)
        self._structure_lock.acquire_read()
        try:
            if budget is not None:
                # Budgets change pipeline shape but are not part of the
                # cache key; budgeted plans are built fresh, never cached.
                pipeline = Pipeline(
                    self.structure,
                    formula,
                    order=variable_order,
                    eps=self.eps,
                    budget=budget,
                )
                return pipeline, None
            with self._state_lock:
                self._refresh_locked()
                key = cache_key(
                    self._fingerprint, formula, variable_order, self.eps
                )
            build_lock = self._lease_build_lock(key)
            try:
                with build_lock:
                    with self._state_lock:
                        pipeline = self.cache.get(key)
                    if pipeline is None:
                        pipeline = Pipeline(
                            self.structure,
                            formula,
                            order=variable_order,
                            eps=self.eps,
                            graph_factory=(
                                self._graph_factory if self.share_graphs else None
                            ),
                        )
                        with self._state_lock:
                            self.cache.put(key, pipeline)
                    with self._state_lock:
                        if (
                            self.maintain
                            and key not in self._maintainers
                            and supports_maintenance(pipeline)
                        ):
                            self._maintainers[key] = PipelineMaintainer(pipeline)
                        self._prune_maintainers()
            finally:
                self._release_build_lock(key)
            return pipeline, key
        finally:
            self._structure_lock.release_read()

    def _prune_maintainers(self) -> None:
        """Cache evictions may drop maintained plans; never maintain
        pipelines nothing can hit anymore."""
        if self._maintainers:
            self._maintainers = {
                key: maintainer
                for key, maintainer in self._maintainers.items()
                if key in self.cache
            }

    def _is_maintained(self, key: Optional[CacheKey]) -> bool:
        return key is not None and key in self._maintainers

    # -- observability -------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cache + template + maintainer + pool observability counters."""
        stats = self.cache.stats()
        stats["graph_templates"] = len(self._graph_templates)
        stats["maintained_plans"] = len(self._maintainers)
        stats.update(
            {f"pool_{key}": value for key, value in self.pool.stats().items()}
        )
        return stats

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise EngineError("this Database session is closed")

    def close(self) -> None:
        """Shut down the owned worker pool.  Idempotent.

        Outstanding :class:`~repro.session.answers.Answers` handles keep
        any answers they already pulled; new queries (and new parallel
        pulls through the pool) raise :class:`repro.errors.EngineError`.
        """
        if self._closed:
            return
        self._closed = True
        self.pool.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"Database(n={self.structure.cardinality}, "
            f"cache={len(self.cache)}, maintained={len(self._maintainers)}, "
            f"{state})"
        )
